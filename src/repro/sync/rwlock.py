"""Reader-writer lock — a library extension composed from Table 1
primitives.

A writer-preference RW lock over a single state word:

* state == 0: free
* state == -1 (encoded as WRITER): held by a writer
* state >= 1: held by that many readers

plus a ``writers_waiting`` count that makes arriving readers defer to
queued writers.

Reader acquire: spin while (state == WRITER or writers_waiting > 0),
then CAS state -> state+1. Writer acquire: f&i writers_waiting, spin
until CAS(state, 0, WRITER) succeeds, f&d writers_waiting.

Spin-waiting uses the paper's machinery: ld_through guard + ld_cb spin
under the callback protocols, back-off under VIPS, local SpinUntil under
MESI. Releases that can unblock *many* readers (writer release) use
st_cbA; releases that unblock one writer use st_cbA as well because
readers and writers wait on the same word for different predicates —
the ticket-lock lesson (waking one arbitrary waiter can strand the
wrong class).
"""

from __future__ import annotations

from typing import Dict

from repro.protocols.ops import (Atomic, AtomicKind, BackoffWait, Fence,
                                 FenceKind, LoadCB, LoadThrough, SpinUntil,
                                 StKind, Store, StoreThrough)
from repro.sync.base import SyncPrimitive, SyncStyle

#: Encoded "a writer holds the lock" state (word values are plain ints).
WRITER = 1 << 30


class RWLock(SyncPrimitive):
    """Writer-preference reader-writer lock in all four encodings."""

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.state_addr = -1
        self.writers_waiting_addr = -1

    def setup(self, layout, num_threads: int) -> None:
        self.state_addr = layout.alloc_sync_word()
        self.writers_waiting_addr = layout.alloc_sync_word()
        self._ready = True

    def initial_values(self) -> Dict[int, int]:
        return {self.state_addr: 0, self.writers_waiting_addr: 0}

    # ------------------------------------------------------------- spinning

    def _spin_while(self, addr: int, bad):
        """Spin until ``bad(value)`` is False; returns the value."""
        if self.style is SyncStyle.MESI:
            value = yield SpinUntil(addr, lambda v: not bad(v))
            return value
        if self.style is SyncStyle.VIPS:
            attempt = 0
            while True:
                value = yield LoadThrough(addr)
                if not bad(value):
                    return value
                yield BackoffWait(attempt)
                attempt += 1
        value = yield LoadThrough(addr)
        while bad(value):
            value = yield LoadCB(addr)
        return value

    # -------------------------------------------------------------- readers

    def acquire_read(self, ctx):
        self._require_ready()
        start = ctx.now
        while True:
            # Writer preference: defer while writers queue.
            yield from self._spin_while(self.writers_waiting_addr,
                                        lambda v: v > 0)
            value = yield from self._spin_while(self.state_addr,
                                                lambda v: v == WRITER)
            result = yield Atomic(self.state_addr, AtomicKind.CAS,
                                  (value, value + 1))
            if result.success:
                break
        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_INVL)
        ctx.record_episode("rwlock_read_acquire", start)

    def release_read(self, ctx):
        self._require_ready()
        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_DOWN)
        # The last reader leaving must wake queued writers: st_cbA.
        result = yield Atomic(self.state_addr, AtomicKind.FETCH_ADD, (-1,),
                              st=self._release_st())
        assert result.old >= 1, "release_read without a read hold"

    # -------------------------------------------------------------- writers

    def acquire_write(self, ctx):
        self._require_ready()
        start = ctx.now
        yield Atomic(self.writers_waiting_addr, AtomicKind.FETCH_ADD, (1,),
                     st=self._release_st())
        while True:
            yield from self._spin_while(self.state_addr,
                                        lambda v: v != 0)
            result = yield Atomic(self.state_addr, AtomicKind.CAS,
                                  (0, WRITER))
            if result.success:
                break
        # No longer waiting; wake readers parked on writers_waiting.
        yield Atomic(self.writers_waiting_addr, AtomicKind.FETCH_ADD, (-1,),
                     st=self._release_st())
        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_INVL)
        ctx.record_episode("rwlock_write_acquire", start)

    def release_write(self, ctx):
        self._require_ready()
        if self.style is SyncStyle.MESI:
            # Plain store: the MESI column races through the coherent L1.
            yield Store(self.state_addr, 0)
        else:
            yield Fence(FenceKind.SELF_DOWN)
            yield StoreThrough(self.state_addr, 0)

    def _release_st(self) -> StKind:
        return StKind.CBA
