"""Cycle-domain time-series sampling.

The paper's dynamics — the BackOff spin storm hitting the LLC, the
callback directory filling during a race, cores going quiescent while
parked — are invisible in end-of-run aggregates. The
:class:`TimeSeriesSampler` snapshots any subset of
:class:`~repro.sim.stats.Stats` counters plus live gauges every N cycles
into columnar series, using daemon engine events so the sampled run stays
bit-identical to an unsampled one.

Columns are cumulative counters as sampled; :meth:`deltas` converts one
to a per-window rate series (e.g. LLC accesses per 100 cycles — the spin
storm, directly).
"""

from __future__ import annotations

import json
from typing import IO, Callable, Dict, List, Optional, Sequence

from repro.obs.bus import ProbeBus
from repro.sim.stats import Stats, int_field_names

#: Counters sampled when no explicit subset is given: the ones the
#: paper's figures move cycle by cycle.
DEFAULT_COUNTERS = (
    "llc_accesses", "llc_sync_accesses", "llc_spin_probes", "messages",
    "flit_hops", "invalidations_sent", "cb_installs", "cb_evictions",
    "cb_wakeups", "cb_blocked_reads", "cb_parked_cycles", "spin_iterations",
    "backoff_cycles",
)


class TimeSeriesSampler:
    """Periodic snapshots of counters and gauges into columnar series."""

    def __init__(self, stats: Stats, every: int,
                 counters: Optional[Sequence[str]] = None,
                 gauges: Optional[Dict[str, Callable[[], float]]] = None
                 ) -> None:
        if every <= 0:
            raise ValueError(f"sampling cadence must be positive: {every}")
        if counters is None:
            counters = DEFAULT_COUNTERS
        elif counters == "all":
            counters = int_field_names()
        unknown = set(counters) - set(int_field_names())
        if unknown:
            raise ValueError(f"unknown Stats counters: {sorted(unknown)}")
        self.stats = stats
        self.every = every
        self.counter_names = tuple(counters)
        self.gauges: Dict[str, Callable[[], float]] = dict(gauges or {})
        self.columns: Dict[str, List[float]] = {"cycle": []}
        for name in self.counter_names:
            self.columns[name] = []
        for name in self.gauges:
            self.columns[name] = []

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a live gauge; only valid before the first sample."""
        if self.columns["cycle"]:
            raise RuntimeError("cannot add gauges after sampling started")
        self.gauges[name] = fn
        self.columns[name] = []

    def install(self, bus: ProbeBus) -> None:
        """Start the cycle-window tick on the bus's engine."""
        bus.every(self.every, self.sample)

    # ------------------------------------------------------------ sampling

    def sample(self, cycle: int) -> None:
        """Take one snapshot now (normally called by the bus tick)."""
        self.columns["cycle"].append(cycle)
        stats = self.stats
        for name in self.counter_names:
            self.columns[name].append(getattr(stats, name))
        for name, fn in self.gauges.items():
            self.columns[name].append(fn())

    # ------------------------------------------------------------- access

    @property
    def rows(self) -> int:
        return len(self.columns["cycle"])

    def series(self, name: str) -> List[float]:
        return self.columns[name]

    def deltas(self, name: str) -> List[float]:
        """Per-window increments of a cumulative column (a rate series)."""
        values = self.columns[name]
        return [b - a for a, b in zip([0] + values[:-1], values)]

    # -------------------------------------------------------------- export

    def as_dict(self) -> Dict[str, List[float]]:
        return dict(self.columns)

    def to_json(self, stream: IO[str]) -> None:
        json.dump({"every": self.every, "columns": self.columns}, stream)

    def to_csv(self, stream: IO[str]) -> None:
        names = ["cycle"] + [n for n in self.columns if n != "cycle"]
        stream.write(",".join(names) + "\n")
        for row in range(self.rows):
            stream.write(",".join(str(self.columns[n][row])
                                  for n in names) + "\n")
