"""Main memory latency model.

A flat, fixed-latency DRAM behind the LLC (160 cycles in Table 2). Memory
traffic is accounted on the stats object; we do not model a memory
controller queue — the paper's effects are on-chip.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.sim.stats import Stats


class MainMemory:
    """Fixed-latency backing store behind all LLC banks."""

    def __init__(self, config: SystemConfig, stats: Stats) -> None:
        self.latency = config.mem_latency
        self.stats = stats

    def access(self) -> int:
        """Account one memory access; returns its latency in cycles."""
        self.stats.mem_accesses += 1
        return self.latency
