"""Host-domain tracing: one ``trace_id`` from submit to simulation.

The cycle-domain telemetry (:mod:`repro.obs.spans`) sees everything
*inside* one simulation but nothing around it; the service layers grown
on top (queue, leases, workers, checkpoint resume) spend real wall-clock
that was invisible until now. This module is the host half:

* :func:`mint_trace_id` — a fresh id, minted once per *run* at queue
  ingest and threaded through journal records, lease payloads, worker
  attempts, and checkpoint resumes. Every attempt of a run — including
  the attempt after a SIGKILL — carries the same id.
* :class:`HostSpan` / :class:`TraceContext` — wall-clock spans
  (``queue.wait``, ``lease.held``, ``worker.attempt``, ``ckpt.restore``,
  ``sim.run``) recorded against a trace id.
* :class:`HostSpanLog` — an append-only JSONL sink for host spans (the
  queue's ``hostspans.jsonl``), readable per trace id.
* :func:`stitch_trace` — merges host spans with a run's cycle-domain
  Perfetto document into **one** trace: host spans land on ``host/*``
  tracks in microseconds since the trace's host epoch, cycle-domain
  events keep their cycle timestamps on their own tracks, and
  ``otherData.clock_domains`` records the per-domain units and the
  host epoch so a reader can line the two up.

The two clocks are deliberately *not* rescaled onto each other: a cycle
has no fixed wall-clock duration, and pretending otherwise would place
cycle events at fabricated host times. Separate tracks with explicit
offset metadata is the honest rendering — and Perfetto shows both side
by side.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.export import chrome_trace
from repro.obs.spans import Span

__all__ = ["mint_trace_id", "HostSpan", "TraceContext", "HostSpanLog",
           "host_spans_to_spans", "stitch_trace", "HOST_SPAN_NAMES"]

#: The host-span vocabulary, in lifecycle order. Not enforced — ad-hoc
#: names render fine — but these are the names the docs and tests use.
HOST_SPAN_NAMES = ("queue.wait", "lease.held", "worker.attempt",
                   "ckpt.restore", "sim.run")


def mint_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, host-domain only — it
    never enters a content address or a parity fingerprint)."""
    return uuid.uuid4().hex[:16]


@dataclass
class HostSpan:
    """One wall-clock interval attributed to a trace.

    ``start``/``end`` are ``time.time()`` floats; ``track`` is the
    ``host/<name>`` sub-track the span renders on (``host/queue``,
    ``host/worker``, ...).
    """

    name: str
    trace_id: str
    start: float
    end: Optional[float] = None
    track: str = "host/queue"
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "trace_id": self.trace_id,
                "start": self.start, "end": self.end, "track": self.track,
                "args": self.args}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HostSpan":
        return cls(name=data["name"], trace_id=data["trace_id"],
                   start=float(data["start"]),
                   end=(None if data.get("end") is None
                        else float(data["end"])),
                   track=data.get("track", "host/queue"),
                   args=dict(data.get("args", {})))


class TraceContext:
    """Collects host spans for one trace id inside one process.

    The worker uses this around an attempt: ``worker.attempt`` wraps the
    whole execution, ``ckpt.restore`` and ``sim.run`` nest inside it.
    ``as_dicts()`` rides back to the queue on the committed record's
    ``meta.host_spans`` (meta is never part of a parity comparison).
    """

    def __init__(self, trace_id: str, track: str = "host/worker") -> None:
        self.trace_id = trace_id
        self.track = track
        self.spans: List[HostSpan] = []
        self._open: Dict[str, HostSpan] = {}

    def begin(self, name: str, **args: Any) -> HostSpan:
        span = HostSpan(name=name, trace_id=self.trace_id,
                        start=time.time(), track=self.track, args=args)
        self._open[name] = span
        self.spans.append(span)
        return span

    def end(self, name: str, **args: Any) -> Optional[HostSpan]:
        span = self._open.pop(name, None)
        if span is None:
            return None
        span.end = time.time()
        if args:
            span.args.update(args)
        return span

    def complete(self, name: str, start: float, end: float,
                 **args: Any) -> HostSpan:
        span = HostSpan(name=name, trace_id=self.trace_id, start=start,
                        end=end, track=self.track, args=args)
        self.spans.append(span)
        return span

    def close(self, **args: Any) -> None:
        """End every still-open span now (crash-adjacent cleanup)."""
        for name in list(self._open):
            self.end(name, **args)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [span.as_dict() for span in self.spans]


class HostSpanLog:
    """Append-only JSONL log of host spans, one file per service root.

    Observability data, not a system of record: writes are flushed (so
    live stitching sees them) but never fsynced, and a torn tail is
    skipped on read exactly like the event log's.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(path, "a")

    def record(self, span: HostSpan) -> None:
        self.append_many([span])

    def append_many(self, spans: Iterable[HostSpan]) -> None:
        with self._lock:
            if self._handle is None:
                return
            for span in spans:
                self._handle.write(
                    json.dumps(span.as_dict(), sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None  # type: ignore[assignment]

    @staticmethod
    def read(path: str,
             trace_id: Optional[str] = None) -> List[HostSpan]:
        """All (optionally one trace's) spans at ``path``; missing file
        reads as empty, torn/damaged lines are skipped."""
        spans: List[HostSpan] = []
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return spans
        end = data.rfind(b"\n")
        if end < 0:
            return spans
        for line in data[:end + 1].splitlines():
            if not line.strip():
                continue
            try:
                item = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if not isinstance(item, dict) or "trace_id" not in item:
                continue
            if trace_id is not None and item["trace_id"] != trace_id:
                continue
            spans.append(HostSpan.from_dict(item))
        return spans

    def for_trace(self, trace_id: str) -> List[HostSpan]:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        return self.read(self.path, trace_id)


# ------------------------------------------------------------- stitching

def host_spans_to_spans(host_spans: Sequence[HostSpan],
                        epoch: Optional[float] = None) -> List[Span]:
    """Host spans -> cycle-layer :class:`Span` objects on ``host/*``
    tracks, with timestamps in integer microseconds since ``epoch``
    (default: the earliest span start)."""
    if not host_spans:
        return []
    if epoch is None:
        epoch = min(span.start for span in host_spans)
    out: List[Span] = []
    for span in sorted(host_spans, key=lambda s: (s.track, s.start)):
        start_us = max(0, int(round((span.start - epoch) * 1e6)))
        end = span.end if span.end is not None else span.start
        end_us = max(start_us, int(round((end - epoch) * 1e6)))
        args = dict(span.args)
        args["trace_id"] = span.trace_id
        if span.end is None:
            args["truncated"] = True
        out.append(Span(span.name, "host", span.track, start_us, end_us,
                        args))
    return out


def stitch_trace(host_spans: Sequence[HostSpan],
                 cycle_doc: Optional[Dict[str, Any]] = None,
                 label: str = "stitched",
                 trace_id: Optional[str] = None) -> Dict[str, Any]:
    """One Perfetto document holding both clock domains.

    ``host_spans`` render on ``host/*`` tracks (µs since host epoch);
    ``cycle_doc`` — a chrome-trace document from
    :meth:`~repro.obs.telemetry.Telemetry.perfetto` or an exported
    ``trace.json`` artifact — contributes its events untouched (cycle
    timestamps on thread/core/bank/counter tracks). The merged
    ``otherData`` names each domain's unit and the host epoch, which is
    the per-run offset a reader needs to correlate the two.
    """
    if trace_id is not None:
        host_spans = [s for s in host_spans if s.trace_id == trace_id]
    epoch = (min(s.start for s in host_spans) if host_spans else 0.0)
    doc = chrome_trace(spans=host_spans_to_spans(host_spans, epoch),
                       label=label)
    events = doc["traceEvents"]
    if cycle_doc is not None:
        meta = [e for e in events if e.get("ph") == "M"]
        body = [e for e in events if e.get("ph") != "M"]
        for event in cycle_doc.get("traceEvents", ()):
            (meta if event.get("ph") == "M" else body).append(dict(event))
        # Per-track order must stay monotonic for the validator; a
        # stable sort by (ts, pid, tid) preserves it on every track
        # (host and cycle tracks never share a (pid, tid)).
        body.sort(key=lambda e: (e.get("ts", 0), e.get("pid", 0),
                                 e.get("tid", 0)))
        doc["traceEvents"] = meta + body
    doc["otherData"] = {
        "source": label,
        "trace_id": trace_id or (host_spans[0].trace_id
                                 if host_spans else None),
        "clock_domains": {
            "host": {"tracks": "host/*", "unit": "us",
                     "epoch_unix_s": epoch},
            "cycle": {"tracks": "thread/* core/* bank/* counters",
                      "unit": "cycles"},
        },
    }
    return doc
