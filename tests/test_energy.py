"""Energy model and the Figure 22 story."""

import pytest

from repro.config import config_for
from repro.energy.model import (FLIT_HOP_PJ, L1_ACCESS_PJ, LLC_DATA_PJ,
                                LLC_TAG_PJ, energy_of)
from repro.harness.runner import run_config
from repro.sim.stats import Stats
from repro.workloads.microbench import LockMicrobench


class TestArithmetic:
    def test_zero_stats_zero_energy(self):
        e = energy_of(Stats())
        assert e.total_pj == 0.0

    def test_l1_term(self):
        stats = Stats()
        stats.l1_accesses = 10
        assert energy_of(stats).l1_pj == 10 * L1_ACCESS_PJ

    def test_llc_terms(self):
        stats = Stats()
        stats.llc_tag_accesses = 2
        stats.llc_data_accesses = 3
        expected = 2 * LLC_TAG_PJ + 3 * (LLC_TAG_PJ + LLC_DATA_PJ)
        assert energy_of(stats).llc_pj == expected

    def test_network_term(self):
        stats = Stats()
        stats.flit_hops = 100
        assert energy_of(stats).network_pj == 100 * FLIT_HOP_PJ

    def test_breakdown_sums(self):
        stats = Stats()
        stats.l1_accesses = 1
        stats.flit_hops = 1
        stats.mem_accesses = 1
        e = energy_of(stats)
        assert e.total_pj == pytest.approx(
            e.l1_pj + e.llc_pj + e.network_pj + e.mem_pj + e.cb_dir_pj)
        assert e.onchip_pj == pytest.approx(e.total_pj - e.mem_pj)

    def test_as_dict_keys(self):
        d = energy_of(Stats()).as_dict()
        assert set(d) == {"l1", "llc", "network", "mem", "cb_dir", "total"}


class TestFigure22Story:
    """Section 5.4.2: invalidation spins in the (expensive) L1; back-off
    shifts energy to LLC+network; callbacks minimize all three."""

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for label in ("Invalidation", "BackOff-0", "CB-One"):
            out[label] = run_config(
                label, LockMicrobench("ttas", iterations=6), num_cores=16)
        return out

    def test_invalidation_l1_energy_dominates(self, runs):
        inv = runs["Invalidation"].energy
        assert inv.l1_pj > inv.llc_pj
        assert inv.l1_pj > runs["CB-One"].energy.l1_pj * 3

    def test_backoff_shifts_energy_to_llc_and_network(self, runs):
        """Back-off burns LLC energy where MESI burned L1 energy; its
        LLC and network terms also dwarf the callback ones."""
        backoff = runs["BackOff-0"].energy
        inv = runs["Invalidation"].energy
        cb = runs["CB-One"].energy
        assert backoff.llc_pj > inv.llc_pj
        assert backoff.l1_pj < inv.l1_pj
        assert backoff.llc_pj > cb.llc_pj
        assert backoff.network_pj > cb.network_pj

    def test_callbacks_minimize_total(self, runs):
        cb = runs["CB-One"].energy.onchip_pj
        assert cb < runs["Invalidation"].energy.onchip_pj
        assert cb < runs["BackOff-0"].energy.onchip_pj
