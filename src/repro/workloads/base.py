"""Workload abstraction.

A :class:`Workload` knows how to install itself on a fresh
:class:`~repro.core.machine.Machine`: allocate its synchronization
primitives and data regions, seed initial word values, and produce one
thread-body generator per hardware thread. The harness then runs the
machine and harvests stats.

Workloads are deterministic given the machine's config seed: all
randomness flows through per-thread RNGs derived from it.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, List, Sequence

from repro.core.machine import Machine, ThreadBody
from repro.core.thread import ThreadContext
from repro.mem.layout import Region
from repro.protocols.ops import DataBurst, LineAccess


class Workload:
    """Base class: subclasses implement :meth:`build`."""

    name: str = "workload"

    def build(self, machine: Machine) -> List[ThreadBody]:
        """Allocate state on ``machine`` and return the thread bodies."""
        raise NotImplementedError

    def install(self, machine: Machine) -> None:
        """Build and spawn on the machine."""
        machine.spawn(self.build(machine))

    @staticmethod
    def seed_values(machine: Machine, values: dict) -> None:
        for addr, value in values.items():
            machine.store.write(addr, value)


def make_burst(
    rng: random.Random,
    region: Region,
    lines: int,
    write_frac: float,
    line_bytes: int,
    extra_hits_per_line: int = 3,
) -> DataBurst:
    """A deterministic batch of line-granular accesses within ``region``.

    Chooses ``lines`` lines (without replacement when possible) from the
    region, marking each a write with probability ``write_frac``; adds
    ``extra_hits_per_line`` bulk L1 hits per line to model intra-line
    spatial locality.
    """
    total_lines = max(1, region.size // line_bytes)
    count = min(lines, total_lines)
    if count <= 0:
        return DataBurst(accesses=[], extra_hits=0)
    chosen = rng.sample(range(total_lines), count)
    accesses = [
        LineAccess(region.base + index * line_bytes,
                   write=rng.random() < write_frac)
        for index in chosen
    ]
    return DataBurst(accesses=accesses,
                     extra_hits=count * extra_hits_per_line)
