"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and validation.

The Chrome trace-event format (the ``traceEvents`` JSON that
https://ui.perfetto.dev and ``chrome://tracing`` load directly) maps
naturally onto the simulator's cycle domain:

* complete spans -> ``ph: "X"`` events with ``ts``/``dur`` in cycles
  (the viewer's "microseconds" read as cycles — 1 us == 1 cycle);
* open spans -> matched ``ph: "B"`` / ``ph: "E"`` pairs;
* instants -> ``ph: "i"`` with thread scope;
* sampled counter series -> ``ph: "C"`` counter tracks, rendered by
  Perfetto as stacked area charts (the LLC spin storm, directory
  occupancy, parked cores over time);
* track naming -> ``ph: "M"`` ``process_name``/``thread_name`` metadata.

Tracks like ``thread/3`` / ``core/3`` / ``bank/1`` are grouped into one
process per track family. :func:`validate_chrome_trace` checks the
invariants the tests and CI assert: per-track monotonic timestamps,
non-negative durations, and B/E events that nest and balance.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.spans import Instant, Span

#: Track-family -> synthetic pid (Perfetto groups rows by process).
_FAMILY_PIDS = {"thread": 1, "core": 2, "bank": 3, "counters": 4, "host": 5}
_FAMILY_NAMES = {
    "thread": "threads (sync episodes)",
    "core": "cores (parked / spinning)",
    "bank": "callback directory banks",
    "counters": "sampled counters",
    "host": "host",
}


def _track_ids(track: str) -> Tuple[int, int]:
    """(pid, tid) of a ``family/index`` track string."""
    family, _, index = track.partition("/")
    pid = _FAMILY_PIDS.get(family, 9)
    try:
        tid = int(index)
    except ValueError:
        tid = abs(hash(index)) % 10_000
    return pid, tid


def chrome_trace(spans: Sequence[Span] = (),
                 instants: Sequence[Instant] = (),
                 series: Optional[Dict[str, List[float]]] = None,
                 label: str = "repro") -> Dict[str, Any]:
    """Render spans/instants/sampled series as a trace-event document."""
    events: List[Dict[str, Any]] = []
    seen_tracks: Dict[str, None] = {}

    for span in spans:
        pid, tid = _track_ids(span.track)
        seen_tracks.setdefault(span.track)
        base = {"name": span.name, "cat": span.cat, "pid": pid, "tid": tid,
                "args": span.args}
        if span.end is not None:
            events.append({**base, "ph": "X", "ts": span.start,
                           "dur": span.end - span.start})
        else:
            events.append({**base, "ph": "B", "ts": span.start})

    for instant in instants:
        pid, tid = _track_ids(instant.track)
        seen_tracks.setdefault(instant.track)
        events.append({"name": instant.name, "cat": instant.cat,
                       "ph": "i", "s": "t", "ts": instant.ts,
                       "pid": pid, "tid": tid, "args": instant.args})

    if series:
        cycles = series.get("cycle", [])
        pid = _FAMILY_PIDS["counters"]
        for name, values in series.items():
            if name == "cycle":
                continue
            for cycle, value in zip(cycles, values):
                events.append({"name": name, "cat": "counter", "ph": "C",
                               "ts": cycle, "pid": pid, "tid": 0,
                               "args": {"value": value}})

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))

    meta: List[Dict[str, Any]] = []
    families = {track.partition("/")[0] for track in seen_tracks}
    if series:
        families.add("counters")
    for family in sorted(families):
        pid = _FAMILY_PIDS.get(family, 9)
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                     "args": {"name": _FAMILY_NAMES.get(family, family)}})
    for track in seen_tracks:
        pid, tid = _track_ids(track)
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": track}})

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": label, "time_unit": "cycles"},
    }


def write_chrome_trace(path: str, **kwargs: Any) -> Dict[str, Any]:
    doc = chrome_trace(**kwargs)
    with open(path, "w") as handle:
        json.dump(doc, handle)
    return doc


# ------------------------------------------------------------- conversions

def trace_events_to_spans(trace_events: Iterable[Any]) -> List[Instant]:
    """Memory-op trace (repro.trace.recorder) -> per-core instants.

    Accepts :class:`~repro.trace.recorder.TraceEvent` objects or their
    JSONL dicts; every issued op becomes an instant on its core's track,
    with racy ops categorised ``racy`` so Perfetto can filter the race
    traffic the paper's Section 2.2 argues about.
    """
    from repro.trace.recorder import RACY_KINDS
    instants: List[Instant] = []
    for event in trace_events:
        if isinstance(event, dict):
            time, core = event["time"], event["core"]
            kind, addr = event["kind"], event["addr"]
        else:
            time, core = event.time, event.core
            kind, addr = event.kind, event.addr
        cat = "racy" if kind in RACY_KINDS else "op"
        instants.append(Instant(kind, cat, f"core/{core}", time,
                                {"addr": addr}))
    return instants


# --------------------------------------------------------------- validation

def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Check trace-event invariants; returns a list of problems (empty =
    valid): per-track monotonic ``ts``, ``dur >= 0`` on X events, B/E
    balanced and properly nested per track."""
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: Dict[Any, float] = {}
    stacks: Dict[Any, List[Any]] = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph is None or "name" not in event:
            problems.append(f"event {index}: missing ph/name")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index} ({event['name']}): bad ts {ts!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(track, 0):
            problems.append(
                f"event {index} ({event['name']}): ts {ts} < previous "
                f"{last_ts[track]} on track {track}")
        last_ts[track] = ts
        if ph == "X":
            if event.get("dur", -1) < 0:
                problems.append(
                    f"event {index} ({event['name']}): X without dur >= 0")
        elif ph == "B":
            stacks.setdefault(track, []).append(event["name"])
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                problems.append(
                    f"event {index} ({event['name']}): E without open B "
                    f"on track {track}")
            else:
                stack.pop()
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: {len(stack)} unclosed B "
                            f"event(s): {stack[:3]}")
    return problems
