"""Stdlib HTTP client for the service — used by the CLI, the worker
fleet, and tests.

Raises :class:`ServeHTTPError` (carrying the HTTP status and the
server's error document) on any non-2xx response, except that
:meth:`ServeClient.lease` maps "idle" to None and the stale-lease 409
is re-raised as :class:`~repro.serve.model.StaleLeaseError` so workers
can branch on it without parsing messages.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.serve.model import StaleLeaseError

__all__ = ["ServeClient", "ServeHTTPError"]


class ServeHTTPError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, doc: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {doc.get('error', doc)}")
        self.status = status
        self.doc = doc


class ServeClient:
    """Thin JSON-over-HTTP wrapper around the service endpoints."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None) -> Any:
        url = f"{self.base_url}{path}"
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(
                    req, timeout=timeout or self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                doc = json.loads(exc.read().decode("utf-8"))
            except (ValueError, OSError):
                doc = {"error": str(exc)}
            if exc.code == 409:
                raise StaleLeaseError(doc.get("error", "stale lease")) \
                    from None
            raise ServeHTTPError(exc.code, doc) from None

    # -------------------------------------------------------------- client

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/health")

    def status(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/status")

    def submit(self, tenant: str, spec: Dict[str, Any],
               priority: int = 0,
               telemetry: bool = False) -> Dict[str, Any]:
        return self.request("POST", "/v1/jobs",
                            {"tenant": tenant, "spec": spec,
                             "priority": priority, "telemetry": telemetry})

    def submit_many(self, tenant: str, specs: List[Dict[str, Any]],
                    priority: int = 0,
                    telemetry: bool = False) -> List[Dict[str, Any]]:
        doc = self.request("POST", "/v1/sweeps",
                           {"tenant": tenant, "specs": specs,
                            "priority": priority, "telemetry": telemetry})
        return doc["submissions"]

    def submission(self, sub_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/submissions/{sub_id}")

    def result(self, ref: str) -> Dict[str, Any]:
        """Finished record for a submission id or a job key."""
        if "-" in ref:
            return self.request("GET", f"/v1/submissions/{ref}/result")
        return self.request("GET", f"/v1/runs/{ref}/result")

    def run(self, job_key: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/runs/{job_key}")

    def cancel(self, sub_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/v1/submissions/{sub_id}")

    def artifacts(self, job_key: str) -> List[str]:
        doc = self.request("GET", f"/v1/runs/{job_key}/artifacts")
        return doc["artifacts"]

    def artifact(self, job_key: str, name: str) -> bytes:
        url = f"{self.base_url}/v1/runs/{job_key}/artifacts/{name}"
        with urllib.request.urlopen(url, timeout=self.timeout) as resp:
            return resp.read()

    # ------------------------------------------------------- observability

    def metrics(self) -> str:
        """The raw Prometheus text body of ``GET /metrics``."""
        url = f"{self.base_url}/metrics"
        with urllib.request.urlopen(url, timeout=self.timeout) as resp:
            return resp.read().decode("utf-8")

    def trace(self, job_key: str) -> Dict[str, Any]:
        """The run's stitched host+cycle Perfetto document."""
        return self.request("GET", f"/v1/runs/{job_key}/trace")

    def flight(self) -> Dict[str, Any]:
        """The service's flight-recorder ring (recent queue events)."""
        return self.request("GET", "/v1/flight")

    # ----------------------------------------------------------- streaming

    def events(self, offset: int = 0, job: Optional[str] = None,
               wait_s: float = 0.0) -> Tuple[List[Dict[str, Any]], int]:
        """One tail step: events after ``offset`` (optionally filtered
        to one job, optionally long-polling) plus the next offset."""
        path = f"/v1/events?offset={offset}"
        if job:
            path += f"&job={job}"
        if wait_s:
            path += f"&wait_s={wait_s}"
        doc = self.request("GET", path,
                           timeout=max(self.timeout, wait_s + 10))
        return doc["events"], doc["offset"]

    def follow(self, job: Optional[str] = None, poll_s: float = 0.5,
               stop_after_s: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Generator over the live event stream (Ctrl-C to stop)."""
        offset = 0
        deadline = (time.monotonic() + stop_after_s
                    if stop_after_s else None)
        while deadline is None or time.monotonic() < deadline:
            events, offset = self.events(offset, job=job, wait_s=poll_s)
            for event in events:
                yield event

    # -------------------------------------------------------------- worker

    def lease(self, worker_id: str) -> Optional[Dict[str, Any]]:
        doc = self.request("POST", "/v1/worker/lease",
                           {"worker": worker_id})
        return None if doc.get("idle") else doc

    def heartbeat(self, job_key: str, token: int,
                  worker_id: str = "") -> float:
        doc = self.request("POST", "/v1/worker/heartbeat",
                           {"job_key": job_key, "token": token,
                            "worker": worker_id})
        return float(doc["expires"])

    def commit(self, job_key: str, token: int,
               record: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/v1/worker/commit",
                            {"job_key": job_key, "token": token,
                             "record": record})

    def fail(self, job_key: str, token: int, kind: str,
             error: str) -> Dict[str, Any]:
        return self.request("POST", "/v1/worker/fail",
                            {"job_key": job_key, "token": token,
                             "kind": kind, "error": error})

    # --------------------------------------------------------------- admin

    def drain(self, on: bool = True) -> Dict[str, Any]:
        return self.request("POST", "/v1/admin/drain", {"on": on})

    def expire(self) -> List[str]:
        return self.request("POST", "/v1/admin/expire", {})["requeued"]

    def wait_idle(self, timeout_s: float = 60.0,
                  poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll status until no queued/leased work remains."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status()
            runs = status["runs"]
            if not runs.get("queued", 0) and not runs.get("leased", 0):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"queue not idle after {timeout_s}s: {runs}")
            time.sleep(poll_s)
