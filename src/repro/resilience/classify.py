"""Failure classification shared by the orchestrator and the CLIs.

One taxonomy, used everywhere a run can fail: orchestrator job records
and event logs, campaign manifests, and process exit codes. The classes
are ordered by how actionable they are:

``invariant``
    A protocol invariant was violated (:class:`InvariantViolation`) —
    the simulated hardware itself is wrong. Most severe: data results
    cannot be trusted.
``liveness``
    The run stopped making progress — a deadlock (event queue drained
    with threads blocked) or a livelock (watchdog fired). Points at the
    synchronization encoding.
``timeout``
    The run exceeded its event or cycle budget
    (:class:`SimulationTimeout`) without being provably stuck.
``crash``
    The worker process died (e.g. a ``BrokenProcessPool``) — an
    infrastructure failure, not a simulation verdict.
``error``
    Any other exception.
"""

from __future__ import annotations

from typing import Mapping, Optional

#: Failure kind -> process exit code for the resilience/orchestrate CLIs.
#: ``ok`` is 0; the rest are stable, documented, and distinct so CI can
#: branch on the *class* of failure without parsing logs.
FAILURE_EXIT_CODES: Mapping[str, int] = {
    "ok": 0,
    "error": 1,
    "invariant": 2,
    "liveness": 3,
    "timeout": 4,
    "crash": 5,
    "quarantined": 6,
    "mismatch": 7,   # fault campaign: run finished but final memory diverged
}

#: The order used when one exit code must summarize many failures:
#: most severe first.
_SEVERITY = ("invariant", "mismatch", "liveness", "crash", "timeout",
             "quarantined", "error")


def classify_failure(error: Optional[BaseException]) -> str:
    """Map an exception to its failure kind (``"ok"`` for ``None``)."""
    if error is None:
        return "ok"
    # Imports are local so this module stays importable from contexts
    # that have not (and should not) pull in the whole simulator.
    from repro.sim.engine import DeadlockError, LivenessError, \
        SimulationTimeout
    if isinstance(error, SimulationTimeout):
        return "timeout"
    if isinstance(error, (DeadlockError, LivenessError)):
        return "liveness"
    try:
        from repro.validation.checker import InvariantViolation
    except ImportError:  # pragma: no cover - defensive
        InvariantViolation = ()
    if InvariantViolation and isinstance(error, InvariantViolation):
        return "invariant"
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - defensive
        BrokenProcessPool = ()
    if BrokenProcessPool and isinstance(error, BrokenProcessPool):
        return "crash"
    if isinstance(error, TimeoutError):
        return "timeout"
    return "error"


def exit_code_for(kinds) -> int:
    """One exit code summarizing a set of failure kinds: 0 if all ok,
    else the code of the most severe kind present."""
    present = {k for k in kinds if k != "ok"}
    if not present:
        return 0
    for kind in _SEVERITY:
        if kind in present:
            return FAILURE_EXIT_CODES[kind]
    return FAILURE_EXIT_CODES["error"]
