"""Encoding fidelity for the extension algorithms (MCS, ticket, RW lock,
dissemination barrier), in the style of tests/test_encodings.py."""

import pytest

from repro.config import SystemConfig
from repro.mem.layout import MemoryLayout
from repro.protocols import ops
from repro.sync import DisseminationBarrier, MCSLock, TicketLock
from repro.sync.base import SyncStyle
from repro.sync.mcs import NIL
from repro.sync.rwlock import RWLock

from tests.test_encodings import FakeCtx, ScriptedRun


def setup(primitive, threads=4):
    layout = MemoryLayout(SystemConfig(num_cores=4))
    primitive.setup(layout, threads)
    return primitive


class TestMCSEncodings:
    def test_uncontended_acquire_has_no_spin(self):
        lock = setup(MCSLock(SyncStyle.CB_ONE))

        def responder(op, _i):
            if isinstance(op, ops.Atomic):
                assert op.kind is ops.AtomicKind.SWAP
                return ops.AtomicResult(NIL, True)  # no predecessor
            return None

        run = ScriptedRun(responder)
        run.drive(lock.acquire(FakeCtx()))
        kinds = run.kinds()
        # st next=nil, swap tail, fence — and crucially no Load(CB) spin.
        assert kinds == ["StoreThrough", "Atomic", "Fence"]

    def test_contended_acquire_arms_before_linking(self):
        """locked=1 must be stored before pred.next is linked."""
        lock = setup(MCSLock(SyncStyle.CB_ONE))
        stores = []

        def responder(op, _i):
            if isinstance(op, ops.Atomic):
                return ops.AtomicResult(0xAAA000, True)  # predecessor
            if isinstance(op, ops.StoreThrough):
                stores.append((op.addr, op.value))
                return None
            if isinstance(op, (ops.LoadThrough, ops.LoadCB)):
                return 0  # released immediately
            return None

        run = ScriptedRun(responder)
        run.drive(lock.acquire(FakeCtx()))
        # stores: next=nil, locked=1, pred.next=node.
        assert len(stores) == 3
        assert stores[1][1] == 1           # arm own locked flag...
        assert stores[2][0] == 0xAAA000    # ...before linking pred.next

    def test_release_cas_fast_path(self):
        """No successor: release is one load + one CAS, no stores."""
        lock = setup(MCSLock(SyncStyle.CB_ONE))

        def responder(op, _i):
            if isinstance(op, ops.LoadThrough):
                return NIL  # next == nil
            if isinstance(op, ops.Atomic):
                assert op.kind is ops.AtomicKind.CAS
                return ops.AtomicResult(0, True)
            return None

        run = ScriptedRun(responder)
        run.drive(lock.release(FakeCtx()))
        assert run.kinds() == ["Fence", "LoadThrough", "Atomic"]

    def test_release_waits_for_late_linker(self):
        """CAS fails (successor mid-enqueue): spin on next, then signal."""
        lock = setup(MCSLock(SyncStyle.CB_ONE))
        values = iter([NIL,        # first next read
                       NIL, 0xBBB000])  # guard then ld_cb sees the link
        signals = []

        def responder(op, _i):
            if isinstance(op, (ops.LoadThrough, ops.LoadCB)):
                return next(values)
            if isinstance(op, ops.Atomic):
                return ops.AtomicResult(0xCCC000, False)  # CAS failed
            if isinstance(op, ops.StoreThrough):
                signals.append((op.addr, op.value))
                return None
            return None

        run = ScriptedRun(responder)
        run.drive(lock.release(FakeCtx()))
        # The successor's locked flag is cleared at the end.
        assert signals[-1][1] == 0


class TestTicketEncodings:
    def test_acquire_takes_ticket_then_spins(self):
        lock = setup(TicketLock(SyncStyle.CB_ONE))
        values = iter([0, 1])  # serving=0 != ticket 1; ld_cb sees 1

        def responder(op, _i):
            if isinstance(op, ops.Atomic):
                assert op.kind is ops.AtomicKind.FETCH_ADD
                return ops.AtomicResult(1, True)  # my ticket = 1
            if isinstance(op, (ops.LoadThrough, ops.LoadCB)):
                return next(values)
            return None

        run = ScriptedRun(responder)
        run.drive(lock.acquire(FakeCtx()))
        assert run.kinds() == ["Atomic", "LoadThrough", "LoadCB", "Fence"]

    def test_release_broadcasts_by_default(self):
        lock = setup(TicketLock(SyncStyle.CB_ONE))

        def responder(op, _i):
            if isinstance(op, ops.LoadThrough):
                return 3
            return None

        run = ScriptedRun(responder)
        run.drive(lock.release(FakeCtx()))
        kinds = run.kinds()
        assert kinds[-1] == "StoreThrough"  # st_cbA, not st_cb1
        assert run.ops[-1].value == 4

    def test_mesi_uses_local_spin(self):
        lock = setup(TicketLock(SyncStyle.MESI))

        def responder(op, _i):
            if isinstance(op, ops.Atomic):
                return ops.AtomicResult(0, True)
            if isinstance(op, ops.SpinUntil):
                return 0
            return None

        run = ScriptedRun(responder)
        run.drive(lock.acquire(FakeCtx()))
        assert run.kinds() == ["Atomic", "SpinUntil"]


class TestRWLockEncodings:
    def test_reader_defers_to_writers(self):
        lock = setup(RWLock(SyncStyle.CB_ONE))
        reads = []

        def responder(op, _i):
            if isinstance(op, (ops.LoadThrough, ops.LoadCB)):
                reads.append(op.addr)
                return 0  # no writers waiting, lock free
            if isinstance(op, ops.Atomic):
                assert op.kind is ops.AtomicKind.CAS
                return ops.AtomicResult(0, True)
            return None

        run = ScriptedRun(responder)
        run.drive(lock.acquire_read(FakeCtx()))
        # First probe is the writers_waiting word, then the state word.
        assert reads[0] == lock.writers_waiting_addr
        assert reads[1] == lock.state_addr

    def test_writer_announces_itself_first(self):
        lock = setup(RWLock(SyncStyle.CB_ONE))
        atomics = []

        def responder(op, _i):
            if isinstance(op, ops.Atomic):
                atomics.append((op.addr, op.kind))
                return ops.AtomicResult(0, True)
            if isinstance(op, (ops.LoadThrough, ops.LoadCB)):
                return 0
            return None

        run = ScriptedRun(responder)
        run.drive(lock.acquire_write(FakeCtx()))
        assert atomics[0] == (lock.writers_waiting_addr,
                              ops.AtomicKind.FETCH_ADD)
        assert atomics[1][1] is ops.AtomicKind.CAS


class TestDisseminationEncodings:
    def test_round_structure(self):
        """4 threads -> 2 rounds: signal partner then wait, twice."""
        barrier = setup(DisseminationBarrier(SyncStyle.CB_ALL, 4))
        ctx = FakeCtx()
        ctx.tid = 0
        signalled = []

        def responder(op, _i):
            if isinstance(op, ops.StoreThrough):
                signalled.append(op.addr)
                return None
            if isinstance(op, (ops.LoadThrough, ops.LoadCB)):
                return 1  # my sense arrives immediately
            return None

        run = ScriptedRun(responder)
        run.drive(barrier.wait(ctx))
        # Partners of thread 0: thread 1 (round 0), thread 2 (round 1).
        assert signalled == [barrier._flags[1][0], barrier._flags[2][1]]
        kinds = [k for k in run.kinds() if k != "Fence"]
        assert kinds == ["StoreThrough", "LoadThrough",
                         "StoreThrough", "LoadThrough"]

    def test_sense_alternates_across_episodes(self):
        barrier = setup(DisseminationBarrier(SyncStyle.CB_ALL, 2),
                        threads=2)
        ctx = FakeCtx()
        senses = []

        def responder(op, _i):
            if isinstance(op, ops.StoreThrough):
                senses.append(op.value)
                return None
            if isinstance(op, (ops.LoadThrough, ops.LoadCB)):
                return senses[-1]
            return None

        ScriptedRun(responder).drive(barrier.wait(ctx))
        ScriptedRun(responder).drive(barrier.wait(ctx))
        assert senses == [1, 0]  # sense reverses per episode
