"""Multi-seed replication: run an experiment across seeds and summarize.

The simulator is deterministic per seed; workload randomness (compute
skew, lock choice, data-access sampling) flows from ``SystemConfig.seed``.
Replicating a measurement across seeds gives a dispersion estimate, so a
figure's conclusion ("CB-One < BackOff-10 in traffic") can be checked for
stability rather than read off a single run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.config import config_for
from repro.harness.runner import RunResult, run_workload
from repro.workloads.base import Workload


@dataclass
class Replicate:
    """Mean/std/range of one metric across seeds."""

    values: List[float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values)
                         / (len(self.values) - 1))

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/mean)."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def lo(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def hi(self) -> float:
        return max(self.values) if self.values else 0.0

    def separated_from(self, other: "Replicate") -> bool:
        """True if the two samples' ranges do not overlap — a blunt but
        assumption-free separation test for shape assertions."""
        return self.hi < other.lo or other.hi < self.lo


def replicate(
    label: str,
    workload_factory: Callable[[], Workload],
    metric: Callable[[RunResult], float],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    **config_overrides,
) -> Replicate:
    """Run ``workload_factory()`` under ``label`` once per seed."""
    values = []
    for seed in seeds:
        config = config_for(label, seed=seed, **config_overrides)
        result = run_workload(config, workload_factory())
        values.append(metric(result))
    return Replicate(values)


def replicate_comparison(
    labels: Sequence[str],
    workload_factory: Callable[[], Workload],
    metric: Callable[[RunResult], float],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    **config_overrides,
) -> Dict[str, Replicate]:
    """Replicate one metric across several configurations."""
    return {
        label: replicate(label, workload_factory, metric, seeds,
                         **config_overrides)
        for label in labels
    }
