"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments where the ``wheel``
package (required by PEP 660 editable builds on older setuptools) is not
available — pip falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
