"""Plain-text configuration files.

Experiment automation wants machine descriptions in files (as GEMS did
with its config scripts). The format is deliberately trivial — one
``key = value`` per line, ``#`` comments — and maps 1:1 onto
:class:`~repro.config.SystemConfig` fields::

    # 16-core callback machine with a big directory
    num_cores = 16
    protocol = callback
    callback_mode = cb_one
    cb_entries_per_bank = 64
    topology = torus
    model_link_contention = true

Enum fields accept their value strings (``protocol = mesi | backoff |
callback``, ``callback_mode = cb_all | cb_one``, ``cb_wake_policy =
round_robin | random | fifo``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, TextIO, Union

from repro.config import CallbackMode, Protocol, SystemConfig, WakePolicy

_ENUMS = {
    "protocol": Protocol,
    "callback_mode": CallbackMode,
    "cb_wake_policy": WakePolicy,
}

_FIELDS = {f.name: f for f in dataclasses.fields(SystemConfig)}


class ConfigError(ValueError):
    """A malformed configuration file."""


def _parse_value(key: str, raw: str) -> Any:
    raw = raw.strip()
    if key in _ENUMS:
        enum_cls = _ENUMS[key]
        for member in enum_cls:
            if raw.lower() in (member.value.lower(), member.name.lower()):
                return member
        raise ConfigError(
            f"{key}: {raw!r} is not one of "
            f"{[m.value for m in _ENUMS[key]]}")
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    if raw.lower() in ("none", "null"):
        return None
    try:
        return int(raw, 0)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def parse_config(stream: Union[TextIO, str]) -> SystemConfig:
    """Parse a config file (or its contents) into a SystemConfig."""
    if isinstance(stream, str):
        lines = stream.splitlines()
    else:
        lines = stream.read().splitlines()
    overrides: Dict[str, Any] = {}
    for number, line in enumerate(lines, start=1):
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        if "=" not in text:
            raise ConfigError(f"line {number}: expected 'key = value', "
                              f"got {text!r}")
        key, raw = (part.strip() for part in text.split("=", 1))
        if key not in _FIELDS:
            raise ConfigError(f"line {number}: unknown field {key!r}")
        overrides[key] = _parse_value(key, raw)
    return SystemConfig(**overrides)


def load_config(path: str) -> SystemConfig:
    with open(path) as handle:
        return parse_config(handle)


def save_config(config: SystemConfig, path: str) -> None:
    """Write every field (one per line) so the file round-trips."""
    with open(path, "w") as handle:
        for name in _FIELDS:
            value = getattr(config, name)
            if hasattr(value, "value"):
                value = value.value
            elif isinstance(value, bool):
                value = "true" if value else "false"
            handle.write(f"{name} = {value}\n")
