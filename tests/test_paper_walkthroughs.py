"""The paper's worked examples, step by step.

These tests replay the exact scenarios of Figures 3, 4, 5, and 6 against
the callback directory and assert every intermediate state the paper
draws — the strongest evidence that the mechanism implemented here is
the mechanism described.
"""

import pytest

from repro.config import CallbackMode, config_for
from repro.core.machine import Machine
from repro.protocols import ops

from tests.protocol_utils import issue, issue_pending

ADDR = 0x4000
FULL = 0b1111  # 4 cores


def machine(mode="CB-All"):
    return Machine(config_for(mode, num_cores=4))


def entry(m):
    return m.protocol.cb_dirs[m.protocol.bank_of(ADDR)].lookup(
        m.protocol.addr_map.word_base(ADDR))


class TestFigure3CallbackAll:
    """Figure 3: the callback-all directory entry through six steps."""

    def test_walkthrough(self):
        m = machine("CB-All")

        # Step 1: first callback installs the entry with all F/E full;
        # "all cores read the variable after its callback entry is
        # installed so the starting state of all the bits is 0".
        for core in range(4):
            issue(m, core, ops.LoadCB(ADDR))
        e = entry(m)
        assert e.fe == 0 and e.cb == 0 and e.mode_all

        # Step 2: cores 0 and 2 issue callback reads; they block and set
        # their CB bits.
        fut0 = issue_pending(m, 0, ops.LoadCB(ADDR))
        fut2 = issue_pending(m, 2, ops.LoadCB(ADDR))
        e = entry(m)
        assert not fut0.done and not fut2.done
        assert e.cb == 0b0101
        assert e.fe == 0

        # Step 3: core 3 writes; both callbacks are activated, two wakeup
        # messages carry the new value; the F/E bits of the cores that
        # did NOT have a callback are set to full.
        issue(m, 3, ops.StoreThrough(ADDR, 42))
        m.engine.run()
        assert fut0.done and fut0.value == 42
        assert fut2.done and fut2.value == 42
        e = entry(m)
        assert e.cb == 0
        assert e.fe == 0b1010  # cores 1 and 3 full; 0 and 2 consumed

        # Step 4: core 1 issues a callback, finds its F/E bit full,
        # consumes the value, leaves both bits unset.
        assert issue(m, 1, ops.LoadCB(ADDR)) == 42
        e = entry(m)
        assert e.fe == 0b1000  # only core 3 still full
        assert e.cb == 0

        # Step 5: replacement with a callback set: the evicted entry's
        # waiters are answered with the current value.
        m2 = Machine(config_for("CB-All", num_cores=4,
                                cb_entries_per_bank=1))
        for core in range(4):
            issue(m2, core, ops.LoadCB(ADDR))
        parked = issue_pending(m2, 0, ops.LoadCB(ADDR))
        m2.store.write(ADDR, 7)  # the "current value" at eviction time
        other = ADDR + m2.config.line_bytes * m2.config.num_banks
        issue(m2, 2, ops.LoadCB(other))  # forces the eviction
        m2.engine.run()
        assert parked.done and parked.value == 7

        # Step 6: a new entry created after the loss starts over: all
        # F/E full, no callbacks.
        issue(m2, 1, ops.LoadCB(ADDR))  # re-install
        e2 = m2.protocol.cb_dirs[m2.protocol.bank_of(ADDR)].lookup(
            m2.protocol.addr_map.word_base(ADDR))
        assert e2.cb == 0
        # Core 1 just consumed its (freshly full) bit; the rest are full.
        assert e2.fe == FULL & ~0b0010


class TestFigure4CallbackOne:
    """Figure 4: lock-optimized callback with write_CB1."""

    def test_walkthrough(self):
        m = machine("CB-One")

        # Reach step 1: A/O = One with all F/E bits full. A st_cb1 with
        # no waiters produces exactly this state.
        issue(m, 0, ops.LoadCB(ADDR))      # install
        issue(m, 0, ops.StoreCB1(ADDR, 0))  # -> One mode, F/E all full
        e = entry(m)
        assert not e.mode_all
        assert e.fe == FULL

        # Step 2: core 2 reads the lock; ALL the F/E bits empty at once.
        assert issue(m, 2, ops.LoadCB(ADDR)) == 0
        e = entry(m)
        assert e.fe == 0

        # Steps 3-5: cores 0, 1, 3 must set callbacks and wait.
        futures = {c: issue_pending(m, c, ops.LoadCB(ADDR))
                   for c in (0, 1, 3)}
        e = entry(m)
        assert e.cb == 0b1011
        assert not any(f.done for f in futures.values())

        # Step 6: core 2 releases with write_CB1: exactly one waiter is
        # woken; the F/E bits are left undisturbed (all empty).
        issue(m, 2, ops.StoreCB1(ADDR, 0))
        m.engine.run()
        woken = [c for c, f in futures.items() if f.done]
        assert len(woken) == 1
        e = entry(m)
        assert e.fe == 0  # step 9's "undisturbed, set to empty"
        assert bin(e.cb).count("1") == 2

    def test_round_robin_hand_off_order(self):
        """Figure 4's arrival order 2,0,1,3 services in order 2,3,0,1
        under the pseudo-random round-robin policy (scan upward from the
        pointer, wrap at the highest id)."""
        m = machine("CB-One")
        issue(m, 0, ops.LoadCB(ADDR))
        issue(m, 0, ops.StoreCB1(ADDR, 0))  # One mode, full
        # Core 2 consumes (gets the lock).
        issue(m, 2, ops.LoadCB(ADDR))
        e = entry(m)
        e.rr_ptr = 3  # the paper's example starts its scan at core 3
        # Cores 0, 1, 3 park (arrival order 0, 1, 3).
        futures = {c: issue_pending(m, c, ops.LoadCB(ADDR))
                   for c in (0, 1, 3)}
        order = []
        for _ in range(3):
            issue(m, 2, ops.StoreCB1(ADDR, 0))
            m.engine.run()
            newly = [c for c, f in futures.items()
                     if f.done and c not in order]
            order.extend(newly)
        assert order == [3, 0, 1]  # 2 already ran: full order 2,3,0,1


class TestFigures5And6RMW:
    """Figures 5/6: premature wakeups with write_CB1 vs write_CB0."""

    def _take_lock_then_park_two(self, m):
        """Core 2 takes the lock; cores 3 and 0 park their callback
        T&S RMWs (arrival order 3 then 0, as in the figures)."""
        r = issue(m, 2, ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1),
                                   ld=ops.LdKind.CB, st=ops.StKind.CB0))
        assert r.success
        futures = {}
        for core in (3, 0):
            futures[core] = issue_pending(
                m, core, ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1),
                                    ld=ops.LdKind.CB, st=ops.StKind.CB0))
        assert not any(f.done for f in futures.values())
        return futures

    def test_figure5_write_cb1_wakes_prematurely(self):
        """If the acquiring RMW wrote with write_CB1 it would wake core 3
        only for its T&S to fail — the wasted turn of Figure 5."""
        m = machine("CB-One")
        # Install; a waiter-less st_cb1 leaves One mode with F/E full,
        # so core 2's acquiring RMW can consume (Figure 5 step 1).
        issue(m, 1, ops.LoadCB(ADDR))
        issue(m, 1, ops.StoreCB1(ADDR, 0))
        # Core 2 acquires with st_cb1 (the Figure 5 mistake).
        r = issue(m, 2, ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1),
                                   ld=ops.LdKind.CB, st=ops.StKind.CB1))
        assert r.success
        fut3 = issue_pending(m, 3, ops.Atomic(ADDR, ops.AtomicKind.TAS,
                                              (0, 1), ld=ops.LdKind.CB,
                                              st=ops.StKind.CB1))
        # Wait: core 3 parks only if nothing woke it... park happens
        # because the lock write used st_cb1 with no waiters yet ->
        # F/E full -> core 3's RMW consumes and FAILS immediately
        # (the premature wakeup): its T&S returns failure.
        m.engine.run()
        assert fut3.done
        assert fut3.value.success is False  # lost its turn (Figure 5)

    def test_figure6_write_cb0_avoids_premature_wakeups(self):
        """With write_CB0 in the RMW, parked acquires stay asleep until
        the release, and the hand-off wastes no turns."""
        m = machine("CB-One")
        issue(m, 1, ops.LoadCB(ADDR))
        issue(m, 1, ops.StoreCB1(ADDR, 0))  # One mode, F/E full
        futures = self._take_lock_then_park_two(m)

        # The successful acquire (st_cb0) woke nobody.
        assert not any(f.done for f in futures.values())

        # Release with write_CB1: exactly one parked RMW executes, and it
        # succeeds (no wasted turns).
        issue(m, 2, ops.StoreCB1(ADDR, 0))
        m.engine.run()
        done = [c for c, f in futures.items() if f.done]
        assert len(done) == 1
        assert futures[done[0]].value.success is True
        # The winner's own st_cb0 again woke nobody.
        remaining = [c for c in futures if c not in done]
        assert not futures[remaining[0]].done
