"""The repro-report CLI."""

import pytest

from repro.tools.report import main as report_main


class TestReportCLI:
    def test_app_report(self, capsys):
        rc = report_main(["--app", "swaptions", "--config", "CB-One",
                          "--cores", "4", "--scale", "0.2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "swaptions under CB-One" in out
        assert "callback directory" in out
        assert "energy (nJ)" in out

    def test_lock_ubench_report(self, capsys):
        rc = report_main(["--ubench", "lock:ttas", "--config", "BackOff-5",
                          "--cores", "4", "--iterations", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ubench_lock_ttas under BackOff-5" in out
        assert "episode 'lock_acquire'" in out

    def test_barrier_ubench_report(self, capsys):
        rc = report_main(["--ubench", "barrier:sr", "--config",
                          "Invalidation", "--cores", "4",
                          "--iterations", "2"])
        assert rc == 0
        assert "barrier_wait" in capsys.readouterr().out

    def test_signal_wait_report(self, capsys):
        rc = report_main(["--ubench", "signal-wait", "--config", "CB-All",
                          "--cores", "4", "--iterations", "2"])
        assert rc == 0

    def test_unknown_ubench_rejected(self):
        with pytest.raises(SystemExit):
            report_main(["--ubench", "bogus:thing", "--cores", "4"])

    def test_app_and_ubench_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            report_main(["--app", "barnes", "--ubench", "lock:ttas"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            report_main(["--app", "quake3"])
