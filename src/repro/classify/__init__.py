"""Private/shared data classification for self-invalidation protocols."""

from repro.classify.pagetable import PageClassifier

__all__ = ["PageClassifier"]
