"""repro.resilience: fault plans, injection, liveness, campaigns, CLI."""

import json
import pickle

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.harness.runner import run_config
from repro.harness.sweeps import Sweep
from repro.obs.export import validate_chrome_trace
from repro.protocols.ops import (BackoffWait, Compute, Load, LoadThrough,
                                 StKind)
from repro.resilience import (FAILURE_EXIT_CODES, Fault, FaultKind, FaultPlan,
                              Resilience, ResilienceConfig, classify_failure,
                              execute_plan, exit_code_for, load_plan_by_key,
                              make_fault_plan, minimize_plan, run_campaign)
from repro.resilience.cli import main as cli_main
from repro.sim.engine import (DeadlockError, LivenessError, SimulationError,
                              SimulationTimeout)
from repro.sync import make_lock, style_for
from repro.sync.ticket import TicketLock
from repro.validation import InvariantViolation
from repro.workloads.microbench import LockMicrobench

WORKLOAD = {"lock_name": "ttas", "iterations": 2}
OVERRIDES = {"num_cores": 4}


def plan_for(label, count=0, kinds=(FaultKind.CB_EVICT,), fault_seed=0,
             horizon=1500, seed=1, **extra_overrides):
    return make_fault_plan(label, "lock", WORKLOAD,
                           {**OVERRIDES, **extra_overrides}, seed=seed,
                           fault_seed=fault_seed, kinds=kinds, count=count,
                           horizon=horizon)


def contended_machine(label, resilience=None, threads=4, iterations=3):
    """A 4-core TTAS-contention machine, ready to run."""
    cfg = config_for(label, num_cores=4)
    machine = Machine(cfg, resilience=resilience)
    lock = make_lock("ttas", style_for(cfg))
    lock.setup(machine.layout, threads)
    for addr, value in lock.initial_values().items():
        machine.store.write(addr, value)

    def body(ctx):
        for _ in range(iterations):
            yield from lock.acquire(ctx)
            yield Compute(20)
            yield from lock.release(ctx)
            yield Compute(1 + ctx.rng.randrange(30))

    machine.spawn([body] * threads)
    return machine


# --------------------------------------------------------------- fault plans


class TestFaultPlans:
    def test_key_is_content_addressed(self):
        a = plan_for("CB-One", count=4)
        b = plan_for("CB-One", count=4)
        assert a.plan_key() == b.plan_key()
        assert len(a.plan_key()) == 64
        assert plan_for("CB-One", count=4, fault_seed=1).plan_key() \
            != a.plan_key()
        assert plan_for("CB-All", count=4).plan_key() != a.plan_key()
        assert plan_for("CB-One", count=4, seed=2).plan_key() != a.plan_key()
        assert a.subset(a.faults[:2]).plan_key() != a.plan_key()

    def test_schedule_is_a_pure_function_of_its_seed(self):
        a = plan_for("CB-One", count=6, fault_seed=9)
        b = plan_for("CB-One", count=6, fault_seed=9)
        assert a.faults == b.faults

    def test_roundtrip_and_load_by_key(self, tmp_path):
        plan = plan_for("CB-One", count=5,
                        kinds=(FaultKind.CB_EVICT, FaultKind.WAKEUP_DELAY))
        path = plan.save(str(tmp_path))
        assert FaultPlan.load(path).plan_key() == plan.plan_key()
        loaded = load_plan_by_key(str(tmp_path), plan.plan_key()[:10])
        assert loaded.faults == plan.faults

    def test_prefix_lookup_rejects_missing_and_ambiguous(self, tmp_path):
        plan_for("CB-One", count=1).save(str(tmp_path))
        plan_for("CB-One", count=2).save(str(tmp_path))
        with pytest.raises(FileNotFoundError):
            load_plan_by_key(str(tmp_path), "not-a-hash")
        with pytest.raises(ValueError, match="ambiguous"):
            load_plan_by_key(str(tmp_path), "")

    def test_requested_kinds_all_appear(self):
        plan = plan_for("CB-One", count=4,
                        kinds=(FaultKind.CB_EVICT, FaultKind.L1_DROP))
        assert plan.kinds() == ["cb_evict", "l1_drop"]


# ----------------------------------------------------- inertness / identity


class TestInertResilience:
    """An attached-but-empty resilience layer must change nothing."""

    @pytest.mark.parametrize("label",
                             ["Invalidation", "BackOff-10", "CB-One",
                              "CB-All"])
    def test_empty_plan_is_bit_identical(self, label):
        plain = run_config(label, LockMicrobench("ttas", iterations=3),
                           num_cores=4)
        armed = run_config(
            label, LockMicrobench("ttas", iterations=3),
            resilience=Resilience(ResilienceConfig(
                plan=plan_for(label, count=0), watchdog_stall=100_000)),
            num_cores=4)
        assert armed.stats.cycles == plain.stats.cycles
        assert armed.stats.counters() == plain.stats.counters()
        # An empty plan installs no hooks at all.
        assert armed.resilience.injector is None

    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ResilienceConfig(audit_every=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(watchdog_stall=-5)
        with pytest.raises(TypeError):
            Resilience(ResilienceConfig(), audit_every=100)


# ------------------------------------------------------------- injection


class TestInjector:
    def test_forced_evictions_are_survived_and_counted(self):
        faults = [Fault(kind=FaultKind.CB_EVICT, cycle=cycle, selector=s)
                  for s, cycle in enumerate(range(150, 1200, 150))]
        plan = plan_for("CB-One").subset(faults)
        resilience = Resilience(ResilienceConfig(plan=plan))
        machine = contended_machine("CB-One", resilience=resilience)
        stats = machine.run()
        assert stats.cb_forced_evictions >= 1
        assert stats.faults_injected >= stats.cb_forced_evictions
        summary = resilience.injector.summary()
        # Faults scheduled past the end of the run never fire (daemon
        # events do not keep the simulation alive).
        assert 1 <= summary["events_fired"] <= len(faults)
        assert summary["events_applied"] == stats.cb_forced_evictions

    def test_wakeup_windows_are_charged_to_stats(self):
        faults = [
            Fault(kind=FaultKind.WAKEUP_DELAY, cycle=0, duration=50_000,
                  magnitude=25),
            Fault(kind=FaultKind.WAKEUP_DUP, cycle=0, duration=50_000,
                  magnitude=1),
        ]
        plan = plan_for("CB-One").subset(faults)
        machine = contended_machine(
            "CB-One", resilience=Resilience(ResilienceConfig(plan=plan)))
        stats = machine.run()
        assert stats.msgs_delayed > 0
        assert stats.msgs_duplicated > 0

    def test_backoff_perturb_on_vips(self):
        faults = [Fault(kind=FaultKind.BACKOFF_PERTURB, cycle=0,
                        duration=50_000, magnitude=7)]
        plan = plan_for("BackOff-10").subset(faults)
        machine = contended_machine(
            "BackOff-10", resilience=Resilience(ResilienceConfig(plan=plan)))
        stats = machine.run()
        assert stats.backoff_perturbations > 0

    def test_l1_drop_hits_a_clean_line(self):
        # Clean (read-only) lines are the only droppable ones, so give
        # core 0 a read-heavy body instead of a write-heavy lock loop.
        faults = [Fault(kind=FaultKind.L1_DROP, cycle=cycle, selector=0)
                  for cycle in range(100, 2_000, 100)]
        plan = plan_for("BackOff-10").subset(faults)
        machine = Machine(config_for("BackOff-10", num_cores=4),
                          resilience=Resilience(ResilienceConfig(plan=plan)))
        addrs = machine.layout.alloc_sync_words(8)

        def reader(ctx):
            for _ in range(20):
                for addr in addrs:
                    yield Load(addr)
                    yield Compute(10)

        machine.spawn([reader])
        stats = machine.run()
        assert stats.l1_fault_drops >= 1
        assert stats.faults_injected >= stats.l1_fault_drops


# -------------------------------------------------------------- campaigns


class TestCampaign:
    def test_forced_evictions_preserve_function(self, tmp_path):
        out = tmp_path / "out"
        result = run_campaign(
            ["CB-One", "CB-All"], "lock", WORKLOAD, OVERRIDES,
            seeds=(1,), kinds=(FaultKind.CB_EVICT,), fault_seeds=(0, 1),
            count=6, horizon=1500, out_dir=str(out))
        assert result.ok, result.manifest()
        assert len(result.outcomes) == 4
        for outcome in result.outcomes:
            assert outcome.fingerprint == outcome.baseline_fingerprint
        assert sum(o.faults_applied for o in result.outcomes) > 0
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["total"] == 4
        assert manifest["by_status"] == {"ok": 4}
        assert manifest["failures"] == []

    def test_mixed_kind_campaign_is_functionally_clean(self):
        result = run_campaign(
            ["CB-One"], "lock", WORKLOAD, OVERRIDES, seeds=(1,),
            kinds=(FaultKind.CB_EVICT, FaultKind.WAKEUP_DELAY,
                   FaultKind.WAKEUP_DUP, FaultKind.BACKOFF_PERTURB),
            fault_seeds=(0,), count=8, horizon=1500)
        assert result.ok, result.manifest()
        assert result.summary() == "1 plan(s): 1 ok"


# --------------------------------------------------- failing-plan lifecycle


def timeout_plan():
    """A genuinely failing plan: one huge wakeup delay pushes a TTAS run
    past a cycle budget the fault-free run comfortably meets."""
    base = execute_plan(plan_for("CB-One"), baseline="")
    assert base.status == "ok"
    budget = base.cycles + 300
    delay = Fault(kind=FaultKind.WAKEUP_DELAY, cycle=0,
                  duration=budget + 10_000, magnitude=4_000)
    return FaultPlan(config_label="CB-One", workload="lock",
                     workload_params=dict(WORKLOAD),
                     config_overrides={**OVERRIDES, "max_cycles": budget},
                     seed=1, fault_seed=3, faults=[delay])


class TestFailingPlans:
    def test_failure_replays_deterministically_by_hash(self, tmp_path):
        plan = timeout_plan()
        first = execute_plan(plan)
        second = execute_plan(plan)
        assert first.status == "timeout"
        assert (second.status, second.cycles) == (first.status, first.cycles)
        plans_dir = str(tmp_path / "plans")
        plan.save(plans_dir)
        loaded = load_plan_by_key(plans_dir, plan.plan_key()[:12])
        replay = execute_plan(loaded)
        assert (replay.status, replay.cycles) == (first.status, first.cycles)

    def test_cli_replay_exit_code_names_the_class(self, tmp_path, capsys):
        plan = timeout_plan()
        plans_dir = str(tmp_path / "plans")
        plan.save(plans_dir)
        rc = cli_main(["replay", plan.plan_key()[:12], "--plans", plans_dir])
        assert rc == FAILURE_EXIT_CODES["timeout"] == 4
        assert "status=timeout" in capsys.readouterr().out

    def test_minimize_isolates_the_culprit(self):
        plan = timeout_plan()
        decoys = [Fault(kind=FaultKind.BACKOFF_PERTURB, cycle=10 + i,
                        duration=5, selector=i, magnitude=1)
                  for i in range(3)]
        fat = plan.subset(list(plan.faults) + decoys)
        assert execute_plan(fat).status == "timeout"
        minimal = minimize_plan(fat)
        assert len(minimal) < len(fat)
        assert execute_plan(minimal).status == "timeout"
        assert any(f.kind is FaultKind.WAKEUP_DELAY for f in minimal.faults)


# ------------------------------------------------------ liveness watchdog


class TestWatchdog:
    def test_livelock_raises_with_structured_diagnosis(self):
        cfg = config_for("BackOff-10", num_cores=4)
        resilience = Resilience(ResilienceConfig(watchdog_stall=3_000))
        machine = Machine(cfg, resilience=resilience)
        flag = machine.layout.alloc_sync_word()

        def spinner(ctx):
            attempt = 0
            while True:
                value = yield LoadThrough(flag)
                if value:   # never: nobody stores to flag
                    break
                yield BackoffWait(min(attempt, 6))
                attempt += 1

        machine.spawn([spinner])
        with pytest.raises(LivenessError) as excinfo:
            machine.run()
        diag = excinfo.value.diagnosis
        assert diag is not None
        assert diag.kind == "livelock"
        assert 0 in diag.blocked_cores()
        assert validate_chrome_trace(diag.to_trace()) == []

    def test_quiet_watchdog_does_not_fire_on_progress(self):
        machine = contended_machine(
            "CB-One",
            resilience=Resilience(ResilienceConfig(watchdog_stall=100_000)))
        machine.run()   # completes without LivenessError


# ------------------------------------------------- deadlock post-mortems


def deadlocked_ticket_machine():
    """The st_cb1 lost-wakeup scenario from the sync test suite: waking
    one arbitrary waiter of a value-matched spin parks everyone."""
    cfg = config_for("CB-One", num_cores=4)
    machine = Machine(cfg)
    lock = TicketLock(style_for(cfg), release_kind=StKind.CB1)
    lock.setup(machine.layout, 4)
    for addr, value in lock.initial_values().items():
        machine.store.write(addr, value)

    def body(ctx):
        yield Compute(1 + (3 - ctx.tid) * 60)
        yield from lock.acquire(ctx)
        yield Compute(500)
        yield from lock.release(ctx)

    machine.spawn([body] * 4)
    return machine


class TestDeadlockDiagnosis:
    def test_lost_wakeup_names_the_parked_waiters(self):
        machine = deadlocked_ticket_machine()
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        diag = excinfo.value.diagnosis
        assert diag is not None
        assert diag.kind == "deadlock"
        parked = diag.parked_waiter_cores()
        assert parked, "diagnosis must name the parked waiters"
        assert set(parked) <= set(diag.blocked_cores())
        assert {w["core"] for w in diag.waiters} == set(parked)
        for waiter in diag.waiters:
            assert waiter["since"] <= diag.cycle

    def test_diagnosis_trace_is_perfetto_loadable(self, tmp_path):
        machine = deadlocked_ticket_machine()
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        diag = excinfo.value.diagnosis
        assert validate_chrome_trace(diag.to_trace()) == []
        path = tmp_path / "deadlock.trace.json"
        diag.write_trace(str(path))
        data = json.loads(path.read_text())
        assert data["traceEvents"]
        phases = {event["ph"] for event in data["traceEvents"]}
        assert "X" in phases   # parked-waiter spans
        assert "i" in phases   # the verdict instant


# ----------------------------------------------------- simulation budgets


class TestCycleDeadline:
    def test_machine_max_cycles_reports_progress(self):
        cfg = config_for("CB-One", num_cores=4, max_cycles=200)
        machine = Machine(cfg)
        lock = make_lock("ttas", style_for(cfg))
        lock.setup(machine.layout, 4)
        for addr, value in lock.initial_values().items():
            machine.store.write(addr, value)

        def body(ctx):
            for _ in range(50):
                yield from lock.acquire(ctx)
                yield Compute(100)
                yield from lock.release(ctx)

        machine.spawn([body] * 4)
        with pytest.raises(SimulationTimeout) as excinfo:
            machine.run()
        exc = excinfo.value
        assert exc.reason == "max_cycles"
        assert exc.cycle <= 200
        assert sorted(exc.progress) == [0, 1, 2, 3]
        assert isinstance(exc, SimulationError)

    def test_timeout_pickles_with_structure(self):
        exc = SimulationTimeout("m", reason="max_cycles", cycle=7, events=3,
                                progress={0: 2, 1: 5})
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.reason == "max_cycles"
        assert (clone.cycle, clone.events) == (7, 3)
        assert clone.progress == {0: 2, 1: 5}


# ------------------------------------------------------- periodic audits


class TestPeriodicAudits:
    def test_clean_run_passes_audits(self):
        result = run_config("CB-One", LockMicrobench("ttas", iterations=3),
                            audit_every=400, num_cores=4)
        summary = result.resilience.summary()
        assert summary["audits_run"] > 0
        assert "callback_directory" in summary["audit_checks"]

    def test_audited_sweeps_are_serial_only(self):
        sweep = Sweep(configs=["CB-One"], workload_spec="lock",
                      spec_params=dict(WORKLOAD),
                      metrics={"cycles": lambda r: r.cycles})
        with pytest.raises(ValueError, match="serial-only"):
            sweep.run(jobs=2, audit_every=100, num_cores=4)


# ------------------------------------------------------ failure taxonomy


class TestClassification:
    def test_exceptions_map_to_kinds(self):
        assert classify_failure(SimulationTimeout("t")) == "timeout"
        assert classify_failure(DeadlockError("d")) == "liveness"
        assert classify_failure(LivenessError("l")) == "liveness"
        assert classify_failure(InvariantViolation("i")) == "invariant"
        assert classify_failure(TimeoutError()) == "timeout"
        assert classify_failure(ValueError("v")) == "error"

    def test_exit_code_picks_the_most_severe(self):
        assert exit_code_for([]) == 0
        assert exit_code_for(["ok", "ok"]) == 0
        assert exit_code_for(["ok", "timeout"]) == 4
        assert exit_code_for(["timeout", "invariant"]) == 2
        assert exit_code_for(["quarantined", "liveness"]) == 3
        assert exit_code_for(["mismatch", "error"]) == 7


# ------------------------------------------------------------------- CLI


class TestCampaignCLI:
    def test_campaign_smoke(self, tmp_path, capsys):
        out = tmp_path / "out"
        rc = cli_main(["campaign", "--configs", "CB-One",
                       "--workload", "lock:ttas", "--param", "iterations=2",
                       "--cores", "4", "--count", "4", "--horizon", "1500",
                       "--out", str(out)])
        assert rc == 0
        assert (out / "manifest.json").exists()
        assert "1 ok" in capsys.readouterr().out
