"""Stats container: counters, episodes, merging."""

from repro.sim.stats import Stats


class TestCounters:
    def test_record_message(self):
        stats = Stats()
        stats.record_message("Data", flits=5, hops=3, size_bytes=72)
        assert stats.messages == 1
        assert stats.flits == 5
        assert stats.flit_hops == 15
        assert stats.byte_hops == 216
        assert stats.msg_kinds["Data"] == 1

    def test_episode_recording(self):
        stats = Stats()
        stats.record_episode("lock_acquire", 10)
        stats.record_episode("lock_acquire", 30)
        assert stats.episode_mean("lock_acquire") == 20.0
        assert stats.episode_total("lock_acquire") == 40

    def test_episode_mean_of_empty(self):
        assert Stats().episode_mean("nothing") == 0.0

    def test_summary_keys(self):
        summary = Stats().summary()
        for key in ("cycles", "llc_accesses", "flit_hops", "messages"):
            assert key in summary


class TestMerge:
    def test_counters_sum(self):
        a, b = Stats(), Stats()
        a.l1_accesses = 3
        b.l1_accesses = 4
        a.cycles = 10
        b.cycles = 20
        a.merge(b)
        assert a.l1_accesses == 7
        assert a.cycles == 30

    def test_msg_kinds_sum(self):
        a, b = Stats(), Stats()
        a.record_message("Inv", 1, 2, 8)
        b.record_message("Inv", 1, 1, 8)
        b.record_message("Ack", 1, 1, 8)
        a.merge(b)
        assert a.msg_kinds["Inv"] == 2
        assert a.msg_kinds["Ack"] == 1

    def test_episodes_concatenate(self):
        a, b = Stats(), Stats()
        a.record_episode("wait", 5)
        b.record_episode("wait", 7)
        a.merge(b)
        assert a.episode_latencies["wait"] == [5, 7]

    def test_max_active_entries_takes_max(self):
        a, b = Stats(), Stats()
        a.cb_max_active_entries = 2
        b.cb_max_active_entries = 5
        a.merge(b)
        assert a.cb_max_active_entries == 5

    def test_parked_cycles_sum(self):
        a, b = Stats(), Stats()
        a.cb_parked_cycles = 100
        b.cb_parked_cycles = 50
        a.merge(b)
        assert a.cb_parked_cycles == 150
