"""Wall-clock profiler: where does *host* time go while simulating?

The ROADMAP wants the simulator "as fast as the hardware allows"; this
profiler answers "fast at what?". It installs itself as the engine's step
hook and attributes the host-seconds of every executed event callback to
a *component label* derived from the callback's defining module and
qualname — e.g. ``protocols.mesi.protocol:MESIProtocol._dir_getx`` or
``core.core:Core._resume`` — so a run's hot protocol paths show up
directly, without cProfile's interpreter-wide overhead or its blindness
to which engine event a frame belongs to.

Labels are cached per code object, so the steady-state cost is one dict
hit and two ``perf_counter`` calls per event (~100ns); attach it only
when profiling (``TelemetryConfig(profile=True)`` or ``repro-obs
profile``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Engine


def component_label(callback: Callable[[], None]) -> str:
    """``module:qualname`` of a callback, trimmed to the component level.

    Lambdas and closures report the method they were defined in (their
    qualname up to ``.<locals>``), which is exactly the protocol handler
    the engine event belongs to.
    """
    module = getattr(callback, "__module__", None) or "?"
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        qualname = type(callback).__name__
    qualname = qualname.split(".<locals>")[0]
    if module.startswith("repro."):
        module = module[len("repro."):]
    return f"{module}:{qualname}"


class HostProfiler:
    """Accumulates host wall-clock per component across engine events."""

    def __init__(self) -> None:
        # label -> [calls, seconds]
        self._acc: Dict[str, List[float]] = {}
        self._labels: Dict[Any, str] = {}  # code object -> label cache
        self._engine: Optional[Engine] = None
        self.events = 0
        self.total_s = 0.0

    # ----------------------------------------------------------- attaching

    def attach(self, engine: Engine) -> None:
        if engine.profile_hook is not None:
            raise RuntimeError("engine already has a profile hook")
        engine.profile_hook = self._step
        self._engine = engine

    def detach(self) -> None:
        if self._engine is not None:
            self._engine.profile_hook = None
            self._engine = None

    def _label_of(self, callback: Callable[[], None]) -> str:
        code = getattr(callback, "__code__", None)
        if code is None:
            func = getattr(callback, "__func__", None)
            code = getattr(func, "__code__", None)
        if code is None:
            return component_label(callback)
        label = self._labels.get(code)
        if label is None:
            label = component_label(callback)
            self._labels[code] = label
        return label

    def _step(self, callback: Callable[[], None]) -> None:
        t0 = time.perf_counter()
        try:
            callback()
        finally:
            elapsed = time.perf_counter() - t0
            bucket = self._acc.setdefault(self._label_of(callback), [0, 0.0])
            bucket[0] += 1
            bucket[1] += elapsed
            self.events += 1
            self.total_s += elapsed

    # ------------------------------------------------------------- results

    def by_component(self) -> List[Tuple[str, int, float]]:
        """(label, calls, seconds), most expensive first."""
        rows = [(label, int(calls), seconds)
                for label, (calls, seconds) in self._acc.items()]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {label: {"calls": calls, "seconds": seconds}
                for label, calls, seconds in self.by_component()}

    def collapsed(self, scale: float = 1e6) -> List[str]:
        """The profile as collapsed-stack lines — the flamegraph.pl /
        speedscope / inferno input format: ``frame;frame value``.

        Each component label ``module:qualname`` becomes a two-frame
        stack (module, then qualname) so the flamegraph groups hot
        methods under their module; values are host time scaled by
        ``scale`` (default microseconds) and rounded to integers, with
        sub-unit components dropped (a zero-weight line is noise).
        """
        lines = []
        for label, _, seconds in self.by_component():
            module, _, qualname = label.partition(":")
            value = int(round(seconds * scale))
            if value <= 0:
                continue
            lines.append(f"{module};{qualname or '?'} {value}")
        return lines

    def write_collapsed(self, path: str, scale: float = 1e6) -> int:
        """Write :meth:`collapsed` lines to ``path``; returns how many."""
        lines = self.collapsed(scale)
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def report(self, top: int = 20) -> str:
        """An aligned table of the ``top`` most expensive components."""
        rows = self.by_component()[:top]
        if not rows:
            return "no events profiled"
        width = max(len(label) for label, _, _ in rows)
        lines = [f"{'component':<{width}}  {'calls':>9}  {'host s':>8}  "
                 f"{'%':>5}  {'us/call':>8}"]
        total = self.total_s or 1e-12
        for label, calls, seconds in rows:
            lines.append(
                f"{label:<{width}}  {calls:>9}  {seconds:>8.3f}  "
                f"{100 * seconds / total:>5.1f}  "
                f"{1e6 * seconds / max(1, calls):>8.2f}")
        lines.append(f"{'total':<{width}}  {self.events:>9}  "
                     f"{self.total_s:>8.3f}  {100.0:>5.1f}")
        return "\n".join(lines)
