"""Extension: power-saving while waiting (Section 2.1 future work).

A callback-parked core is quiescent from park to wakeup message — it can
deep-sleep. A MESI spinner executes its loop flat out; a back-off spinner
must self-wake on a timer for every probe. This bench quantifies the
sleepable fraction of core-cycles on a skewed barrier workload (the
thrifty-barrier scenario the paper cites).
"""

import pytest

from benchmarks.conftest import BENCH_CORES
from repro.harness.extensions import power_saving


def test_power_saving(benchmark):
    out = benchmark.pedantic(
        lambda: power_saving(num_cores=BENCH_CORES, episodes=6,
                             skew_cycles=2000, verbose=False),
        rounds=1, iterations=1,
    )
    # Only the callback system can deep-sleep waiting cores.
    assert out["CB-All"]["sleepable_frac"] > 0.15
    assert out["Invalidation"]["sleepable_frac"] == 0.0
    assert out["BackOff-10"]["sleepable_frac"] == 0.0
    # And that translates into the largest core-energy saving.
    assert (out["CB-All"]["core_energy_saving"]
            > out["BackOff-10"]["core_energy_saving"])
    assert (out["CB-All"]["core_energy_saving"]
            > out["Invalidation"]["core_energy_saving"])
    power_saving(num_cores=BENCH_CORES, episodes=6, skew_cycles=2000,
                 verbose=True)
