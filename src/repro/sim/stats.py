"""Simulation statistics.

One :class:`Stats` object per machine run collects every metric the paper
reports:

* L1 accesses (the MESI local-spin energy driver, Figure 22),
* LLC accesses (Figures 1 and 20),
* network traffic in flit-hops and bytes (Figures 1, 21, 23),
* per-synchronization-episode latency (Figures 1 and 20),
* message counts by kind (the 3-vs-5 messages claim of Section 2.1),
* callback-directory activity (installs, evictions, wakeups).

Counters are plain integers bumped by the protocol/network code; episode
latencies are appended to per-category lists by the sync library.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field, fields
from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple


@dataclass
class Stats:
    """Aggregated counters for one simulation run."""

    # Cache hierarchy
    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    llc_accesses: int = 0
    llc_tag_accesses: int = 0
    llc_data_accesses: int = 0
    llc_misses: int = 0
    mem_accesses: int = 0

    # LLC accesses attributable to synchronization (racy) operations only —
    # this is the metric plotted in Figures 1 and 20.
    llc_sync_accesses: int = 0

    # Network
    messages: int = 0
    flits: int = 0
    flit_hops: int = 0
    byte_hops: int = 0

    # Coherence events (MESI)
    invalidations_sent: int = 0
    invalidation_acks: int = 0
    writebacks: int = 0
    forwards: int = 0

    # Self-invalidation protocol events
    self_invalidations: int = 0
    self_downgrades: int = 0
    lines_self_invalidated: int = 0
    words_written_through: int = 0

    # Callback directory
    cb_installs: int = 0
    cb_evictions: int = 0
    cb_eviction_wakeups: int = 0
    cb_blocked_reads: int = 0
    cb_immediate_reads: int = 0
    cb_wakeups: int = 0
    # Peak number of entries with pending callbacks in any one bank —
    # the empirical justification for the 4-entry directory (Section 2.2:
    # "ongoing races at any point in time typically concern very few
    # addresses").
    cb_max_active_entries: int = 0

    # Spinning
    spin_iterations: int = 0
    backoff_cycles: int = 0
    llc_spin_probes: int = 0
    # Core-cycles spent parked in the callback directory: the paper's
    # Section 2.1 notes a parked core "can easily go into a power-saving
    # mode while waiting" — this counter feeds that extension
    # (repro.energy.power).
    cb_parked_cycles: int = 0

    # Fault injection (repro.resilience) — all zero on fault-free runs.
    faults_injected: int = 0
    cb_forced_evictions: int = 0
    msgs_delayed: int = 0
    msgs_duplicated: int = 0
    l1_fault_drops: int = 0
    backoff_perturbations: int = 0

    # Per-message-kind counts, e.g. {"GetS": 12, "Inv": 4, ...}
    msg_kinds: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    # Synchronization episode latencies, keyed by category, e.g.
    # {"lock_acquire": [123, 88, ...], "barrier_wait": [...]}.
    episode_latencies: Dict[str, List[int]] = field(
        default_factory=lambda: defaultdict(list)
    )
    # Which hardware thread completed each episode (parallel to
    # episode_latencies; -1 when the caller did not say). Feeds the
    # fairness analysis (repro.harness.fairness).
    episode_owners: Dict[str, List[int]] = field(
        default_factory=lambda: defaultdict(list)
    )

    # Filled in by the machine at the end of the run.
    cycles: int = 0

    def record_message(self, kind: str, flits: int, hops: int, size_bytes: int) -> None:
        self.messages += 1
        self.flits += flits
        self.flit_hops += flits * hops
        self.byte_hops += size_bytes * hops
        self.msg_kinds[kind] += 1

    def record_episode(self, category: str, latency: int,
                       tid: int = -1) -> None:
        self.episode_latencies[category].append(latency)
        self.episode_owners[category].append(tid)

    def episode_mean(self, category: str) -> float:
        samples = self.episode_latencies.get(category)
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def episode_total(self, category: str) -> int:
        return sum(self.episode_latencies.get(category, ()))

    def episode_percentile(self, category: str, pct: float) -> float:
        """Latency percentile (nearest-rank) of one episode category.

        Tail latency matters for synchronization: Figure 1's point is
        that back-off's *occasional* huge overshoot (the p99, not the
        mean) is what "misses the target".
        """
        return _percentile_sorted(
            sorted(self.episode_latencies.get(category, ())), pct)

    def episode_summary(self, category: str) -> Dict[str, float]:
        """n/mean/p50/p95/p99/max of one episode category."""
        samples = sorted(self.episode_latencies.get(category, ()))
        if not samples:
            return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "n": len(samples),
            "mean": sum(samples) / len(samples),
            "p50": _percentile_sorted(samples, 50),
            "p95": _percentile_sorted(samples, 95),
            "p99": _percentile_sorted(samples, 99),
            "max": float(samples[-1]),
        }

    def merge(self, other: "Stats") -> None:
        """Accumulate another run's counters into this one (for suites).

        The summed-field set is derived from the dataclass fields (see
        :func:`int_field_names`) so a newly added counter can never be
        silently dropped from suite aggregation.
        """
        for name in summed_field_names():
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.cb_max_active_entries = max(self.cb_max_active_entries,
                                         other.cb_max_active_entries)
        for kind, count in other.msg_kinds.items():
            self.msg_kinds[kind] += count
        for category, samples in other.episode_latencies.items():
            self.episode_latencies[category].extend(samples)
        for category, owners in other.episode_owners.items():
            self.episode_owners[category].extend(owners)

    def summary(self) -> Dict[str, int]:
        """The headline counters as a plain dict (for reports/tests)."""
        return {
            "cycles": self.cycles,
            "l1_accesses": self.l1_accesses,
            "llc_accesses": self.llc_accesses,
            "llc_sync_accesses": self.llc_sync_accesses,
            "messages": self.messages,
            "flit_hops": self.flit_hops,
            "byte_hops": self.byte_hops,
            "mem_accesses": self.mem_accesses,
        }

    def counters(self) -> Dict[str, int]:
        """Every plain int counter as a dict (drives the obs sampler)."""
        return {name: getattr(self, name) for name in int_field_names()}

    def ckpt_state(self) -> Dict[str, Any]:
        """Every counter, message-kind count, and episode sample, as
        canonical JSON-able data — the statistics half of a checkpoint
        fingerprint (:mod:`repro.ckpt.state`). Two runs with equal
        ``ckpt_state`` report identical numbers everywhere.

        ``cycles`` is excluded: it is derived state, assigned from the
        engine clock only when a run *completes*, so a mid-run capture
        and a restored machine would disagree on it spuriously — the
        clock itself is captured in the engine's state."""
        counters = self.counters()
        counters.pop("cycles", None)
        return {
            "counters": counters,
            "msg_kinds": dict(sorted(self.msg_kinds.items())),
            "episodes": {category: list(samples) for category, samples
                         in sorted(self.episode_latencies.items())},
            "owners": {category: list(owners) for category, owners
                       in sorted(self.episode_owners.items())},
        }


def _percentile_sorted(samples: Sequence[int], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not (0.0 < pct <= 100.0):
        raise ValueError(f"percentile out of range: {pct}")
    if not samples:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(samples)))
    return float(samples[rank - 1])


#: Fields that merge by max rather than by sum.
MAX_MERGED_FIELDS = ("cb_max_active_entries",)


@lru_cache(maxsize=None)
def int_field_names() -> Tuple[str, ...]:
    """Every plain-int counter field of :class:`Stats`, in declaration
    order (annotations are strings here because of PEP 563)."""
    return tuple(f.name for f in fields(Stats) if f.type == "int")


@lru_cache(maxsize=None)
def summed_field_names() -> Tuple[str, ...]:
    """The int fields that :meth:`Stats.merge` accumulates by addition."""
    return tuple(name for name in int_field_names()
                 if name not in MAX_MERGED_FIELDS)
