"""Dissemination barrier (Mellor-Crummey & Scott [19]) — an extension.

ceil(log2(n)) rounds; in round k, thread i signals thread
(i + 2^k) mod n and waits for a signal from (i - 2^k) mod n. There is no
root and no release phase: after the last round everyone has
transitively heard from everyone.

Flags are sense-reversed and *round-specific* (one word per thread per
round), so each word has exactly one writer and one spinner — like CLH
and TreeSR, both callback modes behave identically, and signalling
writes are plain st_through. This makes the dissemination barrier
another clean fit for callbacks: each round's wait is one parked ld_cb
answered by one wakeup message, where back-off pays a probe storm on
every round boundary.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.protocols.ops import (BackoffWait, Fence, FenceKind, LoadCB,
                                 LoadThrough, SpinUntil, Store, StoreThrough)
from repro.sync.base import SyncPrimitive, SyncStyle


class DisseminationBarrier(SyncPrimitive):
    """log2(n)-round dissemination barrier in all four encodings."""

    def __init__(self, style: SyncStyle, num_threads: int) -> None:
        super().__init__(style)
        self.num_threads = num_threads
        self.rounds = max(1, math.ceil(math.log2(max(2, num_threads))))
        # flags[tid][round] — written by the round-k predecessor of tid.
        self._flags: List[List[int]] = []
        self._local_sense: Dict[int, int] = {}

    def setup(self, layout, num_threads: int) -> None:
        if num_threads != self.num_threads:
            raise ValueError("barrier thread count mismatch")
        self._flags = [
            [layout.alloc_sync_word() for _ in range(self.rounds)]
            for _ in range(num_threads)
        ]
        self._local_sense = {tid: 0 for tid in range(num_threads)}
        self._ready = True

    def initial_values(self) -> dict:
        return {
            addr: 0
            for per_thread in self._flags
            for addr in per_thread
        }

    # ------------------------------------------------------------------ wait

    def wait(self, ctx):
        self._require_ready()
        if self.num_threads == 1:
            return
        start = ctx.now
        tid = ctx.tid
        sense = 1 - self._local_sense[tid]
        self._local_sense[tid] = sense

        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_DOWN)

        for round_index in range(self.rounds):
            partner = (tid + (1 << round_index)) % self.num_threads
            # Signal the partner's flag for this round with my sense.
            yield from self._signal(self._flags[partner][round_index],
                                    sense)
            # Wait for my own flag for this round to reach my sense.
            yield from self._spin_equals(self._flags[tid][round_index],
                                         sense)

        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_INVL)
        ctx.record_episode("barrier_wait", start)

    # ---------------------------------------------------------------- helpers

    def _signal(self, addr: int, value: int):
        if self.style is SyncStyle.MESI:
            yield Store(addr, value)
        else:
            yield StoreThrough(addr, value)

    def _spin_equals(self, addr: int, target: int):
        if self.style is SyncStyle.MESI:
            yield SpinUntil(addr, lambda v, t=target: v == t)
        elif self.style is SyncStyle.VIPS:
            attempt = 0
            while True:
                value = yield LoadThrough(addr)
                if value == target:
                    return
                yield BackoffWait(attempt)
                attempt += 1
        else:
            value = yield LoadThrough(addr)
            while value != target:
                value = yield LoadCB(addr)
