"""ASCII bar-chart rendering for figure tables.

The paper's figures are grouped bar charts; the harness's numeric tables
are exact but hard to eyeball. These helpers render {row: {column:
value}} data as horizontal bars, used by ``repro-figures --chart``.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

FILL = "█"
HALF = "▌"


def hbar(value: float, scale: float, width: int = 40) -> str:
    """A horizontal bar for ``value`` given ``scale`` == full width."""
    if scale <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    frac = cells - whole
    bar = FILL * whole
    if frac >= 0.5:
        bar += HALF
    return bar


def bar_chart(title: str, columns: Sequence[str],
              rows: Mapping[str, Mapping[str, float]],
              width: int = 40, precision: int = 3) -> str:
    """Render grouped horizontal bars, one group per row label."""
    scale = max((row.get(c, 0.0) for row in rows.values() for c in columns),
                default=0.0)
    if scale <= 0:
        scale = 1.0
    col_width = max(len(c) for c in columns)
    out: List[str] = [f"== {title} =="]
    for label, row in rows.items():
        out.append(f"{label}:")
        for column in columns:
            value = row.get(column, 0.0)
            out.append(
                f"  {column.rjust(col_width)} "
                f"{value:>{precision + 4}.{precision}f} "
                f"{hbar(value, scale, width)}"
            )
        out.append("")
    return "\n".join(out)
