"""Restart budgets: when (and whether) a crashed worker comes back.

A supervisor that blindly respawns a crashing worker converts one bug
into a fork bomb; one that gives up after a fixed count converts every
transient blip into a smaller fleet. The budget splits the difference
with three independent brakes:

* **per-slot jittered-exponential backoff** — restart ``i`` of a slot
  waits ``base * 2^min(i, limit)`` scaled by a jitter drawn from a
  ``random.Random(crc32(slot) ^ seed)`` stream indexed by the restart
  count. Same discipline as the worker's ``_backoff_rng``: the
  schedule is a pure function of (slot name, seed, restart ordinal),
  so a supervisor that is SIGKILLed and resumes from its journal
  replays **byte-identical** delays — chaos drills stay deterministic
  across supervisor generations;
* **fleet-wide rate limit** — a token bucket over restarts per window,
  so even many *distinct* slots crashing (a bad deploy, a dead server)
  cannot stampede;
* **windowed quarantine** — a slot that crashes ``flap_threshold``
  times within ``flap_window_s`` is flapping, not unlucky: it is
  permanently quarantined with a taxonomy-aware reason (the dominant
  failure kind among its recent crashes, derived from exit codes via
  the shared :mod:`repro.resilience.classify` vocabulary) and never
  respawned until an operator clears it.

Everything here is pure decision logic over an injectable clock —
no processes, no sleeps — so the math is unit-testable tick by tick
and the supervisor's journal replay can reconstruct exact state.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.resilience.classify import FAILURE_EXIT_CODES

__all__ = ["RestartBudget", "RestartDecision", "SlotBudget",
           "QUARANTINED", "kind_of_exit"]

#: Sentinel state for a permanently benched slot.
QUARANTINED = "quarantined"

#: Exit code → failure kind, inverted from the taxonomy's kind → exit
#: code map, plus the signal-death conventions the taxonomy does not
#: cover (a Popen returncode of -N means "killed by signal N"; shells
#: report the same death as 128+N).
_EXIT_KINDS: Dict[int, str] = {code: kind
                               for kind, code in FAILURE_EXIT_CODES.items()}


def kind_of_exit(returncode: Optional[int]) -> str:
    """Classify a dead worker's returncode with the shared taxonomy.

    Signal deaths (SIGKILL'd kamikazes, OOM kills, operator kills) are
    ``crash``; taxonomy exit codes map straight back to their kind; a
    clean 0 is ``ok``; anything else is a generic ``error``.
    """
    if returncode is None:
        return "error"
    if returncode == 0:
        return "ok"
    if returncode < 0 or returncode > 128:
        return "crash"
    return _EXIT_KINDS.get(returncode, "error")


@dataclass
class RestartDecision:
    """What the supervisor should do about one dead slot."""

    action: str                     # "restart" | "wait" | "quarantine"
    delay_s: float = 0.0            # for "wait": seconds until eligible
    reason: str = ""


@dataclass
class SlotBudget:
    """One slot's restart history (journaled and replayed)."""

    slot: str
    restarts: int = 0               # lifetime restart ordinal
    crash_times: List[float] = field(default_factory=list)
    crash_kinds: Counter = field(default_factory=Counter)
    quarantined: bool = False
    quarantine_reason: str = ""
    next_eligible_t: float = 0.0    # wall clock gate for the next spawn

    def snapshot(self) -> Dict[str, Any]:
        return {"slot": self.slot, "restarts": self.restarts,
                "quarantined": self.quarantined,
                "quarantine_reason": self.quarantine_reason,
                "crash_kinds": dict(self.crash_kinds),
                "next_eligible_t": self.next_eligible_t}


class RestartBudget:
    """The fleet's restart policy. Pure: feed it crashes and a clock,
    read back decisions."""

    def __init__(self, seed: int = 0,
                 backoff_base_s: float = 0.25,
                 backoff_max_s: float = 30.0,
                 flap_threshold: int = 5,
                 flap_window_s: float = 60.0,
                 fleet_rate: int = 10,
                 fleet_window_s: float = 10.0) -> None:
        if flap_threshold < 1:
            raise ValueError("flap_threshold must be >= 1")
        if fleet_rate < 1:
            raise ValueError("fleet_rate must be >= 1")
        self.seed = seed
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.flap_threshold = flap_threshold
        self.flap_window_s = flap_window_s
        #: Fleet-wide brake: at most ``fleet_rate`` restarts per
        #: ``fleet_window_s`` sliding window, across all slots.
        self.fleet_rate = fleet_rate
        self.fleet_window_s = fleet_window_s
        self.slots: Dict[str, SlotBudget] = {}
        self._fleet_restarts: List[float] = []

    # ------------------------------------------------------------ schedule

    def backoff_s(self, slot: str, restart_ordinal: int) -> float:
        """The delay before restart ``restart_ordinal`` (1-based) of
        ``slot``. Deterministic: a fresh RestartBudget with the same
        seed produces the identical schedule, which is what lets a
        resumed supervisor pick up a half-served backoff mid-wait."""
        if restart_ordinal < 1:
            return 0.0
        base = min(self.backoff_max_s,
                   self.backoff_base_s * (2 ** min(restart_ordinal - 1, 10)))
        # One RNG stream per slot, fast-forwarded to the ordinal: draw
        # i is the jitter for restart i regardless of when (or in which
        # supervisor life) it is asked for.
        rng = random.Random(zlib.crc32(slot.encode()) ^ self.seed)
        jitter = 0.5
        for _ in range(restart_ordinal):
            jitter = rng.random()
        return base * (0.5 + 0.5 * jitter)

    # ------------------------------------------------------------- intake

    def slot_budget(self, slot: str) -> SlotBudget:
        budget = self.slots.get(slot)
        if budget is None:
            budget = self.slots[slot] = SlotBudget(slot=slot)
        return budget

    def note_crash(self, slot: str, now: float,
                   returncode: Optional[int] = None,
                   kind: Optional[str] = None) -> SlotBudget:
        """Account one worker death; computes the slot's next-eligible
        time and flips it to quarantined when it crosses the flap
        threshold. Idempotent replay: the journal records (slot, t,
        kind), and replaying the same sequence rebuilds the same state.
        """
        budget = self.slot_budget(slot)
        kind = kind or kind_of_exit(returncode)
        budget.crash_times.append(now)
        budget.crash_kinds[kind] += 1
        budget.restarts += 1
        budget.next_eligible_t = now + self.backoff_s(slot, budget.restarts)
        self._trim(budget, now)
        recent = [t for t in budget.crash_times
                  if t > now - self.flap_window_s]
        if len(recent) >= self.flap_threshold and not budget.quarantined:
            budget.quarantined = True
            dominant = budget.crash_kinds.most_common(1)[0][0]
            budget.quarantine_reason = (
                f"{len(recent)} crashes in {self.flap_window_s:.0f}s "
                f"(dominant kind: {dominant})")
        return budget

    def _trim(self, budget: SlotBudget, now: float) -> None:
        horizon = now - max(self.flap_window_s, self.fleet_window_s) * 2
        budget.crash_times = [t for t in budget.crash_times if t > horizon]

    # ----------------------------------------------------------- decisions

    def fleet_tokens_left(self, now: float) -> int:
        self._fleet_restarts = [t for t in self._fleet_restarts
                                if t > now - self.fleet_window_s]
        return max(0, self.fleet_rate - len(self._fleet_restarts))

    def decide(self, slot: str, now: float) -> RestartDecision:
        """May ``slot`` be respawned right now?"""
        budget = self.slot_budget(slot)
        if budget.quarantined:
            return RestartDecision(
                action="quarantine",
                reason=budget.quarantine_reason or "quarantined")
        if now < budget.next_eligible_t:
            return RestartDecision(
                action="wait", delay_s=budget.next_eligible_t - now,
                reason=f"backoff after {budget.restarts} restart(s)")
        if self.fleet_tokens_left(now) <= 0:
            oldest = min(self._fleet_restarts)
            return RestartDecision(
                action="wait",
                delay_s=max(0.05,
                            oldest + self.fleet_window_s - now),
                reason=f"fleet rate limit ({self.fleet_rate} restarts "
                       f"per {self.fleet_window_s:.0f}s)")
        return RestartDecision(action="restart")

    def note_restart(self, slot: str, now: float) -> None:
        """Consume one fleet token (called when a spawn actually
        happens, not when one is merely allowed)."""
        self._fleet_restarts.append(now)

    def clear_quarantine(self, slot: str) -> None:
        budget = self.slot_budget(slot)
        budget.quarantined = False
        budget.quarantine_reason = ""
        budget.crash_times = []
        budget.next_eligible_t = 0.0

    # --------------------------------------------------------------- views

    @property
    def quarantined(self) -> List[str]:
        return sorted(s for s, b in self.slots.items() if b.quarantined)

    def snapshot(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "quarantined": self.quarantined,
                "slots": {s: b.snapshot()
                          for s, b in sorted(self.slots.items())}}
