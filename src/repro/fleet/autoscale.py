"""Queue-depth autoscaling: the pure decision half.

The supervisor scrapes ``GET /metrics``, parses it with
:func:`repro.obs.promtext.parse_prometheus`, reduces the families to a
:class:`FleetSample` (queued runs, leased runs, oldest lease age), and
asks the :class:`Autoscaler` what the pool's desired size should be.
All the judgment lives here, process-free and clock-free, so the
hysteresis math is unit-testable with hand-fed samples:

* **scale up** when backlog pressure — queued runs beyond what the
  current pool can drain promptly — persists for ``up_ticks``
  consecutive samples. One hot sample is ignored: a chaos blip, a
  burst that the pool absorbs next tick, or a scrape racing a commit
  storm must not thrash the fleet;
* **scale down** when the pool has been idle-rich (more workers than
  in-flight + queued work justifies) for ``down_ticks`` consecutive
  samples, which is deliberately slower than scale-up: spawning is
  cheap, but a drained worker loses its warm caches;
* the answer is always clamped to ``[min_workers, max_workers]``, and
  a failed scrape (service partitioned from the supervisor) freezes
  the current size — scaling on missing data is how autoscalers kill
  healthy fleets.

Scale-down is executed by the supervisor as a **graceful drain**
(SIGTERM → the worker finishes its current job and deregisters), never
a kill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.promtext import parse_prometheus

__all__ = ["AutoscaleConfig", "Autoscaler", "FleetSample",
           "sample_of_metrics"]


@dataclass(frozen=True)
class FleetSample:
    """One scrape, reduced to what the scaler needs."""

    queued: int
    leased: int
    oldest_lease_age_s: float = 0.0

    @property
    def demand(self) -> int:
        """Work that wants a worker right now."""
        return self.queued + self.leased


def sample_of_metrics(text: str) -> FleetSample:
    """Reduce a ``/metrics`` body to a :class:`FleetSample`.

    Reads ``repro_runs{state=queued|leased}`` and
    ``repro_oldest_lease_age_seconds`` — all emitted by
    :meth:`repro.serve.queue.JobQueue.prometheus_families` under the
    queue lock, so the three numbers are one consistent snapshot.
    """
    families = parse_prometheus(text)
    runs = families.get("repro_runs", {}).get("samples", {})
    queued = leased = 0
    for (_name, labels), value in runs.items():
        state = dict(labels).get("state")
        if state == "queued":
            queued = int(value)
        elif state == "leased":
            leased = int(value)
    oldest = 0.0
    fam = families.get("repro_oldest_lease_age_seconds", {})
    for _key, value in fam.get("samples", {}).items():
        oldest = float(value)
    return FleetSample(queued=queued, leased=leased,
                       oldest_lease_age_s=oldest)


@dataclass
class AutoscaleConfig:
    min_workers: int = 1
    max_workers: int = 4
    #: Queued runs per worker the pool is expected to absorb without
    #: growing; backlog beyond ``current * backlog_per_worker`` is
    #: pressure.
    backlog_per_worker: int = 2
    #: Consecutive pressured samples before growing.
    up_ticks: int = 2
    #: Consecutive idle-rich samples before shrinking (slower on
    #: purpose; see the module docstring).
    down_ticks: int = 6
    #: Grow by this many workers per decision (clamped to max).
    up_step: int = 1
    down_step: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if self.max_workers < max(1, self.min_workers):
            raise ValueError("max_workers must be >= max(1, min_workers)")
        if self.up_ticks < 1 or self.down_ticks < 1:
            raise ValueError("hysteresis tick counts must be >= 1")


class Autoscaler:
    """Feed samples, read desired sizes. Stateful only in its
    hysteresis counters."""

    def __init__(self, config: Optional[AutoscaleConfig] = None) -> None:
        self.config = config or AutoscaleConfig()
        self._hot_ticks = 0
        self._cold_ticks = 0
        #: Decisions taken, by direction — feeds the fleet snapshot.
        self.decisions: Dict[str, int] = {"up": 0, "down": 0}

    def clamp(self, size: int) -> int:
        return max(self.config.min_workers,
                   min(self.config.max_workers, size))

    def desired(self, current: int, sample: Optional[FleetSample]) -> int:
        """The pool size the fleet should converge to, given the
        current size and the latest sample (None = scrape failed:
        freeze)."""
        cfg = self.config
        current = self.clamp(current)
        if sample is None:
            # No data is not evidence of idleness. Hold position, and
            # restart the hysteresis windows so stale streaks from
            # before the partition don't fire the moment it heals.
            self._hot_ticks = 0
            self._cold_ticks = 0
            return current
        pressure = sample.queued > current * cfg.backlog_per_worker
        idle_rich = current > cfg.min_workers and \
            sample.demand <= max(0, current - cfg.down_step)
        if pressure:
            self._hot_ticks += 1
            self._cold_ticks = 0
        elif idle_rich:
            self._cold_ticks += 1
            self._hot_ticks = 0
        else:
            self._hot_ticks = 0
            self._cold_ticks = 0
        if self._hot_ticks >= cfg.up_ticks:
            self._hot_ticks = 0
            target = self.clamp(current + cfg.up_step)
            if target > current:
                self.decisions["up"] += 1
            return target
        if self._cold_ticks >= cfg.down_ticks:
            self._cold_ticks = 0
            target = self.clamp(current - cfg.down_step)
            if target < current:
                self.decisions["down"] += 1
            return target
        return current

    def snapshot(self) -> Dict[str, Any]:
        return {"hot_ticks": self._hot_ticks,
                "cold_ticks": self._cold_ticks,
                "decisions": dict(self.decisions),
                "min": self.config.min_workers,
                "max": self.config.max_workers}
