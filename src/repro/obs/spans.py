"""Span recording: sync episodes and callback-entry lifetimes as timelines.

A *span* is a named interval on a *track* — ``thread/3`` for per-thread
activity (lock acquire/hold, barrier waits, signal waits), ``bank/0`` for
callback-directory entry lifetimes (install -> evict), ``core/5`` for a
core parked in the directory or in a MESI spin watch. An *instant* is a
zero-width mark (a signal post, a barrier arrival, an invalidation).

The recorder is a pure bus collector: it subscribes to probe topics and
never touches the engine, so recording cannot perturb simulated time.
Everything exports to JSONL (:meth:`SpanRecorder.to_jsonl`) and, via
:mod:`repro.obs.export`, to Perfetto-loadable Chrome trace JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.bus import ProbeBus


@dataclass
class Span:
    """One interval on one track; ``end is None`` while still open."""

    name: str
    cat: str
    track: str
    start: int
    end: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return (self.end - self.start) if self.end is not None else 0

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "span", "name": self.name, "cat": self.cat,
                "track": self.track, "start": self.start, "end": self.end,
                "args": self.args}


@dataclass
class Instant:
    """One zero-width mark on one track."""

    name: str
    cat: str
    track: str
    ts: int
    args: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "instant", "name": self.name, "cat": self.cat,
                "track": self.track, "ts": self.ts, "args": self.args}


class SpanRecorder:
    """Collects spans/instants from probe topics into flat lists."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        # (track, name-key) -> index into self.spans for open spans.
        self._open: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------ recording

    def complete(self, name: str, cat: str, track: str, start: int,
                 end: int, **args: Any) -> Span:
        span = Span(name, cat, track, start, end, args)
        self.spans.append(span)
        return span

    def begin(self, name: str, cat: str, track: str, ts: int,
              key: Optional[str] = None, **args: Any) -> None:
        """Open a span; a still-open span under the same (track, key) is
        closed first (self-healing against lost end probes)."""
        open_key = (track, key or name)
        if open_key in self._open:
            self.end(name, track, ts, key=key, lost=True)
        self._open[open_key] = len(self.spans)
        self.spans.append(Span(name, cat, track, ts, None, args))

    def end(self, name: str, track: str, ts: int,
            key: Optional[str] = None, **args: Any) -> None:
        """Close the open span under (track, key); unmatched ends are
        dropped (e.g. a release observed without its acquire)."""
        index = self._open.pop((track, key or name), None)
        if index is None:
            return
        span = self.spans[index]
        span.end = ts
        if args:
            span.args.update(args)

    def instant(self, name: str, cat: str, track: str, ts: int,
                **args: Any) -> None:
        self.instants.append(Instant(name, cat, track, ts, args))

    def close_open(self, ts: int) -> int:
        """End every still-open span at ``ts`` (end of run); returns how
        many were closed. Closed spans are tagged ``truncated``."""
        closed = 0
        for index in self._open.values():
            span = self.spans[index]
            span.end = ts
            span.args["truncated"] = True
            closed += 1
        self._open.clear()
        return closed

    # ---------------------------------------------------- bus subscriptions

    def install(self, bus: ProbeBus) -> None:
        """Wire the standard probe topics into span/instant records."""
        bus.subscribe("sync.episode", self._on_episode)
        bus.subscribe("span.begin", self._on_begin)
        bus.subscribe("span.end", self._on_end)
        bus.subscribe("mark", self._on_mark)
        bus.subscribe("cb.install", self._on_cb_install)
        bus.subscribe("cb.evict", self._on_cb_evict)
        bus.subscribe("cb.park", self._on_park)
        bus.subscribe("cb.wake", self._on_wake)
        bus.subscribe("spin.park", self._on_park)
        bus.subscribe("spin.wake", self._on_wake)

    def _on_episode(self, topic: str, cycle: int, f: Dict[str, Any]) -> None:
        self.complete(f["category"], "sync", f"thread/{f['tid']}",
                      f["start"], f["end"])

    def _on_begin(self, topic: str, cycle: int, f: Dict[str, Any]) -> None:
        f = dict(f)
        name = f.pop("name")
        tid = f.pop("tid")
        self.begin(name, "sync", f"thread/{tid}", cycle, **f)

    def _on_end(self, topic: str, cycle: int, f: Dict[str, Any]) -> None:
        f = dict(f)
        name = f.pop("name")
        tid = f.pop("tid")
        self.end(name, f"thread/{tid}", cycle, **f)

    def _on_mark(self, topic: str, cycle: int, f: Dict[str, Any]) -> None:
        f = dict(f)
        name = f.pop("name")
        tid = f.pop("tid")
        self.instant(name, "sync", f"thread/{tid}", cycle, **f)

    # Callback-entry lifetime: install -> (parks/wakes on cores) -> evict.

    def _on_cb_install(self, topic: str, cycle: int,
                       f: Dict[str, Any]) -> None:
        self.begin(f"entry {f['word']:#x}", "cbdir", f"bank/{f['bank']}",
                   cycle, key=f"entry/{f['word']}", word=f["word"])

    def _on_cb_evict(self, topic: str, cycle: int, f: Dict[str, Any]) -> None:
        self.end(f"entry {f['word']:#x}", f"bank/{f['bank']}", cycle,
                 key=f"entry/{f['word']}", woken=f.get("woken", 0))

    # A parked core (callback directory or MESI spin watch) is a span on
    # its core track: the window the paper says it "can easily go into a
    # power-saving mode" for.

    def _on_park(self, topic: str, cycle: int, f: Dict[str, Any]) -> None:
        kind = "parked" if topic.startswith("cb.") else "spinning"
        self.begin(f"{kind} {f['word']:#x}", topic.split(".")[0],
                   f"core/{f['core']}", cycle, key=f"park/{f['core']}",
                   word=f["word"])

    def _on_wake(self, topic: str, cycle: int, f: Dict[str, Any]) -> None:
        self.end("", f"core/{f['core']}", cycle, key=f"park/{f['core']}",
                 **{k: v for k, v in f.items() if k not in ("core", "word")})

    # -------------------------------------------------------------- export

    def by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.cat] = counts.get(span.cat, 0) + 1
        for instant in self.instants:
            counts[instant.cat] = counts.get(instant.cat, 0) + 1
        return counts

    def to_jsonl(self, stream: IO[str]) -> None:
        for span in self.spans:
            stream.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        for instant in self.instants:
            stream.write(json.dumps(instant.as_dict(), sort_keys=True) + "\n")


def load_spans(stream: IO[str]) -> SpanRecorder:
    """Rebuild a recorder from :meth:`SpanRecorder.to_jsonl` output."""
    recorder = SpanRecorder()
    for line in stream:
        line = line.strip()
        if not line:
            continue
        item = json.loads(line)
        kind = item.pop("type")
        if kind == "span":
            recorder.spans.append(Span(item["name"], item["cat"],
                                       item["track"], item["start"],
                                       item["end"], item.get("args", {})))
        elif kind == "instant":
            recorder.instants.append(Instant(item["name"], item["cat"],
                                             item["track"], item["ts"],
                                             item.get("args", {})))
        else:
            raise ValueError(f"unknown span record type: {kind}")
    return recorder
