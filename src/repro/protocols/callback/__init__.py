"""The callback mechanism: directory, entries, and protocol."""

from repro.protocols.callback.directory import CallbackDirectory
from repro.protocols.callback.entry import CBEntry, Waiter
from repro.protocols.callback.protocol import CallbackProtocol

__all__ = ["CBEntry", "CallbackDirectory", "CallbackProtocol", "Waiter"]
