"""Result persistence: figure data as JSON for archival and diffing.

``repro-figures --save-json DIR`` writes each figure's structured result
next to the printed tables, so EXPERIMENTS.md numbers can be traced to a
file and two checkouts can be compared mechanically.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass
from typing import Any, Dict

from repro.harness.runner import RunResult
from repro.ioutil import atomic_write_json
from repro.sim.stats import Stats


def _jsonable(value: Any) -> Any:
    """Recursively convert harness results into JSON-encodable data."""
    if isinstance(value, RunResult):
        return {
            "workload": value.workload,
            "config": value.config_label,
            "cycles": value.cycles,
            "traffic": value.traffic,
            "llc_sync": value.llc_sync,
            "energy": value.energy.as_dict(),
            "stats": stats_dict(value.stats),
        }
    if isinstance(value, Stats):
        return stats_dict(value)
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def stats_dict(stats: Stats) -> Dict[str, Any]:
    """The headline counters plus per-episode summaries."""
    out: Dict[str, Any] = stats.summary()
    out["episodes"] = {
        category: stats.episode_summary(category)
        for category in stats.episode_latencies
    }
    return out


def save_result(data: Any, directory: str, name: str) -> str:
    """Write one figure's structured result as ``DIR/name.json``.

    Crash-safe: the write is atomic (same-directory temp + fsync +
    rename, :mod:`repro.ioutil`), so an interrupted ``--save-json``
    leaves either the previous complete file or the new one — never a
    truncated archive a later diff would trip over."""
    path = os.path.join(directory, f"{name}.json")
    atomic_write_json(path, _jsonable(data), indent=2)
    return path


def load_result(directory: str, name: str) -> Any:
    with open(os.path.join(directory, f"{name}.json")) as handle:
        return json.load(handle)
