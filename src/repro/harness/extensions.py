"""Extension experiments beyond the paper's figures.

* :func:`scaling` — how the callback advantage evolves with core count
  (the paper evaluates 64 cores only; this sweeps 4..64).
* :func:`power_saving` — quantifies Section 2.1's future-work claim that
  callback-parked cores can sleep (thrifty-barrier style).
* :func:`link_contention` — re-runs a hot-spot workload with the optional
  per-link occupancy model to show queuing amplifies the LLC-spinning
  penalty.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import config_for
from repro.energy.power import core_power_report
from repro.harness.reporting import format_table
from repro.harness.runner import run_config, run_workload
from repro.workloads.microbench import BarrierMicrobench, LockMicrobench
from repro.workloads.suite import get_workload


def scaling(core_counts: Sequence[int] = (4, 16, 36, 64),
            app: str = "fluidanimate", scale: float = 0.5,
            configs: Sequence[str] = ("Invalidation", "BackOff-10",
                                      "CB-One"),
            verbose: bool = True) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Traffic/time per core count; callbacks should win more as the
    machine grows (more spinners per value, longer mesh routes)."""
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for cores in core_counts:
        out[cores] = {}
        for label in configs:
            workload = get_workload(app, scale=scale)
            result = run_config(label, workload, num_cores=cores)
            out[cores][label] = {
                "cycles": float(result.cycles),
                "traffic": float(result.traffic),
            }
    if verbose:
        for metric in ("cycles", "traffic"):
            rows = {
                str(cores): {label: vals[label][metric]
                             for label in configs}
                for cores, vals in out.items()
            }
            print(format_table(f"scaling {metric} ({app})", list(configs),
                               rows, precision=0))
            print()
    return out


def power_saving(num_cores: int = 64, episodes: int = 6,
                 skew_cycles: int = 2000,
                 configs: Sequence[str] = ("Invalidation", "BackOff-10",
                                           "CB-All"),
                 verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """Sleepable core-cycles per technique on a skewed barrier workload."""
    rows: Dict[str, Dict[str, float]] = {}
    for label in configs:
        workload = BarrierMicrobench("sr", episodes=episodes,
                                     skew_cycles=skew_cycles)
        result = run_config(label, workload, num_cores=num_cores)
        cfg = config_for(label, num_cores=num_cores)
        report = core_power_report(result.stats, cfg)
        rows[label] = {
            "sleepable_frac": report.sleepable_fraction,
            "core_energy_saving": report.saving_fraction,
            "cycles": float(result.cycles),
        }
    if verbose:
        print(format_table("power saving",
                           ["sleepable_frac", "core_energy_saving",
                            "cycles"], rows))
        print()
    return rows


def backoff_tuning(num_cores: int = 64, iterations: int = 6,
                   bases: Sequence[int] = (1, 2, 4, 8),
                   limits: Sequence[int] = (0, 5, 10, 15),
                   verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """The paper's "no best back-off" claim, as an experiment.

    Sweeps the back-off base and exponentiation limit over a contended
    lock workload and reports time and traffic per tuning, plus the
    untuned callback system. Section 1: "there is no 'best' back-off for
    both time and traffic because it is always a trade-off" — the
    callback row should not be dominated by any tuning.
    """
    rows: Dict[str, Dict[str, float]] = {}
    for base in bases:
        for limit in limits:
            workload = LockMicrobench("ttas", iterations=iterations)
            result = run_workload(
                config_for(f"BackOff-{limit}", num_cores=num_cores,
                           backoff_base=base),
                workload,
            )
            rows[f"base={base},limit={limit}"] = {
                "cycles": float(result.cycles),
                "traffic": float(result.traffic),
            }
    cb = run_config("CB-One", LockMicrobench("ttas", iterations=iterations),
                    num_cores=num_cores)
    rows["CB-One (untuned)"] = {
        "cycles": float(cb.cycles),
        "traffic": float(cb.traffic),
    }
    if verbose:
        print(format_table("back-off tuning", ["cycles", "traffic"], rows,
                           precision=0))
        print()
    return rows


def link_contention(num_cores: int = 64, iterations: int = 6,
                    configs: Sequence[str] = ("BackOff-0", "CB-One"),
                    verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """Hot-bank lock storm with and without link-occupancy modelling."""
    rows: Dict[str, Dict[str, float]] = {}
    for label in configs:
        for contention in (False, True):
            workload = LockMicrobench("ttas", iterations=iterations)
            result = run_workload(
                config_for(label, num_cores=num_cores,
                           model_link_contention=contention),
                workload,
            )
            key = f"{label}{'/link-contention' if contention else ''}"
            rows[key] = {
                "cycles": float(result.cycles),
                "acquire_latency": result.episode_mean("lock_acquire"),
            }
    if verbose:
        print(format_table("link contention",
                           ["cycles", "acquire_latency"], rows,
                           precision=0))
        print()
    return rows
