"""Core power-state extension (Section 2.1 future work)."""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.energy.power import (CORE_ACTIVE_PJ_PER_CYCLE,
                                CORE_SLEEP_PJ_PER_CYCLE, core_power_report)
from repro.harness.runner import run_config
from repro.sim.stats import Stats
from repro.workloads.microbench import BarrierMicrobench


class TestArithmetic:
    def test_empty_run(self):
        report = core_power_report(Stats(), config_for("CB-One",
                                                       num_cores=4))
        assert report.total_core_cycles == 0
        assert report.sleepable_fraction == 0.0
        assert report.saving_fraction == 0.0

    def test_all_active_baseline(self):
        stats = Stats()
        stats.cycles = 100
        cfg = config_for("Invalidation", num_cores=4)
        report = core_power_report(stats, cfg)
        assert report.total_core_cycles == 400
        assert report.baseline_pj == 400 * CORE_ACTIVE_PJ_PER_CYCLE
        assert report.gated_pj == report.baseline_pj

    def test_parked_cycles_sleep(self):
        stats = Stats()
        stats.cycles = 100
        stats.cb_parked_cycles = 100
        cfg = config_for("CB-One", num_cores=4)
        report = core_power_report(stats, cfg)
        expected = (300 * CORE_ACTIVE_PJ_PER_CYCLE
                    + 100 * CORE_SLEEP_PJ_PER_CYCLE)
        assert report.gated_pj == pytest.approx(expected)
        assert report.sleepable_fraction == pytest.approx(0.25)

    def test_sleepable_clamped_to_total(self):
        stats = Stats()
        stats.cycles = 10
        stats.cb_parked_cycles = 10**9  # corrupt/overlapping accounting
        cfg = config_for("CB-One", num_cores=4)
        report = core_power_report(stats, cfg)
        assert report.sleepable_cycles == 40


class TestParkedAccounting:
    def test_cb_parked_cycles_accumulate(self):
        result = run_config("CB-One", BarrierMicrobench("sr", episodes=4,
                                                        skew_cycles=400),
                            num_cores=16)
        assert result.stats.cb_parked_cycles > 0

    def test_mesi_has_no_parked_cycles(self):
        result = run_config("Invalidation",
                            BarrierMicrobench("sr", episodes=4,
                                              skew_cycles=400),
                            num_cores=16)
        assert result.stats.cb_parked_cycles == 0


class TestThriftyBarrierStory:
    """Barrier waiters under callbacks can sleep; spinners cannot."""

    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for label in ("Invalidation", "BackOff-10", "CB-All"):
            result = run_config(label,
                                BarrierMicrobench("sr", episodes=5,
                                                  skew_cycles=600),
                                num_cores=16)
            cfg = config_for(label, num_cores=16)
            out[label] = core_power_report(result.stats, cfg)
        return out

    def test_callback_sleeps_a_meaningful_fraction(self, reports):
        assert reports["CB-All"].sleepable_fraction > 0.10

    def test_spinning_techniques_cannot_deep_sleep(self, reports):
        assert reports["Invalidation"].sleepable_cycles == 0
        assert reports["BackOff-10"].sleepable_cycles == 0

    def test_callback_saves_most_core_energy(self, reports):
        assert (reports["CB-All"].saving_fraction
                > reports["Invalidation"].saving_fraction)
        assert (reports["CB-All"].saving_fraction
                > reports["BackOff-10"].saving_fraction)
