"""Ablation: CB-One wakeup policy (Section 2.4).

The paper uses a pseudo-random round-robin policy and notes that
alternatives (random, FIFO) carry different implementation costs but
similar behaviour. This bench quantifies the (small) differences.
"""

import pytest

from benchmarks.conftest import BENCH_CORES, BENCH_ITERS
from repro.harness.experiments import ablation_policy


def test_wake_policy_sweep(benchmark):
    out = benchmark.pedantic(
        lambda: ablation_policy(num_cores=BENCH_CORES,
                                iterations=BENCH_ITERS, verbose=False),
        rounds=1, iterations=1,
    )
    assert set(out) == {"round_robin", "random", "fifo"}
    times = [row["time"] for row in out.values()]
    # The policies differ in fairness, not gross performance: every
    # policy completes within 25% of the best.
    assert max(times) <= min(times) * 1.25
    ablation_policy(num_cores=BENCH_CORES, iterations=BENCH_ITERS,
                    verbose=True)
