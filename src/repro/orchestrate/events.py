"""Structured orchestration events, counters, and progress summaries.

Every scheduler decision emits one :class:`Event` — job queued, started,
finished, retried, failed, timed out, or served from cache — onto an
in-memory :class:`EventLog` that also mirrors each event as a JSON line
to an optional sink file (``events.jsonl`` in the cache directory, when
there is one). The log is the orchestrator's observability surface:

* ``counts`` — events per kind, e.g. ``{"finished": 12, "cache_hit": 7}``;
* :meth:`throughput` — wall-clock time, simulated cycles executed,
  cycles/second and jobs/second;
* :meth:`summary` — the one-paragraph progress report the CLI prints.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Event kinds, in roughly the order a job can emit them. ``failed``,
#: ``timeout``, and ``quarantined`` events carry a ``failure_kind``
#: detail — the failure class from :mod:`repro.resilience.classify` —
#: so logs can be summarized by *why* jobs failed, not just how many.
#: ``cache_stats`` is a batch-level event carrying the result cache's
#: hit/miss/quarantine counters (dedup observability).
KINDS = ("queued", "cache_hit", "started", "finished", "retried",
         "timeout", "failed", "quarantined", "cache_stats")

#: Failure-kind events are flushed *and fsynced* the moment they are
#: recorded: they are exactly the lines a post-mortem needs after the
#: process (or machine) dies, so they may never sit in a buffer.
_DURABLE_KINDS = frozenset({"failed", "timeout", "quarantined"})


def tail_events(path: str, offset: int = 0) -> Tuple[List[Dict[str, Any]],
                                                     int, int]:
    """Read the JSONL event log at ``path`` from byte ``offset``.

    Returns ``(events, new_offset, skipped)``. Built for *live* tailing
    of a log another process is still appending to (the ``repro-serve``
    streaming endpoint polls this), so it is deliberately tolerant:

    * a **torn final line** — no trailing newline, the writer crashed
      (or is still) mid-append — is never consumed: ``new_offset``
      stops at the last complete line, and the fragment is re-read on
      the next call once (if ever) its newline lands;
    * a *complete* line that fails to parse (e.g. a crash-torn fragment
      that a restarted writer appended after) is skipped and counted in
      ``skipped`` instead of raising.

    A missing file reads as empty. ``new_offset`` is a plain byte
    offset, safe to persist and resume from across calls and processes.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return [], offset, 0
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset, 0
    chunk = data[:end + 1]
    events: List[Dict[str, Any]] = []
    skipped = 0
    for line in chunk.splitlines():
        if not line.strip():
            continue
        try:
            parsed = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            skipped += 1
            continue
        if isinstance(parsed, dict):
            events.append(parsed)
        else:
            skipped += 1
    return events, offset + len(chunk), skipped


def read_events(path: str) -> List[Dict[str, Any]]:
    """All complete, parseable events in a JSONL log (torn tail and
    damaged lines silently skipped — see :func:`tail_events`)."""
    return tail_events(path)[0]


@dataclass
class Event:
    """One scheduler decision about one job."""

    kind: str
    job_key: str
    label: str = ""
    t_wall: float = field(default_factory=time.time)
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        # Detail first: the event's own fields must win a name clash.
        return {**self.detail,
                "kind": self.kind, "job_key": self.job_key,
                "label": self.label, "t_wall": self.t_wall}


class EventLog:
    """Append-only event stream with derived counters.

    The sink file is opened once (append mode) and held for the log's
    lifetime — one ``open()`` per *batch*, not per event. Call
    :meth:`close` (idempotent) when the batch is done; :meth:`flush`
    makes the file durable mid-run for live tailing.

    ``bus`` optionally mirrors every event onto a telemetry
    :class:`~repro.obs.bus.ProbeBus` as ``orchestrate.<kind>`` topics,
    making the orchestrator one more producer on the same bus the
    simulator probes feed.
    """

    def __init__(self, sink_path: Optional[str] = None,
                 verbose: bool = False, bus=None) -> None:
        self.events: List[Event] = []
        self.counts: Counter = Counter()
        self.sink_path = sink_path
        self.verbose = verbose
        self.bus = bus
        self.started_at = time.time()
        self.sim_cycles = 0          # simulated cycles actually executed
        self.cached_cycles = 0       # simulated cycles served from cache
        self._sink = open(sink_path, "a") if sink_path else None

    def record(self, kind: str, job_key: str, label: str = "",
               **detail: Any) -> Event:
        event = Event(kind=kind, job_key=job_key, label=label,
                      detail=detail)
        self.events.append(event)
        self.counts[kind] += 1
        if kind == "finished":
            self.sim_cycles += int(detail.get("cycles", 0))
        elif kind == "cache_hit":
            self.cached_cycles += int(detail.get("cycles", 0))
        if self._sink is not None:
            self._sink.write(json.dumps(event.as_dict(),
                                        sort_keys=True) + "\n")
            if kind in _DURABLE_KINDS:
                # Failure evidence must survive the crash it documents:
                # push it through the OS to the disk before moving on.
                self._sink.flush()
                try:
                    os.fsync(self._sink.fileno())
                except OSError:  # pragma: no cover - exotic sinks
                    pass
        if self.bus is not None:
            self.bus.emit(f"orchestrate.{kind}", _cycle=0, job_key=job_key,
                          label=label, **detail)
        if self.verbose:
            extras = " ".join(f"{k}={v}" for k, v in sorted(detail.items()))
            print(f"[orchestrate] {kind:<10} {label or job_key[:12]}"
                  f"{' ' + extras if extras else ''}")
        return event

    def flush(self) -> None:
        """Push buffered sink lines to the OS (for live ``tail -f``)."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and release the sink handle; safe to call twice."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # Derived views ------------------------------------------------------

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def failure_kinds(self) -> Dict[str, int]:
        """Failure-class histogram over failed/timeout/quarantined
        events (from each event's ``failure_kind`` detail)."""
        counts: Counter = Counter()
        for event in self.events:
            if event.kind in ("failed", "timeout", "quarantined"):
                counts[event.detail.get("failure_kind", "error")] += 1
        return dict(counts)

    @property
    def simulations_executed(self) -> int:
        """Jobs that actually ran a simulation (not served from cache)."""
        return self.counts["finished"]

    @property
    def wall_s(self) -> float:
        return time.time() - self.started_at

    def throughput(self) -> Dict[str, float]:
        wall = max(self.wall_s, 1e-9)
        done = self.counts["finished"] + self.counts["cache_hit"]
        return {
            "wall_s": wall,
            "jobs_done": float(done),
            "jobs_per_s": done / wall,
            "sim_cycles": float(self.sim_cycles),
            "sim_cycles_per_s": self.sim_cycles / wall,
        }

    def summary(self) -> str:
        t = self.throughput()
        c = self.counts
        lines = [
            f"jobs: {c['queued']} queued, {c['cache_hit']} from cache, "
            f"{c['finished']} simulated, {c['retried']} retried, "
            f"{c['timeout']} timed out, {c['failed']} failed, "
            f"{c['quarantined']} quarantined",
            f"wall-clock: {t['wall_s']:.2f}s "
            f"({t['jobs_per_s']:.2f} jobs/s)",
            f"simulated cycles: {self.sim_cycles:,} "
            f"({t['sim_cycles_per_s']:,.0f} cycles/s; "
            f"{self.cached_cycles:,} more served from cache)",
        ]
        kinds = self.failure_kinds()
        if kinds:
            what = ", ".join(f"{v} {k}" for k, v in sorted(kinds.items()))
            lines.append(f"failure classes: {what}")
        return "\n".join(lines)
