"""Memory substrate: addressing, caches, value store, main memory."""

from repro.mem.cache import CacheLine, SetAssociativeCache
from repro.mem.layout import AddressMap, MemoryLayout, Region
from repro.mem.mainmem import MainMemory
from repro.mem.store import WordStore

__all__ = [
    "AddressMap",
    "CacheLine",
    "MainMemory",
    "MemoryLayout",
    "Region",
    "SetAssociativeCache",
    "WordStore",
]
