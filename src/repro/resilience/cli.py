"""``repro-resilience``: fault campaigns, replay-by-hash, minimization.

Usage::

    # Campaign: forced evictions + delayed wakeups on both callback
    # systems, 3 seeds each; failing plans + diagnoses land in out/.
    repro-resilience campaign --configs CB-One,CB-All --workload lock:ttas \\
        --kinds cb_evict,wakeup_delay --seeds 1,2,3 --out results/faults

    # Replay one failing schedule, bit-for-bit, from its content hash.
    repro-resilience replay 3fa9c1 --plans results/faults/plans

    # Shrink it to a locally minimal failing subset (ddmin).
    repro-resilience minimize 3fa9c1 --plans results/faults/plans

Exit codes follow the shared failure taxonomy
(:data:`repro.resilience.classify.FAILURE_EXIT_CODES`): 0 ok, 2
invariant, 3 liveness, 4 timeout, 7 functional mismatch, 1 other —
so CI can branch on the *class* of failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.config import PAPER_CONFIGS

from repro.resilience.campaign import (DEFAULT_WATCHDOG_STALL, execute_plan,
                                       minimize_plan, run_campaign)
from repro.resilience.classify import FAILURE_EXIT_CODES, exit_code_for
from repro.resilience.faults import FaultKind, load_plan_by_key


def _parse_kinds(text: str) -> List[FaultKind]:
    kinds = []
    for name in text.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            kinds.append(FaultKind(name))
        except ValueError:
            valid = ", ".join(k.value for k in FaultKind)
            raise SystemExit(f"unknown fault kind {name!r}; one of: {valid}")
    if not kinds:
        raise SystemExit("no fault kinds given")
    return kinds


def _parse_params(pairs) -> Dict[str, object]:
    from repro.orchestrate.cli import parse_value
    out: Dict[str, object] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad param {pair!r}; expected KEY=VALUE")
        out[key] = parse_value(value)
    return out


def _workload_of(args: argparse.Namespace):
    from repro.orchestrate.cli import _DETAIL_PARAM
    name, _, detail = args.workload.partition(":")
    name = name.replace("-", "_")
    params = _parse_params(args.param)
    if detail:
        params.setdefault(_DETAIL_PARAM.get(name, "name"), detail)
    return name, params


def cmd_campaign(args: argparse.Namespace) -> int:
    name, params = _workload_of(args)
    overrides = _parse_params(args.override)
    if args.cores:
        overrides.setdefault("num_cores", args.cores)
    result = run_campaign(
        config_labels=[c.strip() for c in args.configs.split(",")
                       if c.strip()],
        workload=name, workload_params=params, config_overrides=overrides,
        seeds=[int(s) for s in args.seeds.split(",")],
        kinds=_parse_kinds(args.kinds),
        fault_seeds=[int(s) for s in args.fault_seeds.split(",")],
        count=args.count, horizon=args.horizon,
        watchdog_stall=args.watchdog_stall, audit_every=args.audit_every,
        out_dir=args.out,
    )
    for outcome in result.outcomes:
        line = f"  {outcome.status:<9} {outcome.describe}"
        if outcome.ok:
            line += (f"  cycles={outcome.cycles} "
                     f"faults={outcome.faults_applied}")
        else:
            line += f"  key={outcome.plan_key[:12]} ({outcome.error})"
        print(line)
    print(result.summary())
    if args.out and not result.ok:
        print(f"failing plans saved under {result.plans_dir}; replay with: "
              f"repro-resilience replay <key> --plans {result.plans_dir}")
    return exit_code_for(outcome.status for outcome in result.outcomes)


def cmd_replay(args: argparse.Namespace) -> int:
    plan = load_plan_by_key(args.plans, args.key)
    print(f"replaying {plan.plan_key()[:16]}: {plan.describe()}")
    outcome = execute_plan(plan, watchdog_stall=args.watchdog_stall,
                           audit_every=args.audit_every)
    print(f"  status={outcome.status} cycles={outcome.cycles} "
          f"faults={outcome.faults_applied}")
    if outcome.error:
        print(f"  {outcome.error}")
    if outcome.diagnosis is not None and args.trace_out:
        outcome.diagnosis.write_trace(args.trace_out)
        print(f"  diagnosis trace written to {args.trace_out} "
              f"(load in Perfetto / chrome://tracing)")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(outcome.as_dict(), handle, indent=2, sort_keys=True)
    return FAILURE_EXIT_CODES.get(outcome.status, 1)


def cmd_minimize(args: argparse.Namespace) -> int:
    plan = load_plan_by_key(args.plans, args.key)
    print(f"minimizing {plan.plan_key()[:16]}: {len(plan)} fault(s)")
    minimal = minimize_plan(plan, watchdog_stall=args.watchdog_stall,
                            audit_every=args.audit_every)
    if len(minimal) == len(plan):
        print("plan is already minimal (or does not fail)")
        return 0
    path = minimal.save(args.plans)
    print(f"reduced to {len(minimal)} fault(s): {minimal.describe()}")
    print(f"minimal plan saved to {path}")
    for fault in minimal.faults:
        print(f"  cycle {fault.cycle:>8} {fault.kind.value} "
              f"duration={fault.duration} magnitude={fault.magnitude}")
    return 0


def _add_run_opts(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--watchdog-stall", type=int,
                        default=DEFAULT_WATCHDOG_STALL,
                        help="abort after this many cycles without useful "
                             "progress")
    parser.add_argument("--audit-every", type=int, default=0,
                        help="run invariant auditors every N cycles "
                             "(0 = off)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-resilience",
        description="Deterministic fault injection: campaigns, replay, "
                    "minimization.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser(
        "campaign", help="run a fault-injection grid and validate "
                         "functional identity")
    campaign.add_argument("--workload", default="lock:ttas",
                          help="registry spec, e.g. lock:ttas or app:barnes")
    campaign.add_argument("--configs", default="CB-One,CB-All",
                          help=f"comma-separated labels from {PAPER_CONFIGS}")
    campaign.add_argument("--kinds", default="cb_evict",
                          help="comma-separated fault kinds: "
                               + ", ".join(k.value for k in FaultKind))
    campaign.add_argument("--seeds", default="1",
                          help="comma-separated simulation seeds")
    campaign.add_argument("--fault-seeds", default="0",
                          help="comma-separated schedule seeds (one faulted "
                               "run per seed per grid point)")
    campaign.add_argument("--count", type=int, default=8,
                          help="faults per plan")
    campaign.add_argument("--horizon", type=int, default=20_000,
                          help="faults are drawn in cycles [1, horizon]")
    campaign.add_argument("--cores", type=int, default=16,
                          help="num_cores override (0 = config default)")
    campaign.add_argument("--param", action="append", default=[],
                          metavar="KEY=VALUE", help="workload param")
    campaign.add_argument("--override", action="append", default=[],
                          metavar="KEY=VALUE", help="config override")
    campaign.add_argument("--out", default=None,
                          help="directory for failing plans, diagnoses, "
                               "and the manifest")
    _add_run_opts(campaign)
    campaign.set_defaults(fn=cmd_campaign)

    replay = sub.add_parser(
        "replay", help="re-run a saved fault plan by (prefix of) its hash")
    replay.add_argument("key", help="plan key prefix")
    replay.add_argument("--plans", required=True,
                        help="directory of saved <plan_key>.json files")
    replay.add_argument("--trace-out", default=None,
                        help="write the failure diagnosis as a Perfetto "
                             "trace to this file")
    replay.add_argument("--json", default=None,
                        help="write the outcome record to this file")
    _add_run_opts(replay)
    replay.set_defaults(fn=cmd_replay)

    minimize = sub.add_parser(
        "minimize", help="ddmin a failing plan to a minimal fault subset")
    minimize.add_argument("key", help="plan key prefix")
    minimize.add_argument("--plans", required=True,
                          help="directory of saved <plan_key>.json files")
    _add_run_opts(minimize)
    minimize.set_defaults(fn=cmd_minimize)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
