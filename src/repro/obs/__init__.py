"""repro.obs — cycle-domain telemetry for the simulator.

Probe bus + metrics registry + time-series sampler + span recorder +
Perfetto export + host profiler. See docs/observability.md.
"""

from repro.obs.bus import ProbeBus
from repro.obs.export import (chrome_trace, trace_events_to_spans,
                              validate_chrome_trace, write_chrome_trace)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import HostProfiler, component_label
from repro.obs.promtext import (Family, histogram_family,
                                parse_prometheus, render_prometheus)
from repro.obs.sampler import DEFAULT_COUNTERS, TimeSeriesSampler
from repro.obs.spans import Instant, Span, SpanRecorder, load_spans
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.obs.tracectx import (HostSpan, HostSpanLog, TraceContext,
                                mint_trace_id, stitch_trace)

__all__ = [
    "ProbeBus", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "TimeSeriesSampler", "DEFAULT_COUNTERS", "SpanRecorder", "Span",
    "Instant", "load_spans", "chrome_trace", "write_chrome_trace",
    "trace_events_to_spans", "validate_chrome_trace", "HostProfiler",
    "component_label", "Telemetry", "TelemetryConfig",
    "FlightRecorder", "Family", "render_prometheus", "histogram_family",
    "parse_prometheus", "HostSpan", "HostSpanLog", "TraceContext",
    "mint_trace_id", "stitch_trace",
]
