#!/usr/bin/env python
"""Trace-driven mode: record once, replay under every protocol.

Records the synchronization-operation trace of a task-queue workload
under BackOff-10, then replays the identical operation stream under
each coherence technique. Replay preserves each thread's demand pattern
(ops + think time); the protocol under test determines latency and
traffic — classic trace-driven methodology.

Run:  python examples/trace_replay.py
"""

from repro.config import config_for
from repro.core.machine import Machine
from repro.trace import TraceRecorder, op_mix, replay
from repro.workloads import TaskQueueWorkload

CORES = 16


def main() -> None:
    # Record under the back-off configuration.
    machine = Machine(config_for("BackOff-10", num_cores=CORES))
    recorder = TraceRecorder(machine)
    workload = TaskQueueWorkload(tasks=48, work_cycles=200)
    workload.install(machine)
    machine.run()
    events = recorder.detach()
    mix = op_mix(events)
    print(f"Recorded {len(events)} ops from '{workload.name}' under "
          f"BackOff-10 on {CORES} cores")
    print("op mix:", ", ".join(f"{k}:{v}" for k, v in sorted(mix.items())))
    print()

    header = (f"{'replayed under':14s} {'cycles':>10s} {'LLC sync':>10s} "
              f"{'flit-hops':>10s}")
    print(header)
    print("-" * len(header))
    for label in ("Invalidation", "BackOff-0", "BackOff-10", "CB-One"):
        target = Machine(config_for(label, num_cores=CORES))
        stats = replay(target, events)
        print(f"{label:14s} {stats.cycles:10d} "
              f"{stats.llc_sync_accesses:10d} {stats.flit_hops:10d}")
    print()
    print("The op stream is identical in every row; only the protocol")
    print("changes. Note the caveat from docs: a trace records one")
    print("schedule's spin counts, so replay compares protocols on the")
    print("recorded demand, not on their own adaptive spinning.")


if __name__ == "__main__":
    main()
