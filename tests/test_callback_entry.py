"""The callback directory entry state machine (Section 2.3/2.4/2.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WakePolicy
from repro.protocols.callback.entry import CBEntry, Waiter

N = 4
FULL = (1 << N) - 1


def entry():
    return CBEntry(word=0x100, num_cores=N)


def waiter(core):
    return Waiter(core, wake=lambda v: None, since=0)


class TestInitialization:
    def test_starts_full_no_callbacks_all_mode(self):
        e = entry()
        assert e.fe == FULL
        assert e.cb == 0
        assert e.mode_all is True

    def test_park_records_word(self):
        e = entry()
        w = waiter(1)
        e.park(w)
        assert w.word == 0x100


class TestAllMode:
    def test_first_read_consumes_own_bit(self):
        e = entry()
        assert e.try_consume(2) is True
        assert e.fe == FULL & ~(1 << 2)

    def test_second_read_blocks(self):
        e = entry()
        e.try_consume(2)
        assert e.try_consume(2) is False

    def test_reads_are_per_core(self):
        e = entry()
        e.try_consume(0)
        assert e.try_consume(1) is True  # core 1's bit untouched

    def test_write_all_wakes_everyone_and_fills_others(self):
        """Figure 3 step 3: waiters consume, non-waiters get F/E full."""
        e = entry()
        for c in range(N):
            e.try_consume(c)
        e.park(waiter(0))
        e.park(waiter(2))
        woken = e.write_all(7)
        assert sorted(w.core for w in woken) == [0, 2]
        assert e.cb == 0
        # cores 1,3 (no callback) full; cores 0,2 consumed (empty)
        assert e.fe == (1 << 1) | (1 << 3)
        assert e.mode_all is True

    def test_consume_after_write_all(self):
        """Figure 3 step 4: a later read by a non-waiter consumes."""
        e = entry()
        for c in range(N):
            e.try_consume(c)
        e.park(waiter(0))
        e.write_all(7)
        assert e.try_consume(1) is True
        assert e.try_consume(0) is False  # already consumed via callback


class TestOneMode:
    def _one_mode_entry(self):
        e = entry()
        e.write_one(0, WakePolicy.ROUND_ROBIN, lambda n: 0)  # no waiters
        return e

    def test_write_one_without_waiters_fills_all(self):
        e = self._one_mode_entry()
        assert e.mode_all is False
        assert e.fe == FULL

    def test_one_mode_read_consumes_all_bits(self):
        """Figure 4 step 2: a read empties every F/E bit at once."""
        e = self._one_mode_entry()
        assert e.try_consume(2) is True
        assert e.fe == 0

    def test_one_mode_second_reader_blocks(self):
        e = self._one_mode_entry()
        e.try_consume(2)
        for core in (0, 1, 3):
            assert e.try_consume(core) is False

    def test_write_one_wakes_exactly_one(self):
        e = self._one_mode_entry()
        e.try_consume(2)
        for core in (0, 1, 3):
            e.park(waiter(core))
        woken = e.write_one(0, WakePolicy.ROUND_ROBIN, lambda n: 0)
        assert woken is not None
        assert bin(e.cb).count("1") == 2
        # Figure 4 step 9: F/E left undisturbed (empty).
        assert e.fe == 0

    def test_round_robin_order(self):
        """Paper policy: scan upward from the pointer, wrap at top."""
        e = self._one_mode_entry()
        e.try_consume(0)
        for core in (3, 1, 0, 2):
            e.park(waiter(core))
        order = []
        for _ in range(4):
            order.append(e.write_one(0, WakePolicy.ROUND_ROBIN,
                                     lambda n: 0).core)
        assert order == [0, 1, 2, 3]

    def test_fifo_policy(self):
        e = self._one_mode_entry()
        e.try_consume(0)
        for core in (3, 1, 2):
            e.park(waiter(core))
        assert e.write_one(0, WakePolicy.FIFO, lambda n: 0).core == 3
        assert e.write_one(0, WakePolicy.FIFO, lambda n: 0).core == 1

    def test_write_zero_wakes_nobody_and_empties(self):
        """Section 2.5: st_cb0 must not wake premature waiters."""
        e = entry()
        e.park(waiter(1))
        e.write_zero(1)
        assert e.mode_all is False
        assert e.fe == 0
        assert e.cb == (1 << 1)  # waiter still parked


class TestEviction:
    def test_evict_returns_all_waiters(self):
        e = entry()
        for c in range(N):
            e.try_consume(c)
        e.park(waiter(1))
        e.park(waiter(3))
        woken = e.evict()
        assert sorted(w.core for w in woken) == [1, 3]
        assert e.cb == 0

    def test_double_park_is_a_bug(self):
        e = entry()
        e.park(waiter(1))
        with pytest.raises(RuntimeError, match="already has a callback"):
            e.park(waiter(1))


class TestStateMachineProperty:
    """Random op sequences must preserve structural invariants."""

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["consume", "park", "write_all", "write_one",
                         "write_zero", "evict"]),
        st.integers(0, N - 1)), max_size=60))
    def test_invariants(self, ops):
        e = entry()
        for op, core in ops:
            fe_before = e.fe
            cb_before = e.cb
            woke = None
            if op == "consume":
                if not (e.cb & (1 << core)):
                    e.try_consume(core)
            elif op == "park":
                if not (e.cb & (1 << core)):
                    e.park(waiter(core))
            elif op == "write_all":
                e.write_all(1)
            elif op == "write_one":
                woke = e.write_one(1, WakePolicy.ROUND_ROBIN, lambda n: 0)
            elif op == "write_zero":
                e.write_zero(1)
            elif op == "evict":
                e.evict()
            # CB bits exactly mirror the waiter table.
            waiters_mask = 0
            for c in e.waiters:
                waiters_mask |= 1 << c
            assert e.cb == waiters_mask
            assert sorted(e.arrival) == sorted(e.waiters)
            # Bit vectors stay within range.
            assert 0 <= e.fe <= FULL
            assert 0 <= e.cb <= FULL
            # write_zero empties F/E; write_one with no waiters fills it
            # in unison; write_one that wakes a waiter leaves F/E
            # undisturbed (Figure 4 step 9).
            if op == "write_zero":
                assert e.fe == 0
            elif op == "write_one":
                assert e.fe == (fe_before if woke is not None else FULL)
            # write_all wakes every waiter and fills exactly the F/E bits
            # of the cores that did not have a callback (Figure 3 step 3).
            elif op == "write_all":
                assert e.cb == 0
                assert e.fe == FULL & ~cb_before
