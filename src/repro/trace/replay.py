"""Trace replay: re-execute a recorded operation stream on a machine.

A recorded trace (``TraceRecorder``) can be replayed on a *different*
machine configuration — e.g. record under BackOff-10, replay the same
synchronization-operation stream under CB-One — making the simulator
usable in a classic trace-driven mode.

Semantics and limits:

* Synchronization operations (through-ops, callback ops, atomics,
  fences) are reconstructed exactly, with their recorded operands.
* Inter-operation think time is reproduced from the recorded issue
  times: before each op, the replayed thread computes for
  ``max(1, original_gap)`` cycles. Replay timing therefore preserves
  each thread's *demand* pattern while the replayed protocol determines
  the actual interleaving.
* ``data`` events (DataBursts) are replayed as compute of their weight
  (their addresses are not recorded) — replay is a synchronization-
  behaviour tool, not a data-cache one.
* Blocking ops (``ld_cb``) may legitimately take different values than
  in the recording; replay preserves the op stream, not the outcome.
  Traces whose *control flow* depended on loaded values (every spin
  loop!) replay the recorded path — this is the standard trace-driven
  caveat and is fine for traffic/occupancy studies.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.core.machine import Machine, ThreadBody
from repro.protocols import ops
from repro.trace.recorder import DERIVED_KINDS, TraceEvent


def _reconstruct(event: TraceEvent) -> ops.Op:
    kind, addr, detail = event.kind, event.addr, event.detail
    if kind == "ld":
        return ops.Load(addr)
    if kind == "st":
        return ops.Store(addr, detail[0] if detail else None)
    if kind == "ld_through":
        return ops.LoadThrough(addr)
    if kind == "ld_cb":
        return ops.LoadCB(addr)
    if kind == "st_through":
        return ops.StoreThrough(addr, detail[0])
    if kind == "st_cb1":
        return ops.StoreCB1(addr, detail[0])
    if kind == "st_cb0":
        return ops.StoreCB0(addr, detail[0])
    if kind == "atomic":
        atomic_kind, ld_name, st_name, operands = detail
        return ops.Atomic(addr, ops.AtomicKind[atomic_kind],
                          tuple(operands), ld=ops.LdKind[ld_name],
                          st=ops.StKind[st_name])
    if kind == "fence":
        return ops.Fence(ops.FenceKind[detail[0]])
    if kind == "data":
        return ops.Compute(max(1, event.weight))
    if kind == "spin":
        # A recorded MESI local spin: replay as a plain racy read (the
        # replayed protocol decides how waiting actually happens).
        return ops.LoadThrough(addr)
    raise ValueError(f"cannot replay op kind {kind!r}")


def replay_bodies(events: Sequence[TraceEvent]) -> List[ThreadBody]:
    """Build per-thread generator factories replaying ``events``."""
    per_thread: Dict[int, List[TraceEvent]] = defaultdict(list)
    for event in events:
        if event.kind in DERIVED_KINDS:
            # Atomic halves duplicate their composite "atomic" event.
            continue
        per_thread[event.core].append(event)
    num_threads = max(per_thread) + 1 if per_thread else 0

    def make_body(stream: List[TraceEvent]) -> ThreadBody:
        def body(ctx):
            last_time = 0
            for event in stream:
                gap = event.time - last_time
                last_time = event.time
                if gap > 0 and event.kind != "data":
                    yield ops.Compute(gap)
                yield _reconstruct(event)
        return body

    return [make_body(per_thread.get(tid, [])) for tid in range(num_threads)]


def replay(machine: Machine, events: Sequence[TraceEvent]):
    """Replay a trace on ``machine``; returns the run's Stats."""
    bodies = replay_bodies(events)
    if len(bodies) > machine.config.num_threads:
        raise ValueError(
            f"trace has {len(bodies)} threads but the machine only "
            f"{machine.config.num_threads}")
    machine.spawn(bodies)
    return machine.run()
