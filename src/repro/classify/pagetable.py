"""First-touch private/shared page classification (VIPS-M style).

VIPS-M excludes private data from coherence: a page is *private* to the
first core that touches it until a second core accesses it, at which point
it becomes *shared* (and stays shared). Private lines in the L1 are not
self-invalidated at acquire fences and need no write-through at release —
this is the mechanism that lets self-invalidation protocols keep most of
their cache contents across synchronization.

We model the classification table directly (no TLB/OS trap timing; the
paper's VIPS-M charges a one-off cost on transitions that is negligible at
the granularity of our experiments).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.layout import AddressMap


class PageClassifier:
    """Tracks, per page, whether it is private (and to whom) or shared."""

    def __init__(self, addr_map: AddressMap) -> None:
        self._addr_map = addr_map
        # page -> owning core id, or -1 once shared
        self._owner: Dict[int, int] = {}
        self.transitions_to_shared = 0

    SHARED = -1

    def touch(self, addr: int, core: int) -> bool:
        """Record an access; returns True if the page is (now) shared."""
        page = self._addr_map.page_of(addr)
        owner = self._owner.get(page)
        if owner is None:
            self._owner[page] = core
            return False
        if owner == self.SHARED:
            return True
        if owner != core:
            self._owner[page] = self.SHARED
            self.transitions_to_shared += 1
            return True
        return False

    def is_shared(self, addr: int) -> bool:
        return self._owner.get(self._addr_map.page_of(addr)) == self.SHARED

    def is_private_to(self, addr: int, core: int) -> bool:
        return self._owner.get(self._addr_map.page_of(addr)) == core

    def owner_of(self, addr: int) -> Optional[int]:
        """The owning core id, ``SHARED`` (-1), or None if untouched."""
        return self._owner.get(self._addr_map.page_of(addr))

    def ckpt_state(self) -> Dict[str, object]:
        """Classification table as canonical data (checkpoint capture)."""
        return {"owner": dict(sorted(self._owner.items())),
                "transitions": self.transitions_to_shared}

    def force_shared(self, addr: int) -> None:
        """Pre-classify a page as shared (used for synchronization vars)."""
        self._owner[self._addr_map.page_of(addr)] = self.SHARED
