"""Declarative FSM for the VIPS-M L1 line (self-invalidation family).

State is ``{"present": bool, "shared": bool, "dirty": frozenset}`` — a
line's residency, its private/shared classification at fill time, and
the set of dirty word addresses awaiting write-through.

The guard logic lives in module-level pure predicates
(:func:`drops_on_self_invl`, :func:`flushes_on_fence`,
:func:`writes_back_on_evict`) that the live
:class:`~repro.protocols.vips.protocol.VIPSProtocol` imports for its
fence and eviction paths, while the table wires the same predicates
into transitions for the model checker — one definition, two consumers.

Fence semantics (Section 3.1 + footnote 7):

* ``self_invl`` (acquire) discards every *shared* line, first flushing
  any transient dirty shared words so invalidation cannot lose data.
* ``self_down`` (release) writes every dirty shared word through,
  keeping the line resident.
* Private lines are untouched by fences (VIPS-M excludes private data
  from coherence).
"""

from __future__ import annotations

from typing import AbstractSet, Any, Mapping

from repro.protocols.table import Effect, Emit, Event, State, Transition, TransitionTable

__all__ = [
    "VIPS_L1_TABLE",
    "drops_on_self_invl",
    "flushes_on_fence",
    "initial_line",
    "writes_back_on_evict",
]


def initial_line() -> State:
    return {"present": False, "shared": False, "dirty": frozenset()}


# ------------------------------------------------------- shared predicates


def drops_on_self_invl(shared: bool) -> bool:
    """Does a ``self_invl`` fence discard this line? (Shared lines only;
    private lines are outside VIPS-M coherence.)"""
    return shared


def flushes_on_fence(shared: bool, dirty: AbstractSet[int]) -> bool:
    """Does a fence write this line's dirty words through? (Both fences
    flush — self_invl per footnote 7, self_down by definition.)"""
    return shared and bool(dirty)


def writes_back_on_evict(dirty: AbstractSet[int]) -> bool:
    """Does a capacity eviction write the victim through?"""
    return bool(dirty)


# ------------------------------------------------------------- transitions


def _g_fill(state: Mapping[str, Any], event: Event) -> bool:
    return not state["present"]


def _a_fill(state: Mapping[str, Any], event: Event) -> Effect:
    return Effect({"present": True, "shared": bool(event.get("shared")),
                   "dirty": frozenset()})


def _g_store(state: Mapping[str, Any], event: Event) -> bool:
    return bool(state["present"])


def _a_store(state: Mapping[str, Any], event: Event) -> Effect:
    nxt = dict(state)
    nxt["dirty"] = frozenset(state["dirty"]) | {event.get("word")}
    return Effect(nxt)


def _flush_emits(state: Mapping[str, Any]) -> tuple:
    if not state["dirty"]:
        return ()
    return (Emit("flush", info=(("words", tuple(sorted(state["dirty"]))),)),)


def _g_invl_drop(state: Mapping[str, Any], event: Event) -> bool:
    return bool(state["present"]) and drops_on_self_invl(state["shared"])


def _a_invl_drop(state: Mapping[str, Any], event: Event) -> Effect:
    # Flush-then-discard: the dirty shared words go through first
    # (footnote 7), then the line leaves the L1.
    return Effect(initial_line(), _flush_emits(state) + (Emit("drop"),))


def _g_invl_keep(state: Mapping[str, Any], event: Event) -> bool:
    return not _g_invl_drop(state, event)


def _a_identity(state: Mapping[str, Any], event: Event) -> Effect:
    return Effect(dict(state))


def _g_down_flush(state: Mapping[str, Any], event: Event) -> bool:
    return bool(state["present"]) and flushes_on_fence(state["shared"],
                                                       state["dirty"])


def _a_down_flush(state: Mapping[str, Any], event: Event) -> Effect:
    nxt = dict(state)
    nxt["dirty"] = frozenset()
    return Effect(nxt, _flush_emits(state))


def _g_down_keep(state: Mapping[str, Any], event: Event) -> bool:
    return not _g_down_flush(state, event)


def _g_evict(state: Mapping[str, Any], event: Event) -> bool:
    return bool(state["present"])


def _a_evict(state: Mapping[str, Any], event: Event) -> Effect:
    emits = ()
    if writes_back_on_evict(state["dirty"]):
        emits = _flush_emits(state)
    return Effect(initial_line(), emits + (Emit("drop"),))


VIPS_L1_TABLE = TransitionTable(
    protocol="vips",
    fsm="l1_line",
    initial=initial_line,
    description="VIPS-M L1 line: residency, classification, dirty words",
    transitions=(
        Transition("fill", "fill", _g_fill, _a_fill,
                   "2-hop fill from the LLC; classification fixed at fill"),
        Transition("store", "store", _g_store, _a_store,
                   "DRF store: mark the word dirty (delayed write-through)"),
        Transition("invl_drop", "self_invl", _g_invl_drop, _a_invl_drop,
                   "Acquire fence discards a shared line (flush dirty first)"),
        Transition("invl_keep", "self_invl", _g_invl_keep, _a_identity,
                   "Private/absent lines survive self_invl"),
        Transition("down_flush", "self_down", _g_down_flush, _a_down_flush,
                   "Release fence writes dirty shared words through"),
        Transition("down_keep", "self_down", _g_down_keep, _a_identity,
                   "Nothing to downgrade"),
        Transition("evict", "evict", _g_evict, _a_evict,
                   "Capacity eviction: write dirty words through, drop"),
    ),
)
