"""Result-diffing tool."""

import pytest

from repro.harness.results_io import save_result
from repro.tools.compare import diff_results, main as compare_main


class TestDiff:
    def test_identical(self):
        assert diff_results({"a": 1.0}, {"a": 1.0}, 0.01) == []

    def test_within_tolerance(self):
        assert diff_results({"a": 1.0}, {"a": 1.005}, 0.01) == []

    def test_numeric_divergence(self):
        out = diff_results({"a": 1.0}, {"a": 2.0}, 0.01)
        assert len(out) == 1 and "/a" in out[0]

    def test_missing_keys(self):
        out = diff_results({"a": 1}, {"b": 1}, 0.01)
        assert any("only in A" in line for line in out)
        assert any("only in B" in line for line in out)

    def test_nested(self):
        a = {"rows": {"x": [1.0, 2.0]}}
        b = {"rows": {"x": [1.0, 3.0]}}
        out = diff_results(a, b, 0.01)
        assert out and "[1]" in out[0]

    def test_list_length_mismatch(self):
        out = diff_results([1, 2], [1], 0.01)
        assert "length" in out[0]

    def test_string_mismatch(self):
        out = diff_results({"label": "mesh"}, {"label": "torus"}, 0.01)
        assert "mesh" in out[0]


class TestCLI:
    def test_identical_dirs_exit_zero(self, tmp_path, capsys):
        data = {"geomean": {"CB-One": 0.78}}
        save_result(data, str(tmp_path / "a"), "fig21")
        save_result(data, str(tmp_path / "b"), "fig21")
        rc = compare_main([str(tmp_path / "a"), str(tmp_path / "b"),
                           "--name", "fig21"])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_dirs_exit_one(self, tmp_path, capsys):
        save_result({"x": 1.0}, str(tmp_path / "a"), "fig21")
        save_result({"x": 9.0}, str(tmp_path / "b"), "fig21")
        rc = compare_main([str(tmp_path / "a"), str(tmp_path / "b"),
                           "--name", "fig21"])
        assert rc == 1
        assert "divergence" in capsys.readouterr().out
