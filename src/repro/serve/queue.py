"""The persistent, multi-tenant job queue.

State lives in memory behind one lock and is rebuilt from the
append-only journal (:mod:`repro.serve.journal`) on startup; results
live in the orchestrator's content-addressed
:class:`~repro.orchestrate.cache.ResultCache`, so the queue's dedup and
the batch scheduler's dedup are literally the same directory. Every
transition also lands on an orchestration
:class:`~repro.orchestrate.events.EventLog` (``<root>/events.jsonl``),
which is what the service's streaming endpoints tail.

Scheduling — :meth:`JobQueue.lease` picks, among runs whose owning
tenant is under its lease quota, the run of the **least-loaded tenant**
(fair share), breaking ties by higher priority then FIFO order. A
tenant hammering the service with thousands of jobs cannot starve a
tenant submitting one: the idle tenant's first job wins the next lease.

Crash recovery invariants:

* an acknowledged submission is journaled durably (fsync) *before* the
  acknowledgment — it can never be lost;
* a worker that stops heartbeating has its run requeued **exactly
  once** per expiry (the expiry transition itself moves the run out of
  the leased state, so a second sweep finds nothing to requeue);
* a committed result is written to the result cache *before* the
  commit is journaled — a crash between the two replays as "queued run
  whose record already exists" and completes as a cache hit;
* a zombie worker finishing after its lease expired is fenced by the
  lease generation token and its commit refused
  (:class:`~repro.serve.model.StaleLeaseError`) — a run commits at
  most once.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional

from repro import ioutil
from repro.iohooks import SITE_PROBE_FSYNC, SITE_PROBE_WRITE, io_site
from repro.ioutil import atomic_write_json
from repro.obs.flight import FlightRecorder
from repro.obs.promtext import (Family, histogram_family,
                                render_prometheus)
from repro.obs.tracectx import (HostSpan, HostSpanLog, mint_trace_id,
                                stitch_trace)
from repro.orchestrate.cache import ResultCache
from repro.orchestrate.events import EventLog
from repro.orchestrate.jobspec import JobSpec
from repro.orchestrate.scheduler import DETERMINISTIC_KINDS

from repro.serve.journal import Journal, journal_path
from repro.serve.model import (HEALTH_DEGRADED, HEALTH_OK,
                               HEALTH_READ_ONLY, HEALTH_STATES,
                               RUN_CANCELLED, RUN_DONE, RUN_FAILED,
                               RUN_LEASED, RUN_QUEUED, SUB_CANCELLED,
                               SUB_DONE, SUB_FAILED, SUB_QUEUED,
                               TERMINAL_RUN_STATES, BacklogExceededError,
                               QuotaExceededError, Run,
                               ServiceUnavailableError, StaleLeaseError,
                               Submission, UnknownJobError)

__all__ = ["JobQueue"]


class JobQueue:
    """See the module docstring. All public methods are thread-safe."""

    def __init__(self, root: str, *,
                 lease_s: float = 5.0,
                 max_attempts: int = 5,
                 default_quota: int = 0,
                 quotas: Optional[Dict[str, int]] = None,
                 max_queued_per_tenant: int = 0,
                 max_queued_runs: int = 0,
                 probe_interval_s: float = 1.0,
                 read_only_after: int = 3,
                 checkpoint_every: int = 2000,
                 checkpoint_ring: int = 4,
                 flight_capacity: int = 256,
                 deadline_cycles_per_s: float = 0.0,
                 verbose: bool = False) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        #: Per-tenant max concurrently leased runs (0 = unlimited).
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        #: Per-tenant max live (non-terminal) submissions (0 = unlimited).
        self.max_queued_per_tenant = max_queued_per_tenant
        #: Global admission watermark: max queued (leasable) runs across
        #: all tenants (0 = unlimited). Above it submits get 429 +
        #: Retry-After — the backlog drains, retry later.
        self.max_queued_runs = max_queued_runs
        #: How often the read-only auto-recovery probe may touch disk.
        self.probe_interval_s = probe_interval_s
        #: Consecutive journal write failures before the queue stops
        #: accepting writes (ENOSPC short-circuits to read-only at once).
        self.read_only_after = max(1, read_only_after)
        self.checkpoint_every = checkpoint_every
        self.checkpoint_ring = checkpoint_ring
        #: Wall→simulated-clock conversion for deadline propagation:
        #: a leased run with ``deadline_at`` set gets an out-of-band
        #: ``_deadline.max_cycles`` of ``remaining_s * this rate``, so
        #: the engine's own cycle budget cuts a doomed run off even if
        #: the worker never looks at the wall clock again. 0 disables
        #: the cycle cap (the wall-clock expiry still applies).
        self.deadline_cycles_per_s = deadline_cycles_per_s

        self.cache = ResultCache(os.path.join(self.root, "cache"))
        self.checkpoint_dir = os.path.join(self.root, "ckpts")
        self.artifacts_root = os.path.join(self.root, "artifacts")
        self.events_path = os.path.join(self.root, "events.jsonl")
        self.events = EventLog(sink_path=self.events_path, verbose=verbose)
        #: Bounded ring of recent transitions — the black box attached
        #: to failure dumps (see :meth:`_dump_flight`).
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.flight_dir = os.path.join(self.root, "flight")
        self.hostspans_path = os.path.join(self.root, "hostspans.jsonl")
        self.hostspans = HostSpanLog(self.hostspans_path)
        self.started_at = time.time()
        #: Terminal failures by failure class (monotonic; /metrics).
        self.failure_kinds: Counter = Counter()

        self._lock = threading.RLock()
        self.runs: Dict[str, Run] = {}
        self.subs: Dict[str, Submission] = {}
        self.workers: Dict[str, Dict[str, Any]] = {}
        self.counters: Counter = Counter()
        self.draining = False
        #: Health state machine (see :func:`healthz`): ok | degraded |
        #: read_only. ``degraded`` is computed, ``read_only`` is sticky
        #: until the recovery probe succeeds.
        self.health = HEALTH_OK
        self.read_only_since = 0.0
        self._read_only_reason = ""
        self._journal_fail_streak = 0
        self._last_probe_t = 0.0
        self._seq = 0          # run FIFO order
        self._sub_seq = 0      # submission id counter
        self._replaying = False

        restored = self._replay()
        self._journal = Journal(journal_path(self.root))
        if restored:
            self._event("restart", "", "journal replayed",
                        runs=len(self.runs), submissions=len(self.subs),
                        requeued=restored.get("requeued", 0))

    # --------------------------------------------------------- internals

    def _event(self, kind: str, job_key: str, label: str = "",
               **detail: Any) -> None:
        """Record + flush (the stream endpoints tail this file live);
        suppressed during replay so restarts don't duplicate history.
        Event-log IO trouble (a full disk) must never fail the
        transition being narrated — dropped events are counted and the
        flight ring (memory-only) still gets the record."""
        if self._replaying:
            return
        try:
            self.events.record(kind, job_key, label, **detail)
            self.events.flush()
        except OSError:
            self.counters["dropped_events"] += 1
        self.flight.record(kind, job_key=job_key, label=label, **detail)

    def _journal_op(self, op: str, **fields: Any) -> None:
        """Journal a non-ack transition (lease / requeue / commit /
        fail / cancel / drain). A write failure here is *noted* for the
        health machinery but never propagated: the in-memory mutation
        already happened, and replay reconstructs every one of these
        conservatively (an unjournaled lease requeues; an unjournaled
        commit replays via the cache-put-before-commit fixup)."""
        if self._replaying:
            return
        try:
            self._journal.append(op, **fields)
            self._note_journal_ok()
        except OSError as exc:
            self._note_io_failure(exc, f"journal[{op}]")

    # ------------------------------------------------------------ health

    def _note_journal_ok(self) -> None:
        self._journal_fail_streak = 0

    def _note_io_failure(self, exc: OSError, where: str) -> None:
        """Account one journal/cache write failure; trip read-only on
        ENOSPC (definitively a full disk) or a persistent streak."""
        self._journal_fail_streak += 1
        self.counters["journal_write_errors"] += 1
        if exc.errno == errno.ENOSPC or \
                self._journal_fail_streak >= self.read_only_after:
            self._enter_read_only(f"{where}: {exc}")

    def _enter_read_only(self, reason: str) -> None:
        if self.health == HEALTH_READ_ONLY:
            return
        self.health = HEALTH_READ_ONLY
        self._read_only_reason = reason
        self.read_only_since = time.time()
        self.counters["health_to_read_only"] += 1
        self._event("health", "", "entering read-only", state=self.health,
                    reason=reason)

    def _probe_disk(self) -> bool:
        """Can we write durably again? One scratch write + fsync under
        the service root, routed through the same fault sites as real
        writes so an injected 'full disk' keeps failing the probe."""
        probe = os.path.join(self.root, ".health-probe")
        try:
            io_site(SITE_PROBE_WRITE, probe, size=8)
            with open(probe, "w") as handle:
                handle.write("healthy\n")
                handle.flush()
                io_site(SITE_PROBE_FSYNC, probe)
                os.fsync(handle.fileno())
            os.unlink(probe)
            return True
        except OSError:
            self.counters["probe_failures"] += 1
            return False

    def health_probe(self, now: Optional[float] = None) -> str:
        """Housekeeping hook: while read-only, periodically test the
        disk and return to ``ok`` once writes succeed again. Returns
        the (possibly updated) health state."""
        now = time.time() if now is None else now
        with self._lock:
            if self.health != HEALTH_READ_ONLY:
                return self.health
            if now - self._last_probe_t < self.probe_interval_s:
                return self.health
            self._last_probe_t = now
            if self._probe_disk():
                self.health = HEALTH_OK
                self._read_only_reason = ""
                self.read_only_since = 0.0
                self._journal_fail_streak = 0
                self.counters["health_recoveries"] += 1
                self._event("health", "", "recovered to ok",
                            state=self.health)
            return self.health

    def _queued_runs(self) -> int:
        return sum(1 for run in self.runs.values()
                   if run.state == RUN_QUEUED)

    def _health_reasons(self) -> List[str]:
        reasons: List[str] = []
        if self.health == HEALTH_READ_ONLY:
            reasons.append(self._read_only_reason or
                           "persistent journal write failure")
            return reasons
        if self._journal_fail_streak > 0:
            reasons.append(
                f"{self._journal_fail_streak} recent journal write "
                f"error(s)")
        if self.max_queued_runs:
            queued = self._queued_runs()
            if queued >= 0.8 * self.max_queued_runs:
                reasons.append(
                    f"backlog {queued}/{self.max_queued_runs} near "
                    f"admission watermark")
        return reasons

    def healthz(self) -> Dict[str, Any]:
        """The ``GET /healthz`` document (see docs/serving.md)."""
        with self._lock:
            reasons = self._health_reasons()
            state = self.health
            if state == HEALTH_OK and reasons:
                state = HEALTH_DEGRADED
            doc: Dict[str, Any] = {
                "state": state,
                "reasons": reasons,
                "draining": self.draining,
                "queued_runs": self._queued_runs(),
                "leased_runs": sum(1 for r in self.runs.values()
                                   if r.state == RUN_LEASED),
                "watermark": {"max_queued_runs": self.max_queued_runs},
                "read_only_since": (self.read_only_since
                                    if self.health == HEALTH_READ_ONLY
                                    else None),
            }
            if state == HEALTH_READ_ONLY:
                doc["retry_after_s"] = self.probe_interval_s
            return doc

    def quota_for(self, tenant: str) -> int:
        return self.quotas.get(tenant, self.default_quota)

    def _active_leases(self, tenant: str) -> int:
        return sum(1 for run in self.runs.values()
                   if run.state == RUN_LEASED and run.tenant == tenant)

    def _live_submissions(self, tenant: str) -> int:
        return sum(1 for sub in self.subs.values()
                   if sub.tenant == tenant
                   and sub.state in (SUB_QUEUED,))

    def artifacts_dir(self, job_key: str) -> str:
        return os.path.join(self.artifacts_root, job_key)

    def events_offset(self) -> int:
        """Current byte size of the orchestration event log — the
        offset an idle worker long-polls ``/v1/events`` from, so it is
        woken by the *next* transition without replaying history."""
        try:
            return os.path.getsize(self.events_path)
        except OSError:
            return 0

    def artifact_names(self, job_key: str) -> List[str]:
        directory = self.artifacts_dir(job_key)
        if not os.path.isdir(directory):
            return []
        return sorted(name for name in os.listdir(directory)
                      if os.path.isfile(os.path.join(directory, name)))

    # ------------------------------------------------------------ submit

    def submit(self, tenant: str, spec_dict: Dict[str, Any],
               priority: int = 0,
               telemetry: bool = False,
               deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Accept one submission; returns its view (durably journaled
        before return). Identical specs collapse onto one run.

        ``deadline_s`` (seconds from now, optional) bounds the whole
        run: past the deadline the run is terminally failed (kind
        ``timeout``) instead of leased, and a lease granted near it has
        its TTL and engine cycle budget capped to the remaining time.
        """
        (view,) = self.submit_many(tenant, [spec_dict], priority=priority,
                                   telemetry=telemetry,
                                   deadline_s=deadline_s)
        return view

    def submit_many(self, tenant: str, spec_dicts: List[Dict[str, Any]],
                    priority: int = 0,
                    telemetry: bool = False,
                    deadline_s: Optional[float] = None
                    ) -> List[Dict[str, Any]]:
        """Batch submission (a sweep): one journal append, one fsync."""
        if not tenant or "/" in tenant:
            raise ValueError(f"bad tenant name {tenant!r}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        deadline_at = (time.time() + float(deadline_s)
                       if deadline_s is not None else None)
        specs = [JobSpec.from_dict(d) for d in spec_dicts]
        with self._lock:
            if not self._replaying and self.health == HEALTH_READ_ONLY:
                self.counters["rejected_read_only"] += 1
                raise ServiceUnavailableError(
                    f"queue is read-only "
                    f"({self._read_only_reason or 'durability lost'}); "
                    f"retry after recovery",
                    retry_after=self.probe_interval_s)
            if self.max_queued_per_tenant:
                live = self._live_submissions(tenant)
                if live + len(specs) > self.max_queued_per_tenant:
                    self.counters["rejected_quota"] += 1
                    raise QuotaExceededError(
                        f"tenant {tenant!r} would have {live + len(specs)} "
                        f"live submissions "
                        f"(max {self.max_queued_per_tenant})")
            if self.max_queued_runs and not self._replaying:
                queued = self._queued_runs()
                if queued + len(specs) > self.max_queued_runs:
                    self.counters["rejected_backlog"] += 1
                    raise BacklogExceededError(
                        f"queued-run backlog {queued} + {len(specs)} "
                        f"would exceed watermark {self.max_queued_runs}",
                        retry_after=1.0)
            entries = []
            views = []
            for spec in specs:
                self._sub_seq += 1
                sub_id = f"{tenant}-{self._sub_seq:07d}"
                entry = {"op": "submit", "sub": sub_id, "tenant": tenant,
                         "priority": priority, "job_key": spec.job_key(),
                         "spec": spec.to_dict(), "telemetry": telemetry,
                         "trace": mint_trace_id(), "t": time.time()}
                if deadline_at is not None:
                    # Absolute, so replay after a restart enforces the
                    # same instant instead of restarting the countdown.
                    entry["deadline"] = deadline_at
                entries.append(entry)
            if not self._replaying:
                # The ack contract: a submission is durable before it is
                # acknowledged. If the append fails the caller gets 503
                # and *no* state changed — nothing was applied yet.
                try:
                    self._journal.append_many(entries)
                    self._note_journal_ok()
                except OSError as exc:
                    self._note_io_failure(exc, "journal[submit]")
                    raise ServiceUnavailableError(
                        f"submission not journaled: {exc}",
                        retry_after=self.probe_interval_s) from exc
            for entry in entries:
                views.append(self._apply_submit(entry).view(
                    self.runs.get(entry["job_key"])))
            return views

    def _apply_submit(self, entry: Dict[str, Any]) -> Submission:
        tenant = entry["tenant"]
        job_key = entry["job_key"]
        sub = Submission(sub_id=entry["sub"], tenant=tenant,
                         job_key=job_key,
                         priority=int(entry.get("priority", 0)),
                         t_submit=float(entry.get("t", 0.0)))
        self.subs[sub.sub_id] = sub
        run = self.runs.get(job_key)
        if run is None:
            # Dedup against the content-addressed cache before queueing:
            # an identical job finished by an earlier batch, an earlier
            # service life, or the plain orchestrator costs nothing.
            record = (None if self._replaying
                      else self.cache.get(JobSpec.from_dict(entry["spec"])))
            if record is not None:
                sub.state = SUB_DONE
                sub.cache_hit = True
                run = Run(job_key=job_key, spec=entry["spec"],
                          tenant=tenant, seq=self._next_seq(),
                          priority=sub.priority, state=RUN_DONE,
                          trace_id=entry.get("trace", ""))
                run.submissions.append(sub.sub_id)
                run.tenants.add(tenant)
                run.telemetry = bool(entry.get("telemetry", False))
                self.runs[job_key] = run
                self._event("cache_hit", job_key, sub.sub_id,
                            tenant=tenant,
                            cycles=record.get("result", {}).get("cycles", 0))
                return sub
            # The run's trace id is minted once, here at ingest, and
            # journaled with the submission — a restart replays the
            # same id, so a post-crash resume attempt stays on the
            # trace that queued it.
            run = Run(job_key=job_key, spec=entry["spec"], tenant=tenant,
                      seq=self._next_seq(), priority=sub.priority,
                      trace_id=entry.get("trace", ""),
                      t_queued=float(entry.get("t", 0.0)) or time.time())
            run.telemetry = bool(entry.get("telemetry", False))
            run.deadline_at = entry.get("deadline")
            self.runs[job_key] = run
        elif run.state in (RUN_FAILED, RUN_CANCELLED):
            # Fresh demand revives a terminally-failed/cancelled run.
            run.state = RUN_QUEUED
            run.attempts = 0
            run.error, run.kind = "", "ok"
            run.seq = self._next_seq()
            run.t_queued = float(entry.get("t", 0.0)) or time.time()
            run.deadline_at = entry.get("deadline")
        else:
            # Dedup merge: the loosest deadline wins (None = unlimited),
            # since one result answers every attached submission.
            if run.deadline_at is not None and run.state == RUN_QUEUED:
                merged = entry.get("deadline")
                run.deadline_at = (None if merged is None
                                   else max(run.deadline_at, float(merged)))
        run.submissions.append(sub.sub_id)
        run.tenants.add(tenant)
        run.priority = max(run.priority, sub.priority)
        run.telemetry = run.telemetry or bool(entry.get("telemetry", False))
        if run.state == RUN_DONE:
            sub.state = SUB_DONE
            sub.cache_hit = True
            self._event("cache_hit", job_key, sub.sub_id, tenant=tenant)
        else:
            self._event("queued", job_key, sub.sub_id, tenant=tenant,
                        priority=sub.priority)
        return sub

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------- lease

    def lease(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Hand the best queued run to ``worker_id``, or None (idle /
        draining). The response carries the run payload (spec plus
        out-of-band checkpoint/telemetry routing), the fencing token,
        and the heartbeat deadline."""
        with self._lock:
            self._touch_worker(worker_id)
            if self.draining:
                return None
            if self.health == HEALTH_READ_ONLY:
                # A commit needs cache + journal writes; don't hand out
                # work that can only end in a failed publish.
                return None
            now = time.time()
            self._expire_deadlines(now)
            run = self._pick()
            if run is None:
                return None
            # Layer 1 of deadline propagation: the lease TTL never
            # outlives the run's deadline, so a worker that dies holding
            # a nearly-overdue run cannot park it past its cutoff.
            lease_s = self.lease_s
            if run.deadline_at is not None:
                lease_s = max(0.05, min(lease_s, run.deadline_at - now))
            run.state = RUN_LEASED
            run.attempts += 1
            run.generation += 1
            run.worker = worker_id
            run.lease_expires = now + lease_s
            info = self.workers[worker_id]
            info["job_key"] = run.job_key
            info["leases"] = info.get("leases", 0) + 1
            # Close the host-domain wait interval: queued (or last
            # requeued) -> this lease.
            if run.trace_id and run.t_queued > 0:
                self.hostspans.record(HostSpan(
                    name="queue.wait", trace_id=run.trace_id,
                    start=min(run.t_queued, now), end=now,
                    track="host/queue",
                    args={"job_key": run.job_key[:12],
                          "tenant": run.tenant,
                          "attempt": run.attempts}))
            run.t_leased = now
            self._journal_op("lease", job_key=run.job_key,
                             worker=worker_id, gen=run.generation,
                             attempt=run.attempts,
                             expires=run.lease_expires)
            self._event("started", run.job_key,
                        run.job_spec().describe(), attempt=run.attempts,
                        worker=worker_id, tenant=run.tenant)
            return {
                "job_key": run.job_key,
                "token": run.generation,
                "attempt": run.attempts,
                "lease_s": lease_s,
                "trace_id": run.trace_id,
                "payload": self._payload(run),
            }

    def _pick(self) -> Optional[Run]:
        """Fair-share pick; see the module docstring."""
        eligible: Dict[str, List[Run]] = {}
        for run in self.runs.values():
            if run.state != RUN_QUEUED:
                continue
            quota = self.quota_for(run.tenant)
            if quota and self._active_leases(run.tenant) >= quota:
                continue
            eligible.setdefault(run.tenant, []).append(run)
        if not eligible:
            return None
        tenant = min(eligible,
                     key=lambda t: (self._active_leases(t), t))
        return min(eligible[tenant],
                   key=lambda r: (-r.priority, r.seq))

    def _payload(self, run: Run) -> Dict[str, Any]:
        """What the worker executes: the spec dict plus out-of-band
        (never content-hashed) checkpoint and telemetry routing."""
        payload = dict(run.spec)
        if self.checkpoint_every > 0:
            payload["_checkpoint"] = {
                "dir": self.checkpoint_dir,
                "every": self.checkpoint_every,
                "ring": self.checkpoint_ring,
                "resume": True,
            }
        if getattr(run, "telemetry", False):
            payload["_telemetry"] = {"dir": self.artifacts_dir(run.job_key)}
        if run.trace_id:
            payload["_trace"] = {"trace_id": run.trace_id,
                                 "attempt": run.attempts}
        if run.deadline_at is not None:
            # Layer 2: the worker gets the wall-clock cutoff, and layer
            # 3 rides along as an engine cycle budget derived from the
            # remaining time — the simulation cuts itself off even when
            # the worker process never checks the clock again.
            deadline: Dict[str, Any] = {"expires": run.deadline_at}
            if self.deadline_cycles_per_s > 0:
                remaining = max(0.0, run.deadline_at - time.time())
                deadline["max_cycles"] = max(
                    1, int(remaining * self.deadline_cycles_per_s))
            payload["_deadline"] = deadline
        return payload

    def _touch_worker(self, worker_id: str) -> None:
        info = self.workers.setdefault(
            worker_id, {"leases": 0, "job_key": None})
        info["last_seen"] = time.time()

    # --------------------------------------------------------- heartbeat

    def heartbeat(self, job_key: str, token: int, worker_id: str = "") -> float:
        """Extend a live lease; returns the new deadline. Raises
        :class:`StaleLeaseError` when the lease is gone — the worker's
        signal to abandon the run (its commit would be refused too)."""
        with self._lock:
            if worker_id:
                self._touch_worker(worker_id)
            run = self._run(job_key)
            if run.state != RUN_LEASED or token != run.generation:
                raise StaleLeaseError(
                    f"lease for {job_key[:12]} is no longer held "
                    f"(state={run.state}, gen={run.generation}, "
                    f"presented={token})")
            now = time.time()
            run.lease_expires = now + self.lease_s
            if run.deadline_at is not None:
                # Heartbeats cannot extend a lease past the deadline:
                # once it passes, the expiry sweep reclaims the run and
                # the requeue path turns it into a terminal timeout.
                run.lease_expires = min(run.lease_expires,
                                        max(now + 0.05, run.deadline_at))
            return run.lease_expires

    def expire_leases(self, now: Optional[float] = None) -> List[str]:
        """Requeue every run whose lease deadline passed (the worker
        stopped heartbeating: SIGKILLed, wedged, or partitioned).
        Exactly once per expiry: the transition out of ``leased`` is
        what a later sweep keys off, so it cannot fire twice."""
        now = time.time() if now is None else now
        requeued = []
        with self._lock:
            self._expire_deadlines(now)
            for run in list(self.runs.values()):
                if run.state != RUN_LEASED or run.lease_expires > now:
                    continue
                self._requeue(run, reason="lease_expired")
                requeued.append(run.job_key)
        return requeued

    def _expire_deadlines(self, now: float) -> None:
        """Terminally fail queued runs whose deadline passed (kind
        ``timeout`` — the same deterministic verdict an engine-level
        SimulationTimeout produces, so it never requeues). Leased runs
        are not touched here: their lease TTL is already capped at the
        deadline, so expiry + :meth:`_requeue` collects them."""
        for run in list(self.runs.values()):
            if run.state != RUN_QUEUED or run.deadline_at is None \
                    or run.deadline_at > now:
                continue
            self.counters["deadline_expirations"] += 1
            self._terminal_failure(
                run, kind="timeout",
                error=f"deadline passed while queued "
                      f"({now - run.deadline_at:.2f}s overdue, "
                      f"{run.attempts} attempt(s))")

    def _close_lease_span(self, run: Run, outcome: str) -> None:
        """Record the ``lease.held`` host span for the lease now ending
        (commit, failure report, or expiry). Idempotent per lease:
        ``t_leased`` is consumed."""
        if self._replaying or not run.trace_id or run.t_leased <= 0:
            return
        self.hostspans.record(HostSpan(
            name="lease.held", trace_id=run.trace_id,
            start=run.t_leased, end=time.time(), track="host/queue",
            args={"job_key": run.job_key[:12],
                  "worker": run.worker or "",
                  "attempt": run.attempts, "outcome": outcome}))
        run.t_leased = 0.0

    def _requeue(self, run: Run, reason: str) -> None:
        worker = run.worker
        self._close_lease_span(run, outcome=reason)
        run.worker = None
        run.t_queued = time.time()
        if run.deadline_at is not None and \
                run.t_queued >= run.deadline_at:
            self.counters["deadline_expirations"] += 1
            self._terminal_failure(
                run, kind="timeout",
                error=f"deadline passed after {run.attempts} attempt(s) "
                      f"({reason})")
            return
        if run.attempts >= self.max_attempts:
            self._terminal_failure(
                run, kind="crash",
                error=f"{reason} after {run.attempts} attempt(s)")
            return
        run.state = RUN_QUEUED
        run.requeues += 1
        self.counters["requeues"] += 1
        self._journal_op("requeue", job_key=run.job_key, reason=reason,
                         attempts=run.attempts)
        self._event("retried", run.job_key, run.job_spec().describe(),
                    attempt=run.attempts, error=reason, worker=worker)

    # ------------------------------------------------------ commit / fail

    def commit(self, job_key: str, token: int,
               record: Dict[str, Any]) -> Dict[str, Any]:
        """Publish a finished run's record. Fenced: only the current
        leaseholder may commit; anyone else gets StaleLeaseError and
        must discard. The record hits the result cache (atomic,
        checksummed) *before* the commit is journaled."""
        with self._lock:
            run = self._run(job_key)
            if run.state != RUN_LEASED or token != run.generation:
                run.stale_commits += 1
                self.counters["stale_commits"] += 1
                self._event("stale_commit", job_key,
                            worker=run.worker or "",
                            presented=token, gen=run.generation,
                            state=run.state)
                raise StaleLeaseError(
                    f"commit for {job_key[:12]} refused: lease not held "
                    f"(state={run.state}, presented gen {token}, "
                    f"current {run.generation})")
            spec = run.job_spec()
            try:
                self.cache.put(spec, record)
            except OSError as exc:
                # Result not durable: leave the lease intact (the
                # worker retries the commit or lets the lease expire —
                # either way the run is not lost) and let health trip.
                self._note_io_failure(exc, "cache[put]")
                raise ServiceUnavailableError(
                    f"result not persisted: {exc}",
                    retry_after=self.probe_interval_s) from exc
            meta = record.get("meta", {})
            resumed = meta.get("resumed_from")
            worker = run.worker or ""
            self._close_lease_span(run, outcome="commit")
            run.state = RUN_DONE
            run.commits += 1
            run.worker = None
            run.resumed_from = resumed
            # The worker's host spans (worker.attempt / ckpt.restore /
            # sim.run) ride back on the record's meta — parity-exempt —
            # and land in the same hostspans log the queue writes, so
            # one trace id stitches both processes.
            worker_spans = meta.get("host_spans") or []
            if worker_spans:
                try:
                    self.hostspans.append_many(
                        HostSpan.from_dict(s) for s in worker_spans)
                except (KeyError, TypeError, ValueError):
                    pass  # malformed spans must never block a commit
            if worker:
                info = self.workers.setdefault(
                    worker, {"leases": 0, "job_key": None})
                info["jobs"] = info.get("jobs", 0) + 1
                info["cycles"] = info.get("cycles", 0) + int(
                    record.get("result", {}).get("cycles", 0) or 0)
                info["events"] = info.get("events", 0) + int(
                    meta.get("events_executed", 0) or 0)
                info["busy_s"] = info.get("busy_s", 0.0) + float(
                    meta.get("wall_s", 0.0) or 0.0)
                info["job_key"] = None
            self._journal_op("commit", job_key=job_key, gen=token,
                             **({"resumed_from": resumed}
                                if resumed is not None else {}))
            self._settle_submissions(run, SUB_DONE)
            self._event(
                "finished", job_key, spec.describe(),
                attempt=run.attempts,
                cycles=record.get("result", {}).get("cycles", 0),
                wall_s=record.get("meta", {}).get("wall_s", 0.0),
                **({"resumed_from": resumed} if resumed is not None else {}))
            return run.view(record)

    def fail(self, job_key: str, token: int, kind: str,
             error: str) -> Dict[str, Any]:
        """A worker reports a failed execution. Deterministic verdicts
        (invariant/liveness/timeout) are terminal — the simulation
        would fail identically again; infrastructure failures requeue
        until ``max_attempts``. Fenced like :meth:`commit`."""
        with self._lock:
            run = self._run(job_key)
            if run.state != RUN_LEASED or token != run.generation:
                self.counters["stale_fails"] += 1
                raise StaleLeaseError(
                    f"failure report for {job_key[:12]} refused: lease "
                    f"not held")
            self._close_lease_span(run, outcome=f"fail:{kind}")
            run.worker = None
            if kind in DETERMINISTIC_KINDS or run.attempts >= \
                    self.max_attempts:
                self._terminal_failure(run, kind=kind, error=error)
            else:
                self._requeue(run, reason=f"worker_failed: {error}")
            return run.view()

    def _terminal_failure(self, run: Run, kind: str, error: str) -> None:
        run.state = RUN_FAILED
        run.kind = kind
        run.error = error
        self.failure_kinds[kind] += 1
        self._journal_op("fail", job_key=run.job_key, kind=kind,
                         error=error)
        self._settle_submissions(run, SUB_FAILED)
        self._event("failed", run.job_key, run.job_spec().describe(),
                    attempt=run.attempts, failure_kind=kind, error=error)
        if not self._replaying:
            self._dump_flight(run)

    def _dump_flight(self, run: Run) -> None:
        """Dump the flight-recorder ring next to the run that died —
        the service-level analogue of the checkpoint layer's black-box
        snapshot: what the queue saw in the moments before the end."""
        try:
            atomic_write_json(
                os.path.join(self.flight_dir, f"{run.job_key}.json"),
                {"job_key": run.job_key, "trace_id": run.trace_id,
                 "failure_kind": run.kind, "error": run.error,
                 "t_wall": time.time(), "flight": self.flight.payload()},
                durable=False, indent=2)
        except OSError:  # pragma: no cover - disk trouble
            pass

    def _settle_submissions(self, run: Run, state: str) -> None:
        for sub_id in run.submissions:
            sub = self.subs.get(sub_id)
            if sub is not None and sub.state == SUB_QUEUED:
                sub.state = state

    def _run(self, job_key: str) -> Run:
        run = self.runs.get(job_key)
        if run is None:
            raise UnknownJobError(f"unknown job {job_key[:16]!r}")
        return run

    # ------------------------------------------------------------ cancel

    def cancel(self, sub_id: str) -> Dict[str, Any]:
        """Cancel one submission. The shared run is only cancelled when
        *every* submission riding it is cancelled and it is not
        currently executing (a leased run finishes and commits — other
        tenants may re-request the spec for free afterwards)."""
        with self._lock:
            sub = self.subs.get(sub_id)
            if sub is None:
                raise UnknownJobError(f"unknown submission {sub_id!r}")
            if sub.state != SUB_QUEUED:
                return sub.view(self.runs.get(sub.job_key))
            sub.state = SUB_CANCELLED
            self._journal_op("cancel", sub=sub_id)
            run = self.runs.get(sub.job_key)
            self._maybe_cancel_run(run)
            self._event("cancelled", sub.job_key, sub_id)
            return sub.view(run)

    def _maybe_cancel_run(self, run: Optional[Run]) -> None:
        if (run is not None and run.state == RUN_QUEUED
                and all(self.subs[s].state == SUB_CANCELLED
                        for s in run.submissions if s in self.subs)):
            run.state = RUN_CANCELLED
            run.kind = "cancelled"

    # ------------------------------------------------------------- drain

    def drain(self, on: bool = True) -> None:
        with self._lock:
            self.draining = on
            self._journal_op("drain", on=on)
            self._event("drain", "", on=on)

    @property
    def idle(self) -> bool:
        """No queued or leased work anywhere."""
        with self._lock:
            return all(run.state in TERMINAL_RUN_STATES
                       for run in self.runs.values())

    # ------------------------------------------------------------- views

    def submission_view(self, sub_id: str) -> Dict[str, Any]:
        with self._lock:
            sub = self.subs.get(sub_id)
            if sub is None:
                raise UnknownJobError(f"unknown submission {sub_id!r}")
            return sub.view(self.runs.get(sub.job_key))

    def run_view(self, job_key: str) -> Dict[str, Any]:
        with self._lock:
            run = self._run(job_key)
            record = (self.cache.get(run.job_spec())
                      if run.state == RUN_DONE else None)
            return run.view(record, artifacts=self.artifact_names(job_key))

    def result(self, ref: str) -> Dict[str, Any]:
        """The finished record for a submission id or job key."""
        with self._lock:
            sub = self.subs.get(ref)
            job_key = sub.job_key if sub is not None else ref
            run = self._run(job_key)
            if run.state != RUN_DONE:
                raise UnknownJobError(
                    f"job {job_key[:12]} has no result "
                    f"(state={run.state}{': ' + run.error if run.error else ''})")
            record = self.cache.get(run.job_spec())
            if record is None:  # pragma: no cover - cache damage
                raise UnknownJobError(
                    f"record for {job_key[:12]} missing from cache")
            return record

    def status(self) -> Dict[str, Any]:
        with self._lock:
            run_states = Counter(run.state for run in self.runs.values())
            sub_states = Counter(sub.state for sub in self.subs.values())
            cache_hits = sum(1 for s in self.subs.values() if s.cache_hit)
            # Runs are charged to their first submitter, but every
            # submitting tenant gets a row — a tenant whose specs all
            # dedup'd onto others' runs still has submissions to show.
            by_tenant: Dict[str, Dict[str, Any]] = {}
            for sub in self.subs.values():
                by_tenant.setdefault(sub.tenant, Counter())
            for run in self.runs.values():
                info = by_tenant.setdefault(run.tenant, Counter())
                info[run.state] += 1
            tenants = {}
            for tenant, states in by_tenant.items():
                tenants[tenant] = {
                    **{state: states.get(state, 0)
                       for state in (RUN_QUEUED, RUN_LEASED, RUN_DONE,
                                     RUN_FAILED, RUN_CANCELLED)},
                    "active_leases": self._active_leases(tenant),
                    "quota": self.quota_for(tenant),
                    "submissions": sum(1 for s in self.subs.values()
                                       if s.tenant == tenant),
                    "backlog": self._live_submissions(tenant),
                }
            resumed = sum(1 for run in self.runs.values()
                          if run.resumed_from is not None)
            now = time.time()
            lease_ages = [now - run.t_leased
                          for run in self.runs.values()
                          if run.state == RUN_LEASED and run.t_leased > 0]
            return {
                "draining": self.draining,
                "health": self.health,
                "health_reasons": self._health_reasons(),
                "uptime_s": now - self.started_at,
                "runs": {"total": len(self.runs), **dict(run_states)},
                "submissions": {"total": len(self.subs),
                                "cache_hits": cache_hits,
                                **dict(sub_states)},
                "tenants": tenants,
                "workers": {
                    worker: {"last_seen": info.get("last_seen"),
                             "job_key": info.get("job_key"),
                             "leases": info.get("leases", 0),
                             "jobs": info.get("jobs", 0),
                             "cycles": info.get("cycles", 0),
                             "events": info.get("events", 0),
                             "busy_s": info.get("busy_s", 0.0)}
                    for worker, info in self.workers.items()},
                "resumed_runs": resumed,
                "oldest_lease_age_s": max(lease_ages, default=0.0),
                "failure_kinds": dict(self.failure_kinds),
                "counters": dict(self.counters),
                "cache": dict(self.cache.counters),
                "flight": {"recorded": self.flight.payload()["recorded"],
                           "dropped": self.flight.dropped,
                           "capacity": self.flight.capacity},
                "throughput": self.events.throughput(),
            }

    # ----------------------------------------------------- observability

    def prometheus_families(self) -> List[Family]:
        """The live metric catalog ``GET /metrics`` renders. Counters
        here are lifetime-monotonic for this service instance (event
        counts, cache ops, worker totals); gauges are instantaneous
        (depth, backlog, lease ages, heartbeat staleness)."""
        with self._lock:
            now = time.time()
            fams: List[Family] = []

            up = Family("repro_serve_uptime_seconds", "gauge",
                        "Seconds since this queue instance opened.")
            up.add(max(0.0, now - self.started_at))
            fams.append(up)

            tenants = sorted({run.tenant for run in self.runs.values()}
                             | {sub.tenant for sub in self.subs.values()})
            depth = Family("repro_queue_depth", "gauge",
                           "Leasable (queued) runs per tenant.")
            backlog = Family("repro_tenant_backlog", "gauge",
                             "Live (unsettled) submissions per tenant.")
            for tenant in tenants:
                depth.add(sum(1 for r in self.runs.values()
                              if r.tenant == tenant
                              and r.state == RUN_QUEUED), tenant=tenant)
                backlog.add(self._live_submissions(tenant), tenant=tenant)
            fams += [depth, backlog]

            runs = Family("repro_runs", "gauge", "Runs by state.")
            for state in (RUN_QUEUED, RUN_LEASED, RUN_DONE, RUN_FAILED,
                          RUN_CANCELLED):
                runs.add(sum(1 for r in self.runs.values()
                             if r.state == state), state=state)
            fams.append(runs)

            ages = Family("repro_lease_age_seconds", "gauge",
                          "Age of each currently held lease.")
            oldest = 0.0
            for run in self.runs.values():
                if run.state == RUN_LEASED and run.t_leased > 0:
                    age = max(0.0, now - run.t_leased)
                    oldest = max(oldest, age)
                    ages.add(age, worker=run.worker or "",
                             job=run.job_key[:12])
            fams.append(ages)
            oldf = Family("repro_oldest_lease_age_seconds", "gauge",
                          "Age of the oldest held lease (0 when none).")
            oldf.add(oldest)
            fams.append(oldf)

            jobs = Family("repro_jobs_total", "counter",
                          "Queue lifecycle events since start.")
            for kind in ("queued", "cache_hit", "started", "finished",
                         "retried", "failed", "cancelled"):
                jobs.add(self.events.counts.get(kind, 0), event=kind)
            fams.append(jobs)

            failures = Family("repro_failures_total", "counter",
                              "Terminally failed runs by failure class.")
            for kind, count in sorted(self.failure_kinds.items()):
                failures.add(count, kind=kind)
            fams.append(failures)

            cache = Family("repro_cache_ops_total", "counter",
                           "Result-cache operations (dedup wins, misses,"
                           " quarantined corrupt records, writes).")
            for op in ("hit", "miss", "quarantined", "put"):
                cache.add(self.cache.counters.get(op, 0), op=op)
            fams.append(cache)

            fence = Family("repro_fence_refusals_total", "counter",
                           "Zombie commits/failure reports refused by "
                           "the lease-generation fence.")
            fence.add(self.counters.get("stale_commits", 0), kind="commit")
            fence.add(self.counters.get("stale_fails", 0), kind="fail")
            fams.append(fence)

            requeues = Family("repro_requeues_total", "counter",
                              "Lease expiries and retried failures.")
            requeues.add(self.counters.get("requeues", 0))
            fams.append(requeues)

            stale = Family("repro_worker_heartbeat_staleness_seconds",
                           "gauge", "Seconds since each worker was "
                           "last heard from.")
            wjobs = Family("repro_worker_jobs_total", "counter",
                           "Commits per worker.")
            wcycles = Family("repro_worker_cycles_total", "counter",
                             "Simulated cycles committed per worker.")
            wevents = Family("repro_worker_events_total", "counter",
                             "Engine events committed per worker.")
            wcps = Family("repro_worker_cycles_per_second", "gauge",
                          "Committed cycles over busy wall-clock, "
                          "per worker.")
            weps = Family("repro_worker_events_per_second", "gauge",
                          "Committed engine events over busy "
                          "wall-clock, per worker.")
            for worker, info in sorted(self.workers.items()):
                last = info.get("last_seen")
                if last:
                    stale.add(max(0.0, now - last), worker=worker)
                wjobs.add(info.get("jobs", 0), worker=worker)
                wcycles.add(info.get("cycles", 0), worker=worker)
                wevents.add(info.get("events", 0), worker=worker)
                busy = info.get("busy_s", 0.0)
                if busy > 0:
                    wcps.add(info.get("cycles", 0) / busy, worker=worker)
                    weps.add(info.get("events", 0) / busy, worker=worker)
            fams += [stale, wjobs, wcycles, wevents, wcps, weps]

            sim = Family("repro_sim_cycles_total", "counter",
                         "Simulated cycles executed (cache hits "
                         "excluded).")
            sim.add(self.events.sim_cycles)
            fams.append(sim)

            flight = Family("repro_flight_events_total", "counter",
                            "Events recorded into the flight ring "
                            "(including since-evicted ones).")
            flight.add(self.flight.payload()["recorded"])
            fams.append(flight)

            health = Family("repro_health_state", "gauge",
                            "Service health (1 on the current state's "
                            "sample, 0 elsewhere).")
            current = self.healthz_state_unlocked()
            for state in HEALTH_STATES:
                health.add(1 if state == current else 0, state=state)
            fams.append(health)

            fsync_errs = Family("repro_io_fsync_errors_total", "counter",
                                "Failed fsyncs by layer (ioutil counts "
                                "process-wide; journal counts this "
                                "queue's journal).")
            fsync_errs.add(ioutil.FSYNC_ERRORS.value, layer="ioutil")
            fsync_errs.add(self._journal.fsync_errors, layer="journal")
            fams.append(fsync_errs)

            rejects = Family("repro_submit_rejections_total", "counter",
                             "Submissions refused by admission control, "
                             "by reason.")
            for reason in ("read_only", "backlog", "quota"):
                rejects.add(self.counters.get(f"rejected_{reason}", 0),
                            reason=reason)
            fams.append(rejects)

            degrade = Family("repro_degradation_events_total", "counter",
                             "Health-state machinery activity.")
            for kind in ("health_to_read_only", "health_recoveries",
                         "probe_failures", "journal_write_errors",
                         "dropped_events"):
                degrade.add(self.counters.get(kind, 0), kind=kind)
            fams.append(degrade)

            fams.append(histogram_family(
                "repro_journal_fsync_microseconds",
                "Journal fsync latency (the service's write-side "
                "durability floor).", self._journal.fsync_us))
            fams += self._fleet_families(now)
            return fams

    def _fleet_families(self, now: float) -> List[Family]:
        """Fleet gauges, rendered from the supervisor's published
        snapshot (``<root>/fleet/supervisor.json``) when one exists.

        The supervisor is a separate process scraping *this* service,
        so the service cannot observe it directly; the snapshot file is
        the channel. A stale snapshot (no fresh publish, or a dead
        supervisor pid) zeroes ``repro_fleet_supervisor_up`` but still
        reports the last-known shape — during a supervisor restart the
        dashboards keep their history instead of blinking to empty.
        """
        try:
            from repro.fleet.paths import (fleet_dir, pid_alive,
                                           supervisor_state_path)
            doc = ioutil.read_checked_json(
                supervisor_state_path(fleet_dir(self.root)))
        except (OSError, ValueError):
            return []
        if not isinstance(doc, dict):
            return []
        fams: List[Family] = []
        age = max(0.0, now - float(doc.get("t", 0.0) or 0.0))
        pid = int(doc.get("pid", 0) or 0)
        tick_s = float(doc.get("tick_s", 0.5) or 0.5)
        fresh = age <= max(15.0, 20.0 * tick_s) and pid_alive(pid)

        up = Family("repro_fleet_supervisor_up", "gauge",
                    "1 while the fleet supervisor is alive and "
                    "publishing fresh snapshots.")
        up.add(1 if fresh else 0)
        fams.append(up)
        snap_age = Family("repro_fleet_snapshot_age_seconds", "gauge",
                          "Age of the supervisor snapshot backing the "
                          "repro_fleet_* families.")
        snap_age.add(age)
        fams.append(snap_age)

        workers = Family("repro_fleet_workers", "gauge",
                         "Fleet pool members by state.")
        states = doc.get("states") or {}
        workers.add(int(states.get("running", 0) or 0), state="running")
        workers.add(int(states.get("draining", 0) or 0),
                    state="draining")
        workers.add(len(doc.get("quarantined") or {}),
                    state="quarantined")
        fams.append(workers)

        desired = Family("repro_fleet_desired_workers", "gauge",
                         "The pool size the supervisor is converging "
                         "to (autoscaler + operator intent).")
        desired.add(int(doc.get("desired", 0) or 0))
        fams.append(desired)

        events = Family("repro_fleet_events_total", "counter",
                        "Supervisor lifecycle events (restart budget "
                        "activity) since its journal began.")
        counters = doc.get("counters") or {}
        for kind in ("spawns", "crashes", "adoptions", "clean_exits"):
            events.add(int(counters.get(kind, 0) or 0), kind=kind)
        fams.append(events)

        breaker_doc = doc.get("breaker") or {}
        if breaker_doc:
            breaker = Family("repro_fleet_breaker_state", "gauge",
                             "Supervisor scrape-path circuit breaker "
                             "(1 on the current state's sample).")
            current = str(breaker_doc.get("state", ""))
            for state in ("closed", "open", "half_open"):
                breaker.add(1 if state == current else 0, state=state)
            fams.append(breaker)
        return fams

    def healthz_state_unlocked(self) -> str:
        """Current effective health state; caller holds the lock."""
        if self.health == HEALTH_OK and self._health_reasons():
            return HEALTH_DEGRADED
        return self.health

    def prometheus_text(self) -> str:
        return render_prometheus(self.prometheus_families())

    def stitched_trace(self, job_key: str) -> Dict[str, Any]:
        """One Perfetto document for one run: its host-domain spans
        (queue wait, leases, worker attempts) stitched with the
        cycle-domain ``trace.json`` artifact when the run produced one
        (``telemetry=True`` submissions)."""
        with self._lock:
            run = self._run(job_key)
            if not run.trace_id:
                raise UnknownJobError(
                    f"job {job_key[:12]} predates tracing (no trace id)")
            spans = self.hostspans.for_trace(run.trace_id)
        cycle_doc = None
        trace_path = os.path.join(self.artifacts_dir(job_key),
                                  "trace.json")
        if os.path.isfile(trace_path):
            try:
                with open(trace_path) as handle:
                    cycle_doc = json.load(handle)
            except (OSError, ValueError):
                cycle_doc = None
        return stitch_trace(spans, cycle_doc,
                            label=f"serve {job_key[:12]}",
                            trace_id=run.trace_id)

    # ------------------------------------------------------------ replay

    def _replay(self) -> Optional[Dict[str, int]]:
        entries = Journal.replay(journal_path(self.root))
        if not entries:
            return None
        self._replaying = True
        try:
            for entry in entries:
                self._replay_one(entry)
            # Leases open at the crash died with their workers: requeue
            # them (the next lease's generation bump fences old tokens).
            # Still under the replay flag — a replayed restart must not
            # journal or re-narrate what replay itself reconstructs.
            requeued = 0
            for run in list(self.runs.values()):
                if run.state == RUN_LEASED:
                    self._requeue(run, reason="restart")
                    requeued += 1
            # A crash between cache.put and the commit journal line
            # replays as "queued, but its record already exists":
            # finish it now.
            for run in self.runs.values():
                if run.state == RUN_QUEUED:
                    record = self.cache.get(run.job_spec())
                    if record is not None:
                        run.state = RUN_DONE
                        run.resumed_from = record.get("meta", {}).get(
                            "resumed_from")
                        self._settle_submissions(run, SUB_DONE)
        finally:
            self._replaying = False
        return {"requeued": requeued}

    def _replay_one(self, entry: Dict[str, Any]) -> None:
        op = entry.get("op")
        if op == "submit":
            sub_id = entry.get("sub", "")
            self._apply_submit(entry)
            # Keep fresh ids unique across service lives.
            try:
                self._sub_seq = max(self._sub_seq,
                                    int(sub_id.rsplit("-", 1)[-1]))
            except ValueError:  # pragma: no cover - hand-edited journal
                pass
        elif op == "lease":
            run = self.runs.get(entry.get("job_key", ""))
            if run is not None and run.state == RUN_QUEUED:
                run.state = RUN_LEASED
                run.generation = int(entry.get("gen", run.generation + 1))
                run.attempts = int(entry.get("attempt", run.attempts + 1))
                run.worker = entry.get("worker")
                run.lease_expires = float(entry.get("expires", 0.0))
        elif op == "requeue":
            run = self.runs.get(entry.get("job_key", ""))
            if run is not None and run.state == RUN_LEASED:
                run.state = RUN_QUEUED
                run.requeues += 1
                run.worker = None
        elif op == "commit":
            run = self.runs.get(entry.get("job_key", ""))
            if run is not None and run.state not in TERMINAL_RUN_STATES:
                run.state = RUN_DONE
                run.commits += 1
                run.worker = None
                run.resumed_from = entry.get("resumed_from")
                self._settle_submissions(run, SUB_DONE)
        elif op == "fail":
            run = self.runs.get(entry.get("job_key", ""))
            if run is not None and run.state not in TERMINAL_RUN_STATES:
                run.state = RUN_FAILED
                run.kind = entry.get("kind", "error")
                run.error = entry.get("error", "")
                run.worker = None
                # Keep repro_failures_total monotonic across restarts.
                self.failure_kinds[run.kind] += 1
                self._settle_submissions(run, SUB_FAILED)
        elif op == "cancel":
            sub = self.subs.get(entry.get("sub", ""))
            if sub is not None and sub.state == SUB_QUEUED:
                sub.state = SUB_CANCELLED
                self._maybe_cancel_run(self.runs.get(sub.job_key))
        elif op == "drain":
            self.draining = bool(entry.get("on", False))

    def close(self) -> None:
        self._journal.close()
        self.events.close()
        self.hostspans.close()
