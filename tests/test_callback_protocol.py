"""The callback protocol: ld_cb blocking, write variants, evictions,
held-off RMWs, and the paper's 3-message claim."""

import pytest

from repro.config import CallbackMode, WakePolicy, config_for
from repro.core.machine import Machine
from repro.protocols import ops

from tests.protocol_utils import issue, issue_pending

ADDR = 0x4000


def machine(cores=4, **overrides):
    return Machine(config_for("CB-One", num_cores=cores, **overrides))


def cb_dir(m, addr=ADDR):
    return m.protocol.cb_dirs[m.protocol.bank_of(addr)]


def entry(m, addr=ADDR):
    return cb_dir(m, addr).lookup(m.protocol.addr_map.word_base(addr))


class TestLdCb:
    def test_first_ld_cb_installs_and_consumes(self):
        m = machine()
        m.store.write(ADDR, 5)
        assert issue(m, 0, ops.LoadCB(ADDR)) == 5
        assert m.stats.cb_installs == 1
        assert m.stats.cb_immediate_reads == 1
        e = entry(m)
        assert e is not None and not e.fe_full(0)

    def test_second_ld_cb_blocks(self):
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        fut = issue_pending(m, 0, ops.LoadCB(ADDR))
        assert not fut.done
        assert m.stats.cb_blocked_reads == 1

    def test_write_after_block_wakes_with_new_value(self):
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        fut = issue_pending(m, 0, ops.LoadCB(ADDR))
        issue(m, 1, ops.StoreThrough(ADDR, 42))
        m.engine.run()
        assert fut.done and fut.value == 42
        assert m.stats.cb_wakeups == 1

    def test_write_before_read_is_consumed(self):
        """A callback can consume a write that precedes it (Section 2.1)."""
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))           # install + consume initial
        issue(m, 1, ops.StoreThrough(ADDR, 7))  # wakes nobody, fills F/E
        assert issue(m, 0, ops.LoadCB(ADDR)) == 7  # completes immediately

    def test_blocked_read_performs_no_llc_access(self):
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        before = m.stats.llc_accesses
        fut = issue_pending(m, 0, ops.LoadCB(ADDR))
        assert not fut.done
        assert m.stats.llc_accesses == before


class TestWriteVariants:
    def _park_three(self, m):
        """Install an entry, drain F/E, park cores 0..2."""
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 0))  # One mode, all F/E empty
        return [issue_pending(m, c, ops.LoadCB(ADDR)) for c in range(3)]

    def test_store_through_wakes_all(self):
        m = machine()
        futures = self._park_three(m)
        issue(m, 3, ops.StoreThrough(ADDR, 1))
        m.engine.run()
        assert all(f.done and f.value == 1 for f in futures)
        assert entry(m).mode_all is True

    def test_store_cb1_wakes_exactly_one(self):
        m = machine()
        futures = self._park_three(m)
        issue(m, 3, ops.StoreCB1(ADDR, 1))
        m.engine.run()
        assert sum(f.done for f in futures) == 1
        issue(m, 3, ops.StoreCB1(ADDR, 2))
        m.engine.run()
        assert sum(f.done for f in futures) == 2

    def test_store_cb0_wakes_nobody(self):
        m = machine()
        futures = self._park_three(m)
        issue(m, 3, ops.StoreCB0(ADDR, 1))
        m.engine.run()
        assert not any(f.done for f in futures)
        # A subsequent cbA write releases them all.
        issue(m, 3, ops.StoreThrough(ADDR, 2))
        m.engine.run()
        assert all(f.done for f in futures)

    def test_cb1_without_waiters_fills_in_unison(self):
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        issue(m, 1, ops.StoreCB1(ADDR, 9))
        e = entry(m)
        assert e.mode_all is False
        assert e.fe == e.full_mask
        # Exactly one future read consumes it...
        assert issue(m, 2, ops.LoadCB(ADDR)) == 9
        # ...and the next blocks.
        fut = issue_pending(m, 3, ops.LoadCB(ADDR))
        assert not fut.done

    def test_writes_do_not_install_entries(self):
        m = machine()
        issue(m, 0, ops.StoreThrough(ADDR, 1))
        issue(m, 0, ops.StoreCB1(ADDR, 2))
        issue(m, 0, ops.StoreCB0(ADDR, 3))
        assert entry(m) is None
        assert m.stats.cb_installs == 0

    def test_ld_through_consumes_but_does_not_install(self):
        m = machine()
        # No entry: ld_through leaves the directory empty.
        issue(m, 0, ops.LoadThrough(ADDR))
        assert entry(m) is None
        # With an entry: Table 1 says ld_through resets the F/E bit.
        issue(m, 1, ops.LoadCB(ADDR))
        issue(m, 2, ops.StoreThrough(ADDR, 5))  # F/E full for non-waiters
        issue(m, 0, ops.LoadThrough(ADDR))
        assert entry(m).fe_full(0) is False


class TestCallbackAll:
    def test_all_waiters_share_one_write(self):
        m = Machine(config_for("CB-All", num_cores=4))
        issue(m, 3, ops.LoadCB(ADDR))
        futures = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in range(3)]
        # In All mode cores 0..2 consumed their own F/E on first touch?
        # No: only core 3 installed; cores 0..2 had full bits, so they
        # consumed immediately. Issue a second round, which blocks.
        m.engine.run()
        blocked = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in range(4)]
        assert not any(f.done for f in blocked)
        issue(m, 3, ops.StoreThrough(ADDR, 8))
        m.engine.run()
        # The writer satisfies every parked callback in bulk (Figure 3).
        for f in blocked[:3]:
            assert f.done and f.value == 8


class TestEviction:
    def test_eviction_answers_waiters_with_current_value(self):
        """Section 2.3.1: replacement wakes callbacks with the old value."""
        m = machine(cb_entries_per_bank=1)
        issue(m, 0, ops.LoadCB(ADDR))
        issue(m, 0, ops.StoreCB0(ADDR, 77))  # all F/E empty, value 77
        fut = issue_pending(m, 1, ops.LoadCB(ADDR))  # parked
        assert not fut.done
        # A callback read to a different word in the same bank evicts.
        other = ADDR + m.config.line_bytes * m.config.num_banks
        assert m.protocol.bank_of(other) == m.protocol.bank_of(ADDR)
        issue(m, 2, ops.LoadCB(other))
        m.engine.run()
        assert fut.done and fut.value == 77
        assert m.stats.cb_evictions == 1
        assert m.stats.cb_eviction_wakeups == 1

    def test_reinstalled_entry_is_fresh(self):
        m = machine(cb_entries_per_bank=1)
        issue(m, 0, ops.LoadCB(ADDR))
        other = ADDR + m.config.line_bytes * m.config.num_banks
        issue(m, 2, ops.LoadCB(other))  # evicts ADDR's entry
        m.store.write(ADDR, 5)
        # Re-read: fresh entry, F/E full again (Figure 3 step 6).
        assert issue(m, 0, ops.LoadCB(ADDR)) == 5


class TestAtomicsWithCallbacks:
    def test_rmw_held_in_directory(self):
        """Section 2.6/Figure 6: a callback T&S waits for the release."""
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        issue(m, 0, ops.StoreCB0(ADDR, 1))  # lock "taken", F/E empty
        fut = issue_pending(m, 1, ops.Atomic(ADDR, ops.AtomicKind.TAS,
                                             (0, 1), ld=ops.LdKind.CB,
                                             st=ops.StKind.CB0))
        assert not fut.done  # held off in the callback directory
        issue(m, 0, ops.StoreCB1(ADDR, 0))  # release
        m.engine.run()
        assert fut.done
        assert fut.value.success is True
        assert m.store.read(ADDR) == 1  # lock re-taken by core 1

    def test_failed_rmw_wakes_nobody(self):
        """A failed T&S writes nothing, so it must not service callbacks."""
        m = machine()
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 1))  # taken
        parked = issue_pending(m, 1, ops.LoadCB(ADDR))
        # A plain-ld T&S fails (lock == 1): no write, no wakeups.
        r = issue(m, 2, ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1),
                                   st=ops.StKind.CB0))
        assert r.success is False
        assert not parked.done

    def test_successful_rmw_st_cb1_wakes_one(self):
        m = machine()
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 0))  # One mode, empty
        parked = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in (0, 1)]
        r = issue(m, 2, ops.Atomic(ADDR, ops.AtomicKind.FETCH_ADD, (1,),
                                   st=ops.StKind.CB1))
        assert r.success
        m.engine.run()
        assert sum(f.done for f in parked) == 1


class TestMessageCount:
    def test_communicating_a_value_costs_three_messages(self):
        """Section 2.1: {callback, write, data} — plus only the writer's
        own ack, which the paper's count likewise excludes."""
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))  # install + consume
        fut = issue_pending(m, 0, ops.LoadCB(ADDR))  # parked
        before = dict(m.stats.msg_kinds)
        issue(m, 1, ops.StoreThrough(ADDR, 1))
        m.engine.run()
        assert fut.done
        delta = {k: m.stats.msg_kinds[k] - before.get(k, 0)
                 for k in m.stats.msg_kinds}
        delta = {k: v for k, v in delta.items() if v}
        assert delta == {
            "StThru": 1,  # write
            "Wakeup": 1,  # data
            "Ack": 1,     # writer's own completion (excluded by the paper)
        }
        # callback (sent before the write) + write + data = 3.
        attributable = 1 + delta["StThru"] + delta["Wakeup"]
        assert attributable == 3

    def test_callback_strictly_cheaper_than_invalidation(self):
        """The end-to-end comparison behind Figure 1."""
        # Callback side: 4 wire messages total (incl. parked LdCB & ack).
        m_cb = machine()
        issue(m_cb, 0, ops.LoadCB(ADDR))
        base = m_cb.stats.messages
        fut = issue_pending(m_cb, 0, ops.LoadCB(ADDR))
        issue(m_cb, 1, ops.StoreThrough(ADDR, 1))
        m_cb.engine.run()
        assert fut.done
        cb_msgs = m_cb.stats.messages - base

        m_inv = Machine(config_for("Invalidation", num_cores=4))
        issue(m_inv, 0, ops.Load(ADDR))
        issue(m_inv, 2, ops.Load(ADDR))
        fut = issue_pending(m_inv, 0, ops.SpinUntil(ADDR, lambda v: v == 1))
        base = m_inv.stats.messages
        issue(m_inv, 1, ops.Store(ADDR, 1))
        m_inv.engine.run()
        assert fut.done
        inv_msgs = m_inv.stats.messages - base

        assert cb_msgs < inv_msgs


class TestWakePolicies:
    @pytest.mark.parametrize("policy", list(WakePolicy))
    def test_every_policy_wakes_exactly_one(self, policy):
        m = machine(cb_wake_policy=policy)
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 0))
        parked = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in range(3)]
        issue(m, 3, ops.StoreCB1(ADDR, 1))
        m.engine.run()
        assert sum(f.done for f in parked) == 1
