"""VIPS-M-style self-invalidation protocol (BackOff configurations)."""

from repro.protocols.vips.protocol import VIPSLine, VIPSProtocol

__all__ = ["VIPSLine", "VIPSProtocol"]
