"""Result post-processing: normalization, geometric means, ASCII tables.

The paper's figures are normalized bar charts; the harness reproduces
them as tables of normalized values (one row per benchmark/algorithm, one
column per configuration), printed to stdout and returned as dicts for
programmatic checks.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; zeros are clamped to a tiny epsilon (a benchmark
    with zero traffic in one config must not nuke the whole mean)."""
    values = list(values)
    if not values:
        return 0.0
    eps = 1e-12
    return math.exp(sum(math.log(max(v, eps)) for v in values) / len(values))


def normalize_to(row: Mapping[str, float], reference: str) -> Dict[str, float]:
    """Normalize a {config: value} row to ``row[reference]`` (Figure 21)."""
    ref = row[reference]
    if ref == 0:
        return {k: 0.0 for k in row}
    return {k: v / ref for k, v in row.items()}


def normalize_to_max(row: Mapping[str, float]) -> Dict[str, float]:
    """Normalize a row to its largest value (Figures 1 and 20)."""
    top = max(row.values()) if row else 0.0
    if top == 0:
        return {k: 0.0 for k in row}
    return {k: v / top for k, v in row.items()}


def format_table(title: str, columns: Sequence[str],
                 rows: Mapping[str, Mapping[str, float]],
                 precision: int = 3) -> str:
    """Render {row_label: {column: value}} as an aligned ASCII table."""
    label_width = max([len(r) for r in rows] + [len(title), 10])
    col_width = max([len(c) for c in columns] + [precision + 4])
    out: List[str] = []
    header = title.ljust(label_width) + " | " + " ".join(
        c.rjust(col_width) for c in columns
    )
    out.append(header)
    out.append("-" * len(header))
    for label, row in rows.items():
        cells = " ".join(
            f"{row.get(c, float('nan')):{col_width}.{precision}f}"
            for c in columns
        )
        out.append(label.ljust(label_width) + " | " + cells)
    return "\n".join(out)


def geomean_rows(rows: Mapping[str, Mapping[str, float]],
                 columns: Sequence[str]) -> Dict[str, float]:
    """Column-wise geometric mean over all rows (the paper's summaries)."""
    return {
        c: geomean(row[c] for row in rows.values() if c in row)
        for c in columns
    }
