"""Declarative sweep engine."""

import pytest

from repro.harness.sweeps import Sweep, rows_to_table
from repro.workloads.microbench import LockMicrobench


def make_sweep(**kwargs):
    defaults = dict(
        configs=["CB-One"],
        workload=lambda p: LockMicrobench("ttas",
                                          iterations=p.get("iters", 2)),
        metrics={"cycles": lambda r: r.cycles},
    )
    defaults.update(kwargs)
    return Sweep(**defaults)


class TestGrid:
    def test_empty_grid_is_one_point(self):
        assert make_sweep().grid() == [{}]

    def test_cartesian_product(self):
        sweep = make_sweep(overrides={"cb_entries_per_bank": [1, 4]},
                           params={"iters": [2, 3, 4]})
        grid = sweep.grid()
        assert len(grid) == 6
        assert {"cb_entries_per_bank": 1, "iters": 2} in grid

    def test_rows_cover_configs_times_points(self):
        sweep = make_sweep(configs=["Invalidation", "CB-One"],
                           params={"iters": [1, 2]})
        rows = sweep.run(num_cores=4)
        assert len(rows) == 4
        assert {row["config"] for row in rows} == {"Invalidation",
                                                   "CB-One"}

    def test_override_reaches_config(self):
        sweep = make_sweep(overrides={"cb_entries_per_bank": [1, 16]})
        rows = sweep.run(num_cores=4)
        assert len(rows) == 2
        assert all(row["cycles"] > 0 for row in rows)

    def test_metrics_computed(self):
        sweep = make_sweep(metrics={
            "cycles": lambda r: r.cycles,
            "traffic": lambda r: r.traffic,
        })
        (row,) = sweep.run(num_cores=4)
        assert row["cycles"] > 0 and row["traffic"] > 0


class TestTable:
    def test_rows_to_table(self):
        rows = [
            {"config": "CB-One", "iters": 2, "cycles": 123.0},
            {"config": "CB-One", "iters": 3, "cycles": 456.0},
        ]
        table = rows_to_table(rows, ["cycles"], title="demo")
        assert "config=CB-One, iters=2" in table
        assert "123.0" in table and "456.0" in table
