"""The observability layer: bus, metrics, sampler, spans, export, CLI.

The two load-bearing guarantees tested here:

* **Bit-identical results.** Attaching any combination of collectors —
  sampler (daemon engine events), span recorder, profiler — must leave
  cycles, every counter, and every episode latency exactly equal to an
  uninstrumented run, for every protocol family.
* **Valid traces.** Whatever the exporters emit must satisfy the Chrome
  trace-event invariants (monotonic per-track timestamps, matched B/E,
  complete X) so Perfetto actually loads it.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.config import config_for
from repro.harness.runner import run_workload
from repro.harness.sweeps import Sweep
from repro.obs import (DEFAULT_COUNTERS, HostProfiler, MetricsRegistry,
                       ProbeBus, SpanRecorder, Telemetry, TelemetryConfig,
                       TimeSeriesSampler, chrome_trace, component_label,
                       load_spans, trace_events_to_spans,
                       validate_chrome_trace)
from repro.obs.cli import main as obs_main
from repro.orchestrate.events import EventLog
from repro.orchestrate.registry import build_workload
from repro.sim.engine import Engine
from repro.sim.stats import (MAX_MERGED_FIELDS, Stats, int_field_names,
                             summed_field_names)


def run_pair(label, spec, params=None, cores=4, tconfig=None):
    """The same seeded run, bare and instrumented."""
    tconfig = tconfig or TelemetryConfig(sample_every=100, spans=True)
    bare = run_workload(config_for(label, num_cores=cores, seed=1),
                        build_workload(spec, params))
    telemetry = Telemetry(tconfig)
    instrumented = run_workload(config_for(label, num_cores=cores, seed=1),
                                build_workload(spec, params),
                                telemetry=telemetry)
    return bare, instrumented, telemetry


# ------------------------------------------------------------------ bus

class TestProbeBus:
    def test_emit_without_subscribers_is_noop(self):
        bus = ProbeBus()
        bus.emit("cb.park", core=1, word=64)
        assert bus.emitted == 0

    def test_topic_and_wildcard_delivery(self):
        bus = ProbeBus()
        got = []
        bus.subscribe("a", lambda t, c, f: got.append(("topic", t, c, f)))
        bus.subscribe("*", lambda t, c, f: got.append(("star", t, c, f)))
        bus.emit("a", _cycle=7, x=1)
        bus.emit("b", _cycle=8, y=2)
        assert got == [("topic", "a", 7, {"x": 1}),
                       ("star", "a", 7, {"x": 1}),
                       ("star", "b", 8, {"y": 2})]
        assert bus.emitted == 2

    def test_cycle_stamped_from_engine(self):
        engine = Engine()
        bus = ProbeBus(engine)
        seen = []
        bus.subscribe("t", lambda t, c, f: seen.append(c))
        engine.schedule(5, lambda: bus.emit("t"))
        engine.run()
        assert seen == [5]

    def test_unsubscribe(self):
        bus = ProbeBus()
        fn = lambda t, c, f: (_ for _ in ()).throw(AssertionError)
        bus.subscribe("x", fn)
        assert bus.active("x")
        bus.unsubscribe("x", fn)
        assert not bus.active("x")
        bus.emit("x")

    def test_every_requires_engine_and_positive_window(self):
        with pytest.raises(RuntimeError):
            ProbeBus().every(10, lambda c: None)
        with pytest.raises(ValueError):
            ProbeBus(Engine()).every(0, lambda c: None)


class TestDaemonEvents:
    """The engine semantics the sampler's bit-identity rests on."""

    def test_daemon_events_do_not_keep_run_alive(self):
        engine = Engine()
        fired = []
        engine.schedule(10, lambda: fired.append("real"))

        def tick():
            fired.append("tick")
            engine.schedule(4, tick, daemon=True)

        engine.schedule(0, tick, daemon=True)
        engine.run()
        # Ticks at 0/4/8 fire before the last real event at 10; the tick
        # scheduled for 12 never runs and never moves the clock.
        assert engine.now == 10
        assert fired == ["tick", "tick", "tick", "real"]

    def test_all_daemon_run_executes_nothing(self):
        engine = Engine()
        engine.schedule(5, lambda: None, daemon=True)
        engine.run()
        assert engine.now == 0
        assert engine.live_pending == 0


# -------------------------------------------------------------- metrics

class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", kind="load")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = registry.gauge("depth")
        gauge.set(7.0)
        assert gauge.value == 7.0
        live = registry.gauge("live", fn=lambda: 42)
        assert live.value == 42
        with pytest.raises(RuntimeError):
            live.set(1)

    def test_registry_keys_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", bank="0")
        b = registry.counter("hits", bank="1")
        assert a is not b
        assert registry.counter("hits", bank="0") is a
        with pytest.raises(TypeError):
            registry.gauge("hits", bank="0")

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (1, 2, 4, 100, 1000):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.min == 1 and histogram.max == 1000
        assert histogram.percentile(50) == 4.0   # within a power of two
        assert histogram.percentile(100) == 512.0  # 1000's bucket floor
        with pytest.raises(ValueError):
            histogram.observe(-1)

    def test_snapshot_is_jsonable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(10)
        json.dumps(registry.snapshot())
        assert len(registry) == 3


# -------------------------------------------------------------- sampler

class TestSampler:
    def test_unknown_counters_rejected(self):
        with pytest.raises(ValueError, match="unknown Stats counters"):
            TimeSeriesSampler(Stats(), 10, counters=["not_a_counter"])
        with pytest.raises(ValueError):
            TimeSeriesSampler(Stats(), 0)

    def test_all_expands_to_every_int_field(self):
        sampler = TimeSeriesSampler(Stats(), 10, counters="all")
        assert sampler.counter_names == int_field_names()

    def test_sampling_and_deltas(self):
        stats = Stats()
        sampler = TimeSeriesSampler(stats, 10, counters=["messages"],
                                    gauges={"g": lambda: 5.0})
        sampler.sample(0)
        stats.messages = 4
        sampler.sample(10)
        stats.messages = 9
        sampler.sample(20)
        assert sampler.series("cycle") == [0, 10, 20]
        assert sampler.series("messages") == [0, 4, 9]
        assert sampler.deltas("messages") == [0, 4, 5]
        assert sampler.series("g") == [5.0, 5.0, 5.0]

    def test_csv_and_json_round_trip(self):
        stats = Stats()
        sampler = TimeSeriesSampler(stats, 10, counters=["messages"])
        sampler.sample(0)
        stats.messages = 2
        sampler.sample(10)
        csv = io.StringIO()
        sampler.to_csv(csv)
        lines = csv.getvalue().splitlines()
        assert lines[0] == "cycle,messages"
        assert lines[1:] == ["0,0", "10,2"]
        blob = io.StringIO()
        sampler.to_json(blob)
        loaded = json.loads(blob.getvalue())
        assert loaded["every"] == 10
        assert loaded["columns"]["messages"] == [0, 2]


# --------------------------------------------------- bit-identical runs

@pytest.mark.parametrize("label", ["Invalidation", "BackOff-6", "CB-One"])
def test_telemetry_leaves_results_bit_identical(label):
    bare, instrumented, _ = run_pair(label, "lock",
                                     {"lock_name": "ttas", "iterations": 3})
    assert bare.stats.cycles == instrumented.stats.cycles
    assert bare.stats.counters() == instrumented.stats.counters()
    assert dict(bare.stats.msg_kinds) == dict(instrumented.stats.msg_kinds)
    assert (dict(bare.stats.episode_latencies)
            == dict(instrumented.stats.episode_latencies))


def test_profiler_leaves_results_bit_identical():
    bare, instrumented, telemetry = run_pair(
        "CB-One", "barrier", {"barrier_name": "sr"},
        tconfig=TelemetryConfig(profile=True))
    assert bare.stats.cycles == instrumented.stats.cycles
    assert bare.stats.counters() == instrumented.stats.counters()
    assert telemetry.profiler.events > 0


# ---------------------------------------------------------------- spans

@pytest.mark.parametrize("label", ["Invalidation", "CB-One"])
@pytest.mark.parametrize("spec,params,category", [
    ("lock", {"lock_name": "ttas", "iterations": 3}, "lock_acquire"),
    ("barrier", {"barrier_name": "sr", "episodes": 3}, "barrier_wait"),
    ("signal_wait", {"rounds": 3}, "wait"),
])
def test_span_recording_per_workload(label, spec, params, category):
    _, result, telemetry = run_pair(label, spec, params)
    recorder = telemetry.spans
    episodes = [s for s in recorder.spans if s.name == category]
    assert episodes, f"no {category} spans under {label}"
    assert all(s.track.startswith("thread/") for s in episodes)
    assert all(s.end is not None and s.end >= s.start for s in episodes)
    if spec == "lock":
        holds = [s for s in recorder.spans if s.name == "lock_hold"]
        assert holds and all(s.end is not None for s in holds)
    if spec == "barrier":
        marks = {i.name for i in recorder.instants}
        assert {"barrier.arrive", "barrier.leave"} <= marks
    if spec == "signal_wait":
        assert any(i.name == "signal.post" for i in recorder.instants)
    if label == "CB-One":
        # Parked cores and directory-entry lifetimes show up on the
        # core/bank track families.
        tracks = {s.track.partition("/")[0] for s in recorder.spans}
        assert "core" in tracks and "bank" in tracks
    # The whole thing exports to a valid Perfetto document.
    doc = telemetry.perfetto()
    assert validate_chrome_trace(doc) == []


def test_mesi_spin_windows_recorded():
    _, _, telemetry = run_pair("Invalidation", "lock",
                               {"lock_name": "ttas", "iterations": 3})
    spins = [s for s in telemetry.spans.spans if s.cat == "spin"]
    assert spins and all(s.track.startswith("core/") for s in spins)


class TestSpanRecorder:
    def test_begin_end_matching_by_key(self):
        recorder = SpanRecorder()
        recorder.begin("a", "c", "thread/0", 10)
        recorder.begin("a", "c", "thread/1", 11)
        recorder.end("a", "thread/0", 20)
        spans = {s.track: s for s in recorder.spans}
        assert spans["thread/0"].end == 20
        assert spans["thread/1"].end is None

    def test_self_heals_duplicate_begin(self):
        recorder = SpanRecorder()
        recorder.begin("a", "c", "thread/0", 10)
        recorder.begin("a", "c", "thread/0", 15)
        first, second = recorder.spans
        assert first.end == 15 and first.args.get("lost")
        assert second.end is None

    def test_unmatched_end_dropped(self):
        recorder = SpanRecorder()
        recorder.end("a", "thread/0", 20)
        assert recorder.spans == []

    def test_close_open_tags_truncated(self):
        recorder = SpanRecorder()
        recorder.begin("a", "c", "thread/0", 10)
        assert recorder.close_open(99) == 1
        assert recorder.spans[0].end == 99
        assert recorder.spans[0].args["truncated"] is True

    def test_jsonl_round_trip(self):
        recorder = SpanRecorder()
        recorder.complete("a", "sync", "thread/0", 1, 5, tid=0)
        recorder.begin("open", "sync", "thread/1", 2)
        recorder.instant("m", "sync", "thread/0", 3)
        blob = io.StringIO()
        recorder.to_jsonl(blob)
        blob.seek(0)
        loaded = load_spans(blob)
        assert [s.as_dict() for s in loaded.spans] == \
               [s.as_dict() for s in recorder.spans]
        assert [i.as_dict() for i in loaded.instants] == \
               [i.as_dict() for i in recorder.instants]


# --------------------------------------------------------------- export

class TestChromeTrace:
    def test_open_span_becomes_unclosed_b(self):
        recorder = SpanRecorder()
        recorder.begin("open", "sync", "thread/0", 2)
        doc = chrome_trace(spans=recorder.spans)
        assert any(e["ph"] == "B" for e in doc["traceEvents"])
        problems = validate_chrome_trace(doc)
        assert any("unclosed B" in p for p in problems)

    def test_counter_series_become_counter_events(self):
        doc = chrome_trace(series={"cycle": [0, 10], "messages": [1, 2]})
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["value"]) for e in counters] == \
               [(0, 1), (10, 2)]

    def test_track_metadata_names_tracks(self):
        recorder = SpanRecorder()
        recorder.complete("a", "sync", "thread/3", 0, 1)
        doc = chrome_trace(spans=recorder.spans)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {"process_name", "thread_name"} == {e["name"] for e in meta}

    def test_validator_catches_bad_traces(self):
        assert validate_chrome_trace({}) != []
        bad_ts = {"traceEvents": [
            {"name": "a", "ph": "i", "ts": 5, "pid": 1, "tid": 0},
            {"name": "b", "ph": "i", "ts": 3, "pid": 1, "tid": 0},
        ]}
        assert any("ts 3 < previous" in p
                   for p in validate_chrome_trace(bad_ts))
        bad_x = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("without dur" in p for p in validate_chrome_trace(bad_x))
        no_b = {"traceEvents": [
            {"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("E without open B" in p
                   for p in validate_chrome_trace(no_b))

    def test_trace_recorder_round_trip(self, tmp_path):
        """repro.trace JSONL -> instants -> valid Perfetto document."""
        from repro.core.machine import Machine
        from repro.trace.recorder import TraceRecorder, load_trace
        config = config_for("CB-One", num_cores=4, seed=1)
        machine = Machine(config)
        path = tmp_path / "ops.jsonl"
        with open(path, "w") as sink:
            recorder = TraceRecorder(machine, stream=sink)
            build_workload("lock", {"lock_name": "tas",
                                    "iterations": 2}).install(machine)
            machine.run()
            events = recorder.detach()
        with open(path) as handle:
            reloaded = load_trace(handle)
        assert [e.time for e in reloaded] == [e.time for e in events]
        instants = trace_events_to_spans(reloaded)
        assert len(instants) == len(events)
        assert {"racy", "op"} >= {i.cat for i in instants}
        doc = chrome_trace(instants=instants)
        assert validate_chrome_trace(doc) == []


# ------------------------------------------------------------- profiler

class TestProfiler:
    def test_attribution(self):
        engine = Engine()
        profiler = HostProfiler()
        profiler.attach(engine)

        def busy():
            sum(range(500))

        for delay in (1, 2, 3):
            engine.schedule(delay, busy)
        engine.run()
        profiler.detach()
        rows = profiler.by_component()
        assert profiler.events == 3
        assert rows[0][1] == 3 and rows[0][2] > 0
        assert "test_obs" in rows[0][0]
        # Nested functions are trimmed at .<locals>, so the report names
        # the enclosing method rather than `busy` itself.
        assert "test_attribution" in profiler.report()

    def test_double_attach_rejected(self):
        engine = Engine()
        HostProfiler().attach(engine)
        with pytest.raises(RuntimeError):
            HostProfiler().attach(engine)

    def test_component_label_trims_locals(self):
        def outer():
            return lambda: None
        label = component_label(outer())
        assert label.endswith(":TestProfiler."
                              "test_component_label_trims_locals")
        assert ".<locals>" not in label


# ------------------------------------------------------ stats satellites

class TestStatsMerge:
    def test_every_int_field_is_merged(self):
        """Regression for the old hand-maintained merge list: a counter
        can no longer be silently dropped from suite aggregation."""
        a, b = Stats(), Stats()
        for index, name in enumerate(int_field_names()):
            setattr(a, name, index + 1)
            setattr(b, name, 100 + index)
        a.merge(b)
        for index, name in enumerate(int_field_names()):
            if name in MAX_MERGED_FIELDS:
                assert getattr(a, name) == 100 + index, name
            else:
                assert getattr(a, name) == 101 + 2 * index, name

    def test_max_merged_fields(self):
        assert set(MAX_MERGED_FIELDS) <= set(int_field_names())
        assert "cb_max_active_entries" in MAX_MERGED_FIELDS
        assert "cycles" in summed_field_names()

    def test_episode_summary_matches_percentiles(self):
        stats = Stats()
        samples = [5, 1, 9, 3, 7, 100, 2]
        for sample in samples:
            stats.record_episode("lock_acquire", sample)
        summary = stats.episode_summary("lock_acquire")
        assert summary["n"] == len(samples)
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(sum(samples) / len(samples))
        for pct in (50, 95, 99):
            assert summary[f"p{pct}"] == stats.episode_percentile(
                "lock_acquire", pct)


# ------------------------------------------------------------- event log

class TestEventLog:
    def test_single_sink_handle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink_path=str(path))
        for index in range(5):
            log.record("queued", f"job{index}")
        log.flush()
        assert len(path.read_text().splitlines()) == 5
        log.close()
        log.close()  # idempotent
        assert log._sink is None

    def test_bus_mirroring(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("orchestrate.finished", lambda t, c, f: seen.append(f))
        log = EventLog(bus=bus)
        log.record("finished", "k1", "label", cycles=42)
        assert seen == [{"job_key": "k1", "label": "label", "cycles": 42}]


# ----------------------------------------------------------------- sweeps

class TestSweepTelemetry:
    def test_persists_traces_next_to_results(self, tmp_path):
        sweep = Sweep(configs=["CB-One"], workload_spec="lock",
                      spec_params={"lock_name": "tas", "iterations": 2},
                      metrics={"cycles": lambda r: r.cycles},
                      overrides={"cb_entries_per_bank": [2, 4]})
        rows = sweep.run(seed=1, num_cores=4,
                         telemetry=TelemetryConfig(sample_every=100,
                                                   spans=True),
                         telemetry_dir=str(tmp_path))
        assert len(rows) == 2
        for row in rows:
            trace = row["telemetry"]["trace"]
            with open(trace) as handle:
                assert validate_chrome_trace(json.load(handle)) == []
            with open(row["telemetry"]["series"]) as handle:
                series = json.load(handle)
            assert series["every"] == 100
            assert "cycle" in series["columns"]

    def test_parallel_telemetry_rejected(self):
        sweep = Sweep(configs=["CB-One"], workload_spec="lock",
                      metrics={})
        with pytest.raises(ValueError, match="serial-only"):
            sweep.run(jobs=2, telemetry=TelemetryConfig(spans=True))


# -------------------------------------------------------------------- CLI

class TestCLI:
    ARGS = ["--cores", "4", "--param", "iterations=2"]

    def test_sample(self, tmp_path, capsys):
        out = tmp_path / "series.csv"
        assert obs_main(["sample", "--workload", "lock:tas", "--config",
                         "CB-One", "--every", "100", "--out", str(out)]
                        + self.ARGS) == 0
        header = out.read_text().splitlines()[0].split(",")
        assert header[0] == "cycle"
        assert set(DEFAULT_COUNTERS) <= set(header)
        assert "cores_parked" in header

    def test_spans_and_convert(self, tmp_path, capsys):
        jsonl = tmp_path / "spans.jsonl"
        assert obs_main(["spans", "--workload", "signal_wait", "--config",
                         "CB-One", "--jsonl", str(jsonl), "--cores", "4",
                         "--param", "rounds=2"]) == 0
        assert "sync" in capsys.readouterr().out
        out = tmp_path / "trace.json"
        assert obs_main(["export", "--from-spans", str(jsonl), "--out",
                         str(out)]) == 0
        with open(out) as handle:
            assert validate_chrome_trace(json.load(handle)) == []

    @pytest.mark.parametrize("config", ["Invalidation", "CB-One"])
    def test_export_workloads(self, tmp_path, config):
        for spec, extra in (("lock:ttas", self.ARGS),
                            ("barrier:sr", ["--cores", "4", "--param",
                                            "episodes=2"]),
                            ("signal_wait", ["--cores", "4", "--param",
                                             "rounds=2"])):
            out = tmp_path / f"{spec.replace(':', '_')}_{config}.json"
            assert obs_main(["export", "--workload", spec, "--config",
                             config, "--out", str(out)] + extra) == 0
            with open(out) as handle:
                doc = json.load(handle)
            assert validate_chrome_trace(doc) == []
            assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_profile(self, tmp_path, capsys):
        blob = tmp_path / "profile.json"
        assert obs_main(["profile", "--workload", "lock:tas", "--config",
                         "CB-One", "--json", str(blob)] + self.ARGS) == 0
        assert "component" in capsys.readouterr().out
        with open(blob) as handle:
            profile = json.load(handle)
        assert profile and all("seconds" in v for v in profile.values())

    def test_export_rejects_conflicting_sources(self, tmp_path):
        with pytest.raises(SystemExit):
            obs_main(["export", "--workload", "lock", "--from-spans", "x",
                      "--out", str(tmp_path / "t.json")])


# ------------------------------------------------------------- telemetry

class TestTelemetry:
    def test_attach_once(self):
        from repro.core.machine import Machine
        config = config_for("CB-One", num_cores=4)
        telemetry = Telemetry(TelemetryConfig(spans=True))
        Machine(config, telemetry=telemetry)
        with pytest.raises(RuntimeError, match="already attached"):
            Machine(config, telemetry=telemetry)

    def test_summary_shape(self):
        _, _, telemetry = run_pair("CB-One", "lock",
                                   {"lock_name": "tas", "iterations": 2})
        summary = telemetry.summary()
        assert summary["probes_emitted"] > 0
        assert summary["samples"] == len(
            telemetry.sampler.columns["cycle"])
        assert summary["spans"] == len(telemetry.spans.spans)
        assert any(m["name"] == "episode_cycles"
                   for m in summary["metrics"])
        json.dumps(summary)

    def test_gauge_columns_present(self):
        _, _, telemetry = run_pair("CB-One", "lock",
                                   {"lock_name": "tas", "iterations": 2})
        columns = telemetry.sampler.columns
        for name in ("cores_parked", "flits_in_flight",
                     "cb_active_entries"):
            assert name in columns
        assert any(name.startswith("cb_active[") for name in columns)

    def test_config_round_trip(self):
        config = TelemetryConfig(sample_every=50, counters=["messages"],
                                 spans=True, profile=True)
        assert TelemetryConfig.from_dict(config.to_dict()) == config
        assert not TelemetryConfig().enabled
        assert TelemetryConfig(sample_every=1).enabled
