"""Extension experiments beyond the paper's figures.

* :func:`scaling` — how the callback advantage evolves with core count
  (the paper evaluates 64 cores only; this sweeps 4..64).
* :func:`power_saving` — quantifies Section 2.1's future-work claim that
  callback-parked cores can sleep (thrifty-barrier style).
* :func:`link_contention` — re-runs a hot-spot workload with the optional
  per-link occupancy model to show queuing amplifies the LLC-spinning
  penalty.

:func:`scaling` and :func:`backoff_tuning` submit their grids through
:mod:`repro.orchestrate` — pass ``jobs=N`` to simulate N grid points
concurrently and ``cache_dir=`` to reuse results across runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import config_for
from repro.energy.power import core_power_report
from repro.harness.reporting import format_table
from repro.harness.runner import run_config, run_workload
from repro.workloads.microbench import BarrierMicrobench, LockMicrobench


def scaling(core_counts: Sequence[int] = (4, 16, 36, 64),
            app: str = "fluidanimate", scale: float = 0.5,
            configs: Sequence[str] = ("Invalidation", "BackOff-10",
                                      "CB-One"),
            verbose: bool = True, jobs: int = 1,
            cache_dir: Optional[str] = None,
            ) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Traffic/time per core count; callbacks should win more as the
    machine grows (more spinners per value, longer mesh routes).

    The (core count x config) grid is submitted as one orchestrator
    batch: ``jobs`` simulations run concurrently and ``cache_dir``
    makes re-runs incremental. Results are identical at any ``jobs``.
    """
    from repro.orchestrate import JobSpec, run_batch
    grid = [(cores, label) for cores in core_counts for label in configs]
    specs = [
        JobSpec(config_label=label, workload="app",
                workload_params={"name": app, "scale": scale},
                config_overrides={"num_cores": cores})
        for cores, label in grid
    ]
    batch = run_batch(specs, jobs=jobs, cache_dir=cache_dir)
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for (cores, label), job in zip(grid, batch.results):
        result = job.result()
        out.setdefault(cores, {})[label] = {
            "cycles": float(result.cycles),
            "traffic": float(result.traffic),
        }
    if verbose:
        for metric in ("cycles", "traffic"):
            rows = {
                str(cores): {label: vals[label][metric]
                             for label in configs}
                for cores, vals in out.items()
            }
            print(format_table(f"scaling {metric} ({app})", list(configs),
                               rows, precision=0))
            print()
    return out


def power_saving(num_cores: int = 64, episodes: int = 6,
                 skew_cycles: int = 2000,
                 configs: Sequence[str] = ("Invalidation", "BackOff-10",
                                           "CB-All"),
                 verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """Sleepable core-cycles per technique on a skewed barrier workload."""
    rows: Dict[str, Dict[str, float]] = {}
    for label in configs:
        workload = BarrierMicrobench("sr", episodes=episodes,
                                     skew_cycles=skew_cycles)
        result = run_config(label, workload, num_cores=num_cores)
        cfg = config_for(label, num_cores=num_cores)
        report = core_power_report(result.stats, cfg)
        rows[label] = {
            "sleepable_frac": report.sleepable_fraction,
            "core_energy_saving": report.saving_fraction,
            "cycles": float(result.cycles),
        }
    if verbose:
        print(format_table("power saving",
                           ["sleepable_frac", "core_energy_saving",
                            "cycles"], rows))
        print()
    return rows


def backoff_tuning(num_cores: int = 64, iterations: int = 6,
                   bases: Sequence[int] = (1, 2, 4, 8),
                   limits: Sequence[int] = (0, 5, 10, 15),
                   verbose: bool = True, jobs: int = 1,
                   cache_dir: Optional[str] = None,
                   ) -> Dict[str, Dict[str, float]]:
    """The paper's "no best back-off" claim, as an experiment.

    Sweeps the back-off base and exponentiation limit over a contended
    lock workload and reports time and traffic per tuning, plus the
    untuned callback system. Section 1: "there is no 'best' back-off for
    both time and traffic because it is always a trade-off" — the
    callback row should not be dominated by any tuning.

    The whole (base x limit) grid plus the callback baseline goes
    through the orchestrator as one batch (``jobs`` concurrent
    simulations, cached under ``cache_dir`` when given).
    """
    from repro.orchestrate import JobSpec, run_batch
    lock_params = {"lock_name": "ttas", "iterations": iterations}
    names = [f"base={base},limit={limit}"
             for base in bases for limit in limits]
    specs = [
        JobSpec(config_label=f"BackOff-{limit}", workload="lock",
                workload_params=lock_params,
                config_overrides={"num_cores": num_cores,
                                  "backoff_base": base})
        for base in bases for limit in limits
    ]
    names.append("CB-One (untuned)")
    specs.append(JobSpec(config_label="CB-One", workload="lock",
                         workload_params=lock_params,
                         config_overrides={"num_cores": num_cores}))
    batch = run_batch(specs, jobs=jobs, cache_dir=cache_dir)
    rows: Dict[str, Dict[str, float]] = {}
    for name, job in zip(names, batch.results):
        result = job.result()
        rows[name] = {
            "cycles": float(result.cycles),
            "traffic": float(result.traffic),
        }
    if verbose:
        print(format_table("back-off tuning", ["cycles", "traffic"], rows,
                           precision=0))
        print()
    return rows


def link_contention(num_cores: int = 64, iterations: int = 6,
                    configs: Sequence[str] = ("BackOff-0", "CB-One"),
                    verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """Hot-bank lock storm with and without link-occupancy modelling."""
    rows: Dict[str, Dict[str, float]] = {}
    for label in configs:
        for contention in (False, True):
            workload = LockMicrobench("ttas", iterations=iterations)
            result = run_workload(
                config_for(label, num_cores=num_cores,
                           model_link_contention=contention),
                workload,
            )
            key = f"{label}{'/link-contention' if contention else ''}"
            rows[key] = {
                "cycles": float(result.cycles),
                "acquire_latency": result.episode_mean("lock_acquire"),
            }
    if verbose:
        print(format_table("link contention",
                           ["cycles", "acquire_latency"], rows,
                           precision=0))
        print()
    return rows
