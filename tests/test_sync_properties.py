"""Property-based synchronization tests: randomized schedules must never
break mutual exclusion, barrier epochs, or forward progress."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.hb import RaceMonitor
from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols.ops import Compute
from repro.sync import make_barrier, make_lock, style_for

LABELS = ("Invalidation", "BackOff-0", "CB-All", "CB-One")


def _assert_race_free(report):
    """The encoding's issued ops must be race-free modulo annotation;
    failures print the happens-before witness."""
    assert not report.errors(), "\n".join(
        f"{finding.brief()}\n  witness: {finding.witness}"
        for finding in report.errors())


@settings(max_examples=20, deadline=None)
@given(
    label=st.sampled_from(LABELS),
    lock_name=st.sampled_from(["tas", "ttas", "clh"]),
    threads=st.sampled_from([1, 4]),
    iterations=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_lock_counter_never_loses_updates(label, lock_name, threads,
                                          iterations, seed):
    cfg = config_for(label, num_cores=max(threads, 4), seed=seed)
    machine = Machine(cfg)
    lock = make_lock(lock_name, style_for(cfg))
    lock.setup(machine.layout, threads)
    for addr, value in lock.initial_values().items():
        machine.store.write(addr, value)
    counter = machine.layout.alloc_sync_word()

    def body(ctx):
        for _ in range(iterations):
            yield Compute(1 + ctx.rng.randrange(30))
            yield from lock.acquire(ctx)
            value = machine.store.read(counter)
            yield Compute(1 + ctx.rng.randrange(8))
            machine.store.write(counter, value + 1)
            yield from lock.release(ctx)

    monitor = RaceMonitor(machine)
    machine.spawn([body] * threads)
    machine.run()
    assert machine.store.read(counter) == threads * iterations
    _assert_race_free(monitor.finish())


@settings(max_examples=15, deadline=None)
@given(
    label=st.sampled_from(LABELS),
    barrier_name=st.sampled_from(["sr", "treesr"]),
    episodes=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_barrier_epochs_never_violated(label, barrier_name, episodes, seed):
    threads = 4
    cfg = config_for(label, num_cores=threads, seed=seed)
    machine = Machine(cfg)
    style = style_for(cfg)
    if barrier_name == "sr":
        barrier = make_barrier("sr", style, threads,
                               lock=make_lock("ttas", style))
    else:
        barrier = make_barrier(barrier_name, style, threads)
    barrier.setup(machine.layout, threads)
    for addr, value in barrier.initial_values().items():
        machine.store.write(addr, value)
    arrived = [0] * episodes
    ok = []

    def body(ctx):
        for k in range(episodes):
            yield Compute(1 + ctx.rng.randrange(100))
            arrived[k] += 1
            yield from barrier.wait(ctx)
            ok.append(arrived[k] == threads)

    monitor = RaceMonitor(machine)
    machine.spawn([body] * threads)
    machine.run()
    assert all(ok)
    _assert_race_free(monitor.finish())


@settings(max_examples=15, deadline=None)
@given(
    entries=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_tiny_callback_directory_never_deadlocks(entries, seed):
    """Directory pressure (more hot words than entries) must degrade
    gracefully via eviction wakeups, never deadlock."""
    threads = 4
    cfg = config_for("CB-One", num_cores=threads, seed=seed,
                     cb_entries_per_bank=entries)
    machine = Machine(cfg)
    style = style_for(cfg)
    locks = [make_lock("ttas", style) for _ in range(6)]
    for lock in locks:
        lock.setup(machine.layout, threads)
        for addr, value in lock.initial_values().items():
            machine.store.write(addr, value)
    counter = machine.layout.alloc_sync_word()

    def body(ctx):
        for _ in range(3):
            lock = locks[ctx.rng.randrange(len(locks))]
            yield from lock.acquire(ctx)
            machine.store.write(counter, machine.store.read(counter) + 1)
            yield Compute(5)
            yield from lock.release(ctx)

    monitor = RaceMonitor(machine)
    machine.spawn([body] * threads)
    machine.run()  # raises DeadlockError on a lost wakeup
    assert machine.store.read(counter) == threads * 3
    _assert_race_free(monitor.finish())
