"""Declarative parameter sweeps.

A :class:`Sweep` maps a cartesian grid of (configuration label x config
overrides x workload parameters) onto simulations, collecting any set of
metrics. The per-figure experiments hand-roll their loops for clarity;
this engine serves ad-hoc exploration and the extension benches::

    sweep = Sweep(
        configs=["Invalidation", "CB-One"],
        overrides={"cb_entries_per_bank": [1, 4, 16]},
        workload=lambda p: LockMicrobench("ttas", iterations=4),
        metrics={"cycles": lambda r: r.cycles,
                 "traffic": lambda r: r.traffic},
    )
    table = sweep.run(num_cores=16)

``table`` is a list of row dicts (one per grid point) ready for
``rows_to_table`` or JSON export.

Sweeps come in two flavours:

* **factory sweeps** (``workload=`` a closure, as above) run serially
  in-process — closures cannot cross process boundaries;
* **declarative sweeps** (``workload_spec=`` a registry name from
  :mod:`repro.orchestrate.registry`, plus static ``spec_params``) can
  additionally run through the orchestrator: ``run(jobs=4)`` simulates
  four grid points at a time, and ``run(cache_dir=...)`` makes re-runs
  incremental. Parallel results are bit-identical to serial ones — each
  grid point is an independent, seeded simulation, and rows always come
  back in grid order.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.config import config_for
from repro.harness.reporting import format_table
from repro.harness.runner import RunResult, run_workload
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.workloads.base import Workload

Metric = Callable[[RunResult], float]
WorkloadFactory = Callable[[Mapping[str, Any]], Workload]


@dataclass
class Sweep:
    """A cartesian sweep specification."""

    configs: Sequence[str]
    #: Factory closure (serial-only). Mutually exclusive with
    #: ``workload_spec``.
    workload: Optional[WorkloadFactory] = None
    metrics: Dict[str, Metric] = field(default_factory=dict)
    #: {config_field: [values...]} — swept as a cartesian product.
    overrides: Dict[str, Sequence[Any]] = field(default_factory=dict)
    #: {workload_param: [values...]} — passed to the workload factory.
    params: Dict[str, Sequence[Any]] = field(default_factory=dict)
    #: Registry workload spec name (orchestrator-capable alternative to
    #: ``workload``); swept ``params`` become workload params.
    workload_spec: Optional[str] = None
    #: Static workload params merged under each grid point's ``params``.
    spec_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.workload is None) == (self.workload_spec is None):
            raise ValueError(
                "pass exactly one of workload= (factory closure) or "
                "workload_spec= (registry name)")

    def grid(self) -> List[Dict[str, Any]]:
        """All grid points as {field: value} dicts (excluding config)."""
        overlap = sorted(set(self.overrides) & set(self.params))
        if overlap:
            raise ValueError(
                f"sweep key(s) {overlap} appear in both overrides and "
                "params; rename one — a single grid value cannot feed "
                "both the config and the workload")
        axes: Dict[str, Sequence[Any]] = {**self.overrides, **self.params}
        if not axes:
            return [{}]
        return [dict(zip(axes, combo))
                for combo in itertools.product(*axes.values())]

    def _build_workload(self, params: Mapping[str, Any]) -> Workload:
        if self.workload is not None:
            return self.workload(params)
        from repro.orchestrate.registry import build_workload
        return build_workload(self.workload_spec,
                              {**self.spec_params, **params})

    def run(self, seed: Optional[int] = None, jobs: int = 1,
            cache_dir: Optional[str] = None,
            telemetry: Optional[TelemetryConfig] = None,
            telemetry_dir: Optional[str] = None,
            audit_every: int = 0,
            checkpoint_every: int = 0,
            checkpoint_dir: Optional[str] = None,
            **base_overrides: Any) -> List[Dict[str, Any]]:
        """Execute the sweep; returns one row dict per (config, point).

        ``seed`` sets :attr:`SystemConfig.seed` for every run and is
        included in each result row. ``jobs``/``cache_dir`` route the
        sweep through :mod:`repro.orchestrate` (declarative sweeps
        only): ``jobs`` simulations run concurrently and results are
        cached/reused under ``cache_dir``.

        ``telemetry`` (a :class:`~repro.obs.telemetry.TelemetryConfig`)
        instruments every grid point; with ``telemetry_dir`` each
        point's Perfetto trace and sampled series are written next to
        the results (``<label>__<point>.trace.json`` / ``.series.json``)
        and the row gains a ``telemetry`` key pointing at them.
        Telemetry collectors live in the simulating process, so
        telemetered sweeps are serial-only.

        ``audit_every=N`` runs the :mod:`repro.validation.checker`
        auditors as a periodic daemon inside every simulation (an
        :class:`~repro.validation.checker.InvariantViolation` fails that
        grid point's run). Auditors live in the simulating process, so
        audited sweeps are serial-only too.

        ``checkpoint_every=N`` with ``checkpoint_dir=`` makes every grid
        point durable (:mod:`repro.ckpt`): points checkpoint as they
        simulate, and an interrupted sweep resumes each point from its
        newest valid checkpoint. Checkpoints need each point's
        declarative replay recipe, so this routes through the
        orchestrator and requires ``workload_spec=``.
        """
        plan = []   # (point, config_overrides, workload_params, label)
        for point in self.grid():
            config_overrides = {k: v for k, v in point.items()
                                if k in self.overrides}
            workload_params = {k: v for k, v in point.items()
                               if k in self.params}
            for label in self.configs:
                plan.append((point, config_overrides, workload_params,
                             label))

        seed_overrides = {} if seed is None else {"seed": seed}
        checkpointing = bool(checkpoint_every and checkpoint_dir)
        orchestrated = jobs > 1 or cache_dir is not None or checkpointing
        if telemetry is not None and telemetry.enabled and orchestrated:
            raise ValueError(
                "telemetry= sweeps are serial-only: collectors live in "
                "the simulating process, so drop jobs=/cache_dir=/"
                "checkpoint_dir=")
        if audit_every and orchestrated:
            raise ValueError(
                "audit_every= sweeps are serial-only: auditors live in "
                "the simulating process, so drop jobs=/cache_dir=/"
                "checkpoint_dir=")
        if orchestrated:
            if self.workload_spec is None:
                raise ValueError(
                    "parallel/cached/checkpointed sweeps need "
                    "workload_spec= — factory closures cannot cross "
                    "process boundaries (and checkpoints need a "
                    "declarative replay recipe)")
            from repro.orchestrate import JobSpec, run_batch
            specs = [
                JobSpec(config_label=label, workload=self.workload_spec,
                        workload_params={**self.spec_params,
                                         **workload_params},
                        config_overrides={**base_overrides,
                                          **config_overrides},
                        seed=seed if seed is not None else 1)
                for (point, config_overrides, workload_params, label)
                in plan
            ]
            batch = run_batch(specs, jobs=jobs, cache_dir=cache_dir,
                              checkpoint_dir=checkpoint_dir,
                              checkpoint_every=checkpoint_every)
            results = [job.result() for job in batch.results]
        else:
            results = []
            for point, config_overrides, workload_params, label in plan:
                config = config_for(label, **base_overrides,
                                    **config_overrides, **seed_overrides)
                run_telemetry = (Telemetry(telemetry)
                                 if telemetry is not None
                                 and telemetry.enabled else None)
                results.append(run_workload(
                    config, self._build_workload(workload_params),
                    telemetry=run_telemetry, audit_every=audit_every))

        rows: List[Dict[str, Any]] = []
        for (point, _, _, label), result in zip(plan, results):
            row: Dict[str, Any] = {"config": label, **point}
            if seed is not None:
                row["seed"] = seed
            for name, metric in self.metrics.items():
                row[name] = metric(result)
            run_telemetry = getattr(result, "telemetry", None)
            if run_telemetry is not None and telemetry_dir is not None:
                row["telemetry"] = _persist_telemetry(
                    telemetry_dir, label, point, run_telemetry)
            rows.append(row)
        return rows


def _point_slug(label: str, point: Mapping[str, Any]) -> str:
    parts = [label] + [f"{k}={point[k]}" for k in sorted(point)]
    slug = "__".join(parts)
    return "".join(c if c.isalnum() or c in "=_.-" else "-" for c in slug)


def _persist_telemetry(directory: str, label: str, point: Mapping[str, Any],
                       telemetry: Telemetry) -> Dict[str, str]:
    """Write one grid point's trace/series next to the sweep results."""
    os.makedirs(directory, exist_ok=True)
    slug = _point_slug(label, point)
    written: Dict[str, str] = {}
    if telemetry.spans is not None or telemetry.sampler is not None:
        trace_path = os.path.join(directory, f"{slug}.trace.json")
        telemetry.write_perfetto(trace_path, label=slug)
        written["trace"] = trace_path
    if telemetry.sampler is not None:
        series_path = os.path.join(directory, f"{slug}.series.json")
        with open(series_path, "w") as handle:
            telemetry.sampler.to_json(handle)
        written["series"] = series_path
    return written


def rows_to_table(rows: Sequence[Mapping[str, Any]],
                  metrics: Sequence[str], title: str = "sweep") -> str:
    """Render sweep rows as an aligned table (one line per grid point)."""
    formatted: Dict[str, Dict[str, float]] = {}
    for row in rows:
        label = ", ".join(
            f"{k}={v}" for k, v in row.items() if k not in metrics
        )
        formatted[label] = {m: float(row[m]) for m in metrics}
    return format_table(title, list(metrics), formatted, precision=1)
