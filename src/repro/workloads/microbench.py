"""Synchronization microbenchmarks (Figures 1 and 20).

These isolate one synchronization construct at a time:

* :class:`LockMicrobench` — every thread repeatedly acquires/releases one
  highly-contended lock around a short critical section (the paper's
  T&T&S- and CLH-acquire columns);
* :class:`BarrierMicrobench` — repeated barrier episodes with a small
  randomized compute skew between them (SR and TreeSR columns);
* :class:`SignalWaitMicrobench` — producer threads post signals consumed
  by spin-waiting consumer threads (the "wait" column).

Episode latencies land in ``stats.episode_latencies`` under
``lock_acquire`` / ``barrier_wait`` / ``wait``; LLC synchronization
accesses land in ``stats.llc_sync_accesses``.
"""

from __future__ import annotations

from typing import List

from repro.core.machine import Machine, ThreadBody
from repro.protocols.ops import Compute
from repro.sync import make_lock, make_signal_wait, sync_kit, style_for
from repro.sync.registry import make_barrier
from repro.workloads.base import Workload


class LockMicrobench(Workload):
    """All threads hammer one lock: acquire, short CS, release, pause."""

    def __init__(self, lock_name: str, iterations: int = 10,
                 cs_cycles: int = 20, outside_cycles: int = 60) -> None:
        self.name = f"ubench_lock_{lock_name}"
        self.lock_name = lock_name
        self.iterations = iterations
        self.cs_cycles = cs_cycles
        self.outside_cycles = outside_cycles

    def build(self, machine: Machine) -> List[ThreadBody]:
        style = style_for(machine.config)
        lock = make_lock(self.lock_name, style)
        lock.setup(machine.layout, machine.config.num_threads)
        self.seed_values(machine, lock.initial_values())
        counter = machine.layout.alloc_sync_word()
        self.counter_addr = counter

        def body(ctx):
            for _ in range(self.iterations):
                yield Compute(1 + ctx.rng.randrange(self.outside_cycles))
                yield from lock.acquire(ctx)
                # Critical section: bump a plain shared counter (checked by
                # the integration tests for mutual exclusion).
                value = machine.store.read(counter)
                yield Compute(self.cs_cycles)
                machine.store.write(counter, value + 1)
                yield from lock.release(ctx)

        return [body] * machine.config.num_threads

    def expected_count(self, num_threads: int) -> int:
        return num_threads * self.iterations


class BarrierMicrobench(Workload):
    """Repeated barrier episodes with randomized arrival skew."""

    def __init__(self, barrier_name: str, episodes: int = 8,
                 skew_cycles: int = 100, lock_name: str = "ttas") -> None:
        self.name = f"ubench_barrier_{barrier_name}"
        self.barrier_name = barrier_name
        self.lock_name = lock_name
        self.episodes = episodes
        self.skew_cycles = skew_cycles

    def build(self, machine: Machine) -> List[ThreadBody]:
        style = style_for(machine.config)
        n = machine.config.num_threads
        if self.barrier_name == "sr":
            barrier = make_barrier("sr", style, n,
                                   lock=make_lock(self.lock_name, style))
        else:
            barrier = make_barrier(self.barrier_name, style, n)
        barrier.setup(machine.layout, n)
        self.seed_values(machine, barrier.initial_values())

        def body(ctx):
            for _ in range(self.episodes):
                yield Compute(1 + ctx.rng.randrange(self.skew_cycles))
                yield from barrier.wait(ctx)

        return [body] * n


class SignalWaitMicrobench(Workload):
    """One bursty producer, N-1 spin-waiting consumers.

    Each round the producer pauses for ``gap_cycles`` and then posts one
    signal per consumer; every consumer waits once per round. The pause
    guarantees the waits genuinely block — Figure 20 measures the *spin*
    side of signal/wait, so an always-satisfied wait would show nothing.
    """

    def __init__(self, rounds: int = 8, gap_cycles: int = 600) -> None:
        self.name = "ubench_signal_wait"
        self.rounds = rounds
        self.gap_cycles = gap_cycles

    def build(self, machine: Machine) -> List[ThreadBody]:
        style = style_for(machine.config)
        n = machine.config.num_threads
        if n < 2:
            raise ValueError("signal/wait needs at least two threads")
        sw = make_signal_wait(style)
        sw.setup(machine.layout, n)
        self.seed_values(machine, sw.initial_values())
        consumers = n - 1

        def producer(ctx):
            for _round in range(self.rounds):
                yield Compute(self.gap_cycles
                              + ctx.rng.randrange(self.gap_cycles // 4))
                for _ in range(consumers):
                    yield from sw.signal(ctx)

        def consumer(ctx):
            for _round in range(self.rounds):
                yield from sw.wait(ctx)
                yield Compute(1 + ctx.rng.randrange(20))

        return [producer] + [consumer] * consumers
