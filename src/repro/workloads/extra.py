"""Additional application-shaped workloads beyond the 19-app suite.

These exercise the synchronization idioms the suite's profile template
does not: producer/consumer signalling (the paper's signal/wait,
Section 3.4.6) and a lock-protected work queue (the task-stealing
pattern of radiosity/raytrace/volrend, here modelled faithfully with a
shared head index instead of statistical critical sections).
"""

from __future__ import annotations

from typing import List

from repro.core.machine import Machine, ThreadBody
from repro.protocols.ops import Compute, Load, Store
from repro.sync import make_lock, make_signal_wait, style_for
from repro.workloads.base import Workload, make_burst


class PipelineWorkload(Workload):
    """A software pipeline: stage i signals stage i+1 per item.

    Threads form a chain; thread 0 produces ``items`` items, each later
    stage waits for its predecessor's signal, does per-item work, and
    signals its successor. Every stage boundary is a SignalWait — the
    construct evaluated in Figure 20's "wait" column — so the whole
    workload's critical path is signal latency.
    """

    def __init__(self, items: int = 8, work_cycles: int = 300) -> None:
        self.name = "pipeline"
        self.items = items
        self.work_cycles = work_cycles

    def build(self, machine: Machine) -> List[ThreadBody]:
        n = machine.config.num_cores
        if n < 2:
            raise ValueError("a pipeline needs at least two stages")
        style = style_for(machine.config)
        # One signal/wait channel between each pair of adjacent stages.
        channels = [make_signal_wait(style) for _ in range(n - 1)]
        for channel in channels:
            channel.setup(machine.layout, n)
            self.seed_values(machine, channel.initial_values())

        def stage(ctx):
            stage_index = ctx.tid
            upstream = channels[stage_index - 1] if stage_index > 0 else None
            downstream = (channels[stage_index]
                          if stage_index < n - 1 else None)
            for _item in range(self.items):
                if upstream is not None:
                    yield from upstream.wait(ctx)
                yield Compute(1 + ctx.rng.randrange(self.work_cycles))
                if downstream is not None:
                    yield from downstream.signal(ctx)

        return [stage] * n


class TaskQueueWorkload(Workload):
    """A lock-protected work queue: grab the next index, process it.

    ``tasks`` work items live behind a single shared head counter
    protected by a lock. Each worker loops: acquire, read/advance the
    head (plain DRF accesses under the lock), release, process the item
    (compute + a private data burst). The queue drains exactly once —
    an end-to-end correctness property the tests check.
    """

    def __init__(self, tasks: int = 64, lock_name: str = "ttas",
                 work_cycles: int = 400, work_lines: int = 4) -> None:
        self.name = "task_queue"
        self.tasks = tasks
        self.lock_name = lock_name
        self.work_cycles = work_cycles
        self.work_lines = work_lines
        self.claimed: List[int] = []

    def build(self, machine: Machine) -> List[ThreadBody]:
        n = machine.config.num_cores
        style = style_for(machine.config)
        lock = make_lock(self.lock_name, style)
        lock.setup(machine.layout, n)
        self.seed_values(machine, lock.initial_values())
        head = machine.layout.alloc_sync_word()
        machine.store.write(head, 0)
        self.claimed = []
        line = machine.config.line_bytes
        privates = [
            machine.layout.alloc_page_aligned(line * self.work_lines * 2)
            for _ in range(n)
        ]

        def worker(ctx):
            mine = privates[ctx.tid]
            while True:
                yield from lock.acquire(ctx)
                index = yield Load(head)
                if index < self.tasks:
                    yield Store(head, index + 1)
                yield from lock.release(ctx)
                if index >= self.tasks:
                    return
                self.claimed.append(index)
                yield Compute(1 + ctx.rng.randrange(self.work_cycles))
                yield make_burst(ctx.rng, mine, self.work_lines, 0.5, line)

        return [worker] * n
