"""Test&Set spin lock (paper Figures 8 and 9).

MESI (Figure 8 left)::

    acq: t&s $r, L, 0, 1
         bnez $r, acq
         /* CS */
    rel: st L, 0

VIPS (Figure 8 right) adds self_invl/self_down fences, LLC atomics, and
back-off between retries. Callback-all (Figure 9 left) guards with a
non-callback T&S, then spins in a callback T&S; release is st_through.
Callback-one (Figure 9 right) uses {ld}&{st_cb0} / {ld_cb}&{st_cb0} and
releases with st_cb1.
"""

from __future__ import annotations

from repro.protocols.ops import (Atomic, AtomicKind, BackoffWait, Fence,
                                 FenceKind, LdKind, StKind, Store, StoreCB1,
                                 StoreThrough)
from repro.sync.base import SyncPrimitive, SyncStyle


class TASLock(SyncPrimitive):
    """Plain Test&Set lock in all four encodings."""

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.addr = -1

    def setup(self, layout, num_threads: int) -> None:
        self.addr = layout.alloc_sync_word()
        self._ready = True

    # ---------------------------------------------------------------- acquire

    def acquire(self, ctx):
        self._require_ready()
        start = ctx.now
        if self.style is SyncStyle.MESI:
            yield from self._acquire_mesi()
        elif self.style is SyncStyle.VIPS:
            yield from self._acquire_vips()
        elif self.style is SyncStyle.CB_ALL:
            yield from self._acquire_cb(StKind.CBA)
        else:
            yield from self._acquire_cb(StKind.CB0)
        ctx.record_episode("lock_acquire", start)
        ctx.span_begin("lock_hold", lock=type(self).__name__)

    def _acquire_mesi(self):
        while True:
            result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1))
            if result.success:
                return

    def _acquire_vips(self):
        attempt = 0
        while True:
            result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1))
            if result.success:
                break
            yield BackoffWait(attempt)
            attempt += 1
        yield Fence(FenceKind.SELF_INVL)

    def _acquire_cb(self, st_kind: StKind):
        # Guard: one non-callback T&S (Section 3.3 forward progress).
        result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                              ld=LdKind.PLAIN, st=st_kind)
        while not result.success:
            # Callback T&S: the read half blocks in the directory.
            result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                                  ld=LdKind.CB, st=st_kind)
        yield Fence(FenceKind.SELF_INVL)

    # ---------------------------------------------------------------- release

    def release(self, ctx):
        self._require_ready()
        if self.style is SyncStyle.MESI:
            yield Store(self.addr, 0)
        elif self.style is SyncStyle.VIPS:
            yield Fence(FenceKind.SELF_DOWN)
            yield StoreThrough(self.addr, 0)
        elif self.style is SyncStyle.CB_ALL:
            yield Fence(FenceKind.SELF_DOWN)
            yield StoreThrough(self.addr, 0)
        else:
            yield Fence(FenceKind.SELF_DOWN)
            yield StoreCB1(self.addr, 0)
        ctx.span_end("lock_hold")
