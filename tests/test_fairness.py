"""Fairness analysis: Jain index and per-thread latency spread."""

import pytest

from repro.config import WakePolicy, config_for
from repro.harness.fairness import (acquisition_fairness, episode_counts,
                                    jain_index, latency_fairness)
from repro.harness.runner import run_workload
from repro.sim.stats import Stats
from repro.workloads.microbench import LockMicrobench


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_is_vacuously_fair(self):
        assert jain_index([]) == 1.0

    def test_monotone_in_skew(self):
        assert jain_index([6, 6]) > jain_index([10, 2]) > jain_index([12, 0])


class TestEpisodeAccounting:
    def test_counts_by_thread(self):
        stats = Stats()
        for tid in (0, 0, 1, 2):
            stats.record_episode("lock_acquire", 10, tid=tid)
        assert episode_counts(stats, "lock_acquire") == {0: 2, 1: 1, 2: 1}

    def test_untagged_episodes_ignored(self):
        stats = Stats()
        stats.record_episode("lock_acquire", 10)  # tid defaults to -1
        assert episode_counts(stats, "lock_acquire") == {}

    def test_starved_threads_visible_with_num_threads(self):
        stats = Stats()
        for _ in range(8):
            stats.record_episode("lock_acquire", 10, tid=0)
        assert acquisition_fairness(stats, num_threads=1) == 1.0
        assert acquisition_fairness(stats, num_threads=4) == pytest.approx(0.25)

    def test_latency_fairness(self):
        stats = Stats()
        stats.record_episode("lock_acquire", 10, tid=0)
        stats.record_episode("lock_acquire", 30, tid=1)
        # overall mean 20, worst thread mean 30.
        assert latency_fairness(stats) == pytest.approx(1.5)

    def test_latency_fairness_empty(self):
        assert latency_fairness(Stats()) == 1.0


class TestWakePolicyFairness:
    """The paper's wake policies, measured: every policy keeps the lock
    microbenchmark fair (each thread runs a fixed number of acquires, so
    count-fairness is 1.0 by construction — the latency spread is the
    discriminator and must stay bounded)."""

    @pytest.mark.parametrize("policy", list(WakePolicy))
    def test_count_fairness_perfect_for_fixed_iterations(self, policy):
        cfg = config_for("CB-One", num_cores=16, cb_wake_policy=policy)
        result = run_workload(cfg, LockMicrobench("ttas", iterations=4))
        fairness = acquisition_fairness(result.stats, num_threads=16)
        assert fairness == pytest.approx(1.0)

    @pytest.mark.parametrize("policy", list(WakePolicy))
    def test_latency_spread_bounded(self, policy):
        cfg = config_for("CB-One", num_cores=16, cb_wake_policy=policy)
        result = run_workload(cfg, LockMicrobench("ttas", iterations=4))
        assert latency_fairness(result.stats) < 2.5
