#!/usr/bin/env python
"""SMT: per-thread callback bits (footnote 5 of the paper).

Runs the contended-lock microbenchmark on a 16-core machine twice — once
with one hardware thread per core, once with two (32 threads total) —
and shows that the callback directory handles SMT naturally: the F/E and
CB bits are per hardware thread, so siblings sharing an L1 still park
and wake independently.

Run:  python examples/smt_threads.py
"""

from repro.config import config_for
from repro.harness.runner import run_workload
from repro.workloads import LockMicrobench


def main() -> None:
    header = (f"{'machine':24s} {'threads':>8s} {'acquires':>9s} "
              f"{'cb parked':>10s} {'acq p95':>9s} {'flit-hops':>10s}")
    for label in ("Invalidation", "CB-One"):
        print(f"=== {label} ===")
        print(header)
        print("-" * len(header))
        for tpc in (1, 2):
            cfg = config_for(label, num_cores=16, threads_per_core=tpc)
            result = run_workload(cfg, LockMicrobench("ttas", iterations=4))
            stats = result.stats
            acq = stats.episode_summary("lock_acquire")
            print(f"{'16 cores x ' + str(tpc) + ' threads':24s} "
                  f"{cfg.num_threads:8d} {acq['n']:9d} "
                  f"{stats.cb_blocked_reads:10d} {acq['p95']:9.0f} "
                  f"{stats.flit_hops:10d}")
        print()
    print("Doubling the threads doubles the waiters on one lock; under")
    print("CB-One each of them gets its own F/E + CB bit (footnote 5) and")
    print("parks in the directory — no LLC spinning, no protocol change.")


if __name__ == "__main__":
    main()
