#!/usr/bin/env python
"""Energy breakdown (the Figure 22 story) on one application stand-in.

Shows where the joules go under each technique: invalidation spins in
the (relatively expensive) L1, back-off moves the spinning to the LLC
and network, and callbacks park waiters in a 4-entry structure so all
three components shrink.

Run:  python examples/energy_breakdown.py [app]
"""

import sys

from repro.config import PAPER_CONFIGS
from repro.harness.runner import run_config
from repro.workloads import APP_NAMES, get_workload


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    if app not in APP_NAMES:
        raise SystemExit(f"unknown app {app!r}; choose from {APP_NAMES}")

    print(f"Energy breakdown for '{app}' (16 cores, scalable sync)")
    header = (f"{'config':14s} {'L1 nJ':>10s} {'LLC nJ':>10s} "
              f"{'net nJ':>10s} {'total nJ':>10s} {'vs Inv':>8s}")
    print(header)
    print("-" * len(header))

    reference = None
    for label in PAPER_CONFIGS:
        workload = get_workload(app, scale=0.5)
        result = run_config(label, workload, num_cores=16)
        e = result.energy
        if reference is None:
            reference = e.onchip_pj
        ratio = e.onchip_pj / reference
        print(f"{label:14s} {e.l1_pj / 1000:10.1f} {e.llc_pj / 1000:10.1f} "
              f"{e.network_pj / 1000:10.1f} {e.onchip_pj / 1000:10.1f} "
              f"{ratio:8.3f}")

    print()
    print("The callback rows minimize every component at once — the")
    print("paper reports 40% total energy savings vs Invalidation and 5%")
    print("vs the best-tuned back-off at 64 cores (Section 5.4.2).")


if __name__ == "__main__":
    main()
