"""Crash-safe file IO shared by every on-disk artifact writer.

Results (:mod:`repro.harness.results_io`), the orchestration cache
(:mod:`repro.orchestrate.cache`) and the checkpoint store
(:mod:`repro.ckpt.store`) all follow the same discipline:

* **atomic publication** — write to a temp file in the destination
  directory, ``fsync`` it, then ``os.replace`` onto the final name.
  A reader (or a crash at any instant) sees either the old complete
  file or the new complete file, never a torn write;
* **durable directories** — after the rename, ``fsync`` the directory
  so the new name itself survives a power cut;
* **self-verifying payloads** — JSON artifacts embed a SHA-256 over
  their canonical form, checked on read. A corrupt artifact is
  *quarantined* (renamed ``<name>.corrupt``) rather than deleted, so
  the damaged bytes stay available for post-mortems while every normal
  code path treats the entry as absent.

Every syscall in the protocol announces itself through the
:mod:`repro.iohooks` fault-injection seam, so the :mod:`repro.chaos`
harness can fail, tear, or crash it by name. Failed fsyncs are counted
in :data:`FSYNC_ERRORS` (exported as ``repro_io_fsync_errors_total`` on
the service's ``/metrics``), and an ``ENOSPC`` fsync is *always*
re-raised — a full disk must reach the caller so the service plane can
degrade to read-only instead of silently losing durability.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
from typing import Any, Optional

from repro.iohooks import (SITE_DIR_FSYNC, SITE_PUBLISHED, SITE_READ,
                           SITE_RENAME, SITE_TMP_FSYNC, SITE_TMP_WRITE,
                           filter_write, io_site)
from repro.obs.metrics import Counter

__all__ = [
    "canonical_json", "sha256_of", "atomic_write_text",
    "atomic_write_json", "fsync_dir", "quarantine", "read_checked_json",
    "CorruptArtifactError", "FSYNC_ERRORS",
]

#: Process-wide count of fsync failures observed at this layer (file
#: and directory fsyncs). The serve plane renders it on ``/metrics``
#: as ``repro_io_fsync_errors_total{layer="ioutil"}``.
FSYNC_ERRORS = Counter("repro_io_fsync_errors_total")


class CorruptArtifactError(ValueError):
    """An on-disk artifact failed parsing or checksum verification.

    Carries the ``path`` of the damaged file and, after
    :func:`quarantine`, ``quarantined`` — where the bytes were moved.
    """

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason
        self.quarantined: Optional[str] = None


def canonical_json(value: Any) -> str:
    """The one serialized form all content hashes are taken over.

    Stable under a JSON round-trip: non-string dict keys are first
    coerced to the strings JSON stores (and re-sorted lexically, the
    way a re-read dict sorts), so a value checksummed before
    serialization and the same value parsed back from disk produce the
    same digest. Without the round-trip, int keys sort numerically at
    write time ({2: ..., 10: ...}) but lexically after re-reading
    ("10" < "2"), and the digests diverge.
    """
    encoded = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return json.dumps(json.loads(encoded), sort_keys=True,
                      separators=(",", ":"))


def sha256_of(value: Any) -> str:
    """SHA-256 hex digest of a JSON-able value's canonical form."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def fsync_dir(path: str) -> None:
    """Flush a directory entry table (makes renames/creates durable).

    Mostly best-effort: some filesystems refuse ``open(O_RDONLY)`` on
    directories, and crash-safety degrades gracefully to rename
    atomicity there. A *failing* fsync is counted in
    :data:`FSYNC_ERRORS`, and ``ENOSPC`` is re-raised — a full disk is
    a persistent condition the caller must react to, not a quirk.
    """
    io_site(SITE_DIR_FSYNC, path)
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError as exc:
        FSYNC_ERRORS.inc()
        if exc.errno == errno.ENOSPC:
            raise
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, durable: bool = True) -> None:
    """Publish ``text`` at ``path`` atomically (temp + fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    io_site(SITE_TMP_WRITE, path, size=len(text))
    out = filter_write(SITE_TMP_WRITE, path, text)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=f".{os.path.basename(path)}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(out)
            if len(out) != len(text):
                raise OSError(
                    errno.EIO,
                    f"torn write ({len(out)}/{len(text)} bytes)", path)
            if durable:
                handle.flush()
                io_site(SITE_TMP_FSYNC, path)
                try:
                    os.fsync(handle.fileno())
                except OSError:
                    FSYNC_ERRORS.inc()
                    raise
        io_site(SITE_RENAME, path)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(directory)
    io_site(SITE_PUBLISHED, path)


def atomic_write_json(path: str, value: Any, durable: bool = True,
                      indent: Optional[int] = None) -> None:
    """Atomically publish a JSON document at ``path``."""
    if indent is None:
        text = canonical_json(value)
    else:
        text = json.dumps(value, sort_keys=True, indent=indent)
    atomic_write_text(path, text + "\n", durable=durable)


def quarantine(error: CorruptArtifactError) -> Optional[str]:
    """Move a corrupt artifact aside as ``<path>.corrupt``.

    Returns the quarantine path (also recorded on the error), or None
    if the file vanished or could not be moved. Never raises.
    """
    target = error.path + ".corrupt"
    try:
        os.replace(error.path, target)
    except OSError:
        return None
    error.quarantined = target
    return target


def read_checked_json(path: str, checksum_field: Optional[str] = None) -> Any:
    """Read a JSON artifact, raising :class:`CorruptArtifactError` on a
    parse failure — and, when ``checksum_field`` is given, on a missing
    or mismatched embedded SHA-256.

    With ``checksum_field``, the file must hold an object whose
    ``checksum_field`` entry is ``sha256_of`` the object *without* that
    entry; the returned dict has the checksum already stripped.
    """
    try:
        io_site(SITE_READ, path)
        with open(path) as handle:
            value = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorruptArtifactError(path, f"unreadable JSON ({exc})") from exc
    if checksum_field is None:
        return value
    if not isinstance(value, dict):
        raise CorruptArtifactError(path, "expected a JSON object")
    body = dict(value)
    stated = body.pop(checksum_field, None)
    if stated is None:
        raise CorruptArtifactError(path, f"missing {checksum_field!r}")
    actual = sha256_of(body)
    if stated != actual:
        raise CorruptArtifactError(
            path, f"checksum mismatch (stated {str(stated)[:12]}…, "
                  f"actual {actual[:12]}…)")
    return body
