"""Centralized sense-reversing barrier (paper Figures 14 and 15).

Two variants:

* ``use_lock=False`` — the textbook form of Figure 14: a single
  fetch&decrement on the counter; the last arrival resets the counter and
  flips the global sense, releasing the spinners.
* ``use_lock=True`` — the Splash-2 POSIX form the paper actually
  evaluates (Section 5.2): the counter is decremented under a companion
  lock, making the barrier's behaviour couple to the lock algorithm
  (T&T&S for naïve synchronization, CLH for scalable).

Waiters spin on the global sense word, so a write releasing the barrier
has broadcast behaviour — this is where callback-all shines (Section 2.4).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.protocols.ops import (Atomic, AtomicKind, BackoffWait, Fence,
                                 FenceKind, LdKind, Load, LoadCB, LoadThrough,
                                 SpinUntil, StKind, Store, StoreThrough)
from repro.sync.base import SyncPrimitive, SyncStyle


class SRBarrier(SyncPrimitive):
    """Sense-reversing barrier in all four encodings."""

    def __init__(self, style: SyncStyle, num_threads: int,
                 lock: Optional[SyncPrimitive] = None) -> None:
        super().__init__(style)
        self.num_threads = num_threads
        self.lock = lock
        self.counter_addr = -1
        self.sense_addr = -1
        self._local_sense: Dict[int, int] = {}

    def setup(self, layout, num_threads: int) -> None:
        if num_threads != self.num_threads:
            raise ValueError("barrier thread count mismatch")
        self.counter_addr = layout.alloc_sync_word()
        self.sense_addr = layout.alloc_sync_word()
        self._local_sense = {tid: 0 for tid in range(num_threads)}
        if self.lock is not None:
            self.lock.setup(layout, num_threads)
        self._ready = True

    def initial_values(self) -> dict:
        values = {self.counter_addr: self.num_threads, self.sense_addr: 0}
        if self.lock is not None:
            values.update(self.lock.initial_values())
        return values

    # ------------------------------------------------------------------ wait

    def wait(self, ctx):
        """One barrier episode for thread ``ctx.tid``."""
        self._require_ready()
        start = ctx.now
        ctx.mark("barrier.arrive")
        sense = 1 - self._local_sense[ctx.tid]
        self._local_sense[ctx.tid] = sense

        if self.lock is not None:
            last = yield from self._decrement_locked(ctx)
        else:
            last = yield from self._decrement_atomic(ctx)

        if last:
            yield from self._release(sense)
        if self.style is SyncStyle.MESI:
            if not last:
                yield SpinUntil(self.sense_addr, lambda v, s=sense: v == s)
        elif self.style is SyncStyle.VIPS:
            # Figure 14: the releasing thread also falls through the spin
            # (one immediate probe), matching the listed code.
            attempt = 0
            while True:
                value = yield LoadThrough(self.sense_addr)
                if value == sense:
                    break
                yield BackoffWait(attempt)
                attempt += 1
            yield Fence(FenceKind.SELF_INVL)
        else:
            value = yield LoadThrough(self.sense_addr)
            while value != sense:
                value = yield LoadCB(self.sense_addr)
            yield Fence(FenceKind.SELF_INVL)
        ctx.record_episode("barrier_wait", start)
        ctx.mark("barrier.leave")

    def _decrement_atomic(self, ctx):
        """Figure 14's f&d; returns True for the last arrival."""
        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_DOWN)
        result = yield Atomic(self.counter_addr, AtomicKind.FETCH_ADD, (-1,))
        if result.old == 1:
            # Last arrival: re-arm the counter.
            if self.style is SyncStyle.MESI:
                yield Store(self.counter_addr, self.num_threads)
            else:
                yield StoreThrough(self.counter_addr, self.num_threads)
            return True
        return False

    def _decrement_locked(self, ctx):
        """The Splash-2 POSIX form: counter updated under the lock.

        The counter is DRF under the lock, so plain loads/stores plus the
        lock's own fences keep it coherent in every protocol.
        """
        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_DOWN)
        yield from self.lock.acquire(ctx)
        value = yield Load(self.counter_addr)
        if value == 1:
            yield Store(self.counter_addr, self.num_threads)
        else:
            yield Store(self.counter_addr, value - 1)
        yield from self.lock.release(ctx)
        return value == 1

    def _release(self, sense: int):
        """The last arrival flips the global sense (broadcast write)."""
        if self.style is SyncStyle.MESI:
            yield Store(self.sense_addr, sense)
        else:
            # st_through == st_cbA: wakes every callback (Figure 15); the
            # callback-one encoding of a barrier would serialize wakeups,
            # so both callback styles broadcast here.
            yield StoreThrough(self.sense_addr, sense)
