"""Fault campaigns: run fault plans, compare against fault-free baselines.

A campaign is the end-to-end check of the paper's robustness claims: for
every (configuration, seed) point it first runs the simulation fault-free
and fingerprints the final memory state, then runs one or more
:class:`~repro.resilience.faults.FaultPlan`\\ s against the same point and
demands that each faulted run *completes* with the *same functional
fingerprint*. Forced callback-directory evictions, delayed or duplicated
wakeups, and back-off jitter are all allowed to change timing and traffic
(they add latency and messages by construction) — what they must never
change is what the program computed. The fingerprint is a SHA-256 over
the word store's final non-zero contents
(:meth:`~repro.mem.store.WordStore.snapshot`), i.e. every lock word,
barrier counter, and shared datum at the end of the run.

Outcomes use the shared failure taxonomy
(:mod:`repro.resilience.classify`) plus ``mismatch`` for runs that
finished with a diverged fingerprint. Failing plans are saved
content-addressed so ``repro-resilience replay <hash>`` reproduces them
exactly, and :func:`minimize_plan` shrinks a failing schedule to a
locally minimal subset with a ddmin-style search.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.config import config_for
from repro.core.machine import Machine
from repro.mem.store import WordStore
from repro.resilience.classify import classify_failure
from repro.resilience.faults import FaultKind, FaultPlan, make_fault_plan
from repro.resilience.resilience import Resilience, ResilienceConfig

#: Default watchdog stall window for campaign runs: generous enough that
#: no legitimate run trips it, tight enough that a provoked livelock is
#: caught long before the event budget.
DEFAULT_WATCHDOG_STALL = 200_000


def functional_fingerprint(store: WordStore) -> str:
    """SHA-256 over the store's final non-zero word values."""
    snapshot = store.snapshot()
    blob = json.dumps(sorted(snapshot.items()),
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class PlanOutcome:
    """Result of executing one fault plan (or a fault-free baseline)."""

    plan_key: str
    describe: str
    #: ok | mismatch | invariant | liveness | timeout | error
    status: str
    error: str = ""
    cycles: int = 0
    fingerprint: str = ""
    baseline_fingerprint: str = ""
    faults_applied: int = 0
    injection: Dict[str, Any] = field(default_factory=dict)
    #: Watchdog/deadlock post-mortem when the run got stuck (else None).
    diagnosis: Optional[Any] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, Any]:
        out = {"plan_key": self.plan_key, "describe": self.describe,
               "status": self.status, "error": self.error,
               "cycles": self.cycles, "fingerprint": self.fingerprint,
               "baseline_fingerprint": self.baseline_fingerprint,
               "faults_applied": self.faults_applied,
               "injection": self.injection}
        if self.diagnosis is not None:
            out["diagnosis"] = self.diagnosis.as_dict()
        return out


def baseline_fingerprint(plan: FaultPlan) -> str:
    """Fingerprint of the plan's run executed fault-free."""
    outcome = execute_plan(plan.subset([]), baseline="")
    if not outcome.ok:
        raise RuntimeError(
            f"fault-free baseline failed ({outcome.status}): "
            f"{outcome.error}")
    return outcome.fingerprint


def execute_plan(plan: FaultPlan, baseline: Optional[str] = None,
                 watchdog_stall: int = DEFAULT_WATCHDOG_STALL,
                 audit_every: int = 0) -> PlanOutcome:
    """Run ``plan``'s simulation with its faults injected.

    ``baseline`` is the fault-free fingerprint to compare against; pass
    ``None`` to compute it here first (one extra fault-free run), or
    ``""`` to skip the comparison.
    """
    # Lazy: the registry lives in repro.orchestrate, whose package
    # import reaches back into repro.harness.runner (which imports this
    # package) — importing it at call time breaks the cycle.
    from repro.orchestrate.registry import build_workload
    if baseline is None:
        baseline = baseline_fingerprint(plan)
    config = config_for(plan.config_label, seed=plan.seed,
                        **plan.config_overrides)
    workload = build_workload(plan.workload, plan.workload_params)
    resilience = Resilience(ResilienceConfig(
        plan=plan, watchdog_stall=watchdog_stall, audit_every=audit_every))
    machine = Machine(config, resilience=resilience)
    workload.install(machine)
    outcome = PlanOutcome(plan_key=plan.plan_key(),
                          describe=plan.describe(), status="ok",
                          baseline_fingerprint=baseline or "")
    try:
        stats = machine.run()
    except Exception as exc:  # noqa: BLE001 — campaign isolation
        outcome.status = classify_failure(exc)
        outcome.error = str(exc)
        outcome.cycles = machine.engine.now
        outcome.diagnosis = getattr(exc, "diagnosis", None)
    else:
        outcome.cycles = stats.cycles
        outcome.fingerprint = functional_fingerprint(machine.store)
        if baseline and outcome.fingerprint != baseline:
            outcome.status = "mismatch"
            outcome.error = ("final memory diverged from the fault-free "
                            "baseline")
    if resilience.injector is not None:
        outcome.injection = resilience.injector.summary()
        outcome.faults_applied = outcome.injection["events_applied"]
    return outcome


@dataclass
class CampaignResult:
    """All outcomes of one fault campaign plus its failure manifest."""

    outcomes: List[PlanOutcome]
    plans_dir: str = ""

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failed(self) -> List[PlanOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def manifest(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for outcome in self.outcomes:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        return {"total": len(self.outcomes), "by_status": by_status,
                "plans_dir": self.plans_dir,
                "failures": [outcome.as_dict() for outcome in self.failed]}

    def summary(self) -> str:
        counts = self.manifest()["by_status"]
        what = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        return f"{len(self.outcomes)} plan(s): {what}"


def run_campaign(config_labels: Sequence[str], workload: str,
                 workload_params: Optional[Dict[str, Any]] = None,
                 config_overrides: Optional[Dict[str, Any]] = None,
                 seeds: Sequence[int] = (1,),
                 kinds: Sequence[FaultKind] = (FaultKind.CB_EVICT,),
                 fault_seeds: Sequence[int] = (0,),
                 count: int = 8, horizon: int = 20_000,
                 watchdog_stall: int = DEFAULT_WATCHDOG_STALL,
                 audit_every: int = 0,
                 out_dir: Optional[str] = None) -> CampaignResult:
    """Run a grid of fault plans and validate functional identity.

    For every (config_label, seed) point: one fault-free baseline run,
    then one faulted run per ``fault_seed`` with ``count`` faults drawn
    from ``kinds``. With ``out_dir`` set, every *failing* plan is saved
    under ``out_dir/plans/<plan_key>.json``, stuck-run diagnoses become
    Perfetto traces under ``out_dir/diagnoses/``, and the manifest is
    written to ``out_dir/manifest.json``.
    """
    plans_dir = os.path.join(out_dir, "plans") if out_dir else ""
    diagnoses_dir = os.path.join(out_dir, "diagnoses") if out_dir else ""
    outcomes: List[PlanOutcome] = []
    for label in config_labels:
        for seed in seeds:
            probe = make_fault_plan(label, workload, workload_params,
                                    config_overrides, seed=seed,
                                    kinds=kinds, count=0)
            base = baseline_fingerprint(probe)
            for fault_seed in fault_seeds:
                plan = make_fault_plan(label, workload, workload_params,
                                       config_overrides, seed=seed,
                                       fault_seed=fault_seed, kinds=kinds,
                                       count=count, horizon=horizon)
                outcome = execute_plan(plan, baseline=base,
                                       watchdog_stall=watchdog_stall,
                                       audit_every=audit_every)
                outcomes.append(outcome)
                if not outcome.ok and out_dir:
                    plan.save(plans_dir)
                    if outcome.diagnosis is not None:
                        os.makedirs(diagnoses_dir, exist_ok=True)
                        outcome.diagnosis.write_trace(os.path.join(
                            diagnoses_dir,
                            f"{plan.plan_key()[:16]}.trace.json"))
    result = CampaignResult(outcomes=outcomes, plans_dir=plans_dir)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, "manifest.json"), "w") as handle:
            json.dump(result.manifest(), handle, indent=2, sort_keys=True)
    return result


def minimize_plan(plan: FaultPlan,
                  watchdog_stall: int = DEFAULT_WATCHDOG_STALL,
                  audit_every: int = 0) -> FaultPlan:
    """Shrink a failing plan to a locally minimal failing subset (ddmin).

    The failure is whatever ``execute_plan`` reports for the full plan
    (against a freshly computed fault-free baseline); subsets must
    reproduce the same status to count. Returns ``plan`` unchanged if it
    does not fail at all.
    """
    base = baseline_fingerprint(plan)

    def status_of(faults: Sequence[Any]) -> str:
        return execute_plan(plan.subset(faults), baseline=base,
                            watchdog_stall=watchdog_stall,
                            audit_every=audit_every).status

    target = status_of(plan.faults)
    if target == "ok":
        return plan

    faults = list(plan.faults)
    chunks = 2
    while len(faults) >= 2:
        size = max(1, len(faults) // chunks)
        pieces = [faults[i:i + size] for i in range(0, len(faults), size)]
        reduced = False
        for index in range(len(pieces)):
            complement = [f for j, piece in enumerate(pieces)
                          for f in piece if j != index]
            if complement and status_of(complement) == target:
                faults = complement
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if chunks >= len(faults):
                break
            chunks = min(len(faults), chunks * 2)
    return plan.subset(faults)
