"""CLH queue lock (paper Figures 12 and 13).

Each thread owns a queue node with a ``succ_wait`` flag (its successor
spins on it) and a ``prev`` slot. Acquire: set own ``succ_wait``, atomically
swap the lock tail with the own node, spin on the predecessor's
``succ_wait``. Release: clear own ``succ_wait`` and adopt the predecessor's
node for the next acquire (standard CLH node recycling, ``st I, $p``).

Only one thread ever spins on a given word, so callback-all and
callback-one behave identically (Section 3.4.3); both callback encodings
use a ld_through guard plus a ld_cb spin (Figure 13), with the release
using st_through.
"""

from __future__ import annotations

from typing import Dict, List

from repro.protocols.ops import (Atomic, AtomicKind, BackoffWait, Fence,
                                 FenceKind, Load, LoadCB, LoadThrough,
                                 SpinUntil, Store, StoreThrough)
from repro.sync.base import SyncPrimitive, SyncStyle

_SUCC_WAIT = 0  # word index within a node
_PREV = 1


class CLHLock(SyncPrimitive):
    """CLH queue lock in all four encodings."""

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.tail_addr = -1
        self._dummy = -1
        self._word_bytes = 8
        # Current node of each thread (recycled across acquires).
        self._node_of: Dict[int, int] = {}

    def setup(self, layout, num_threads: int) -> None:
        self._word_bytes = layout.config.word_bytes
        self.tail_addr = layout.alloc_sync_word()
        # One line-padded node per thread + a dummy the tail starts at.
        self._dummy = layout.alloc_sync_word()
        self._node_of = {
            tid: layout.alloc_sync_word() for tid in range(num_threads)
        }
        self._ready = True

    def initial_values(self) -> Dict[int, int]:
        """Word values the machine must seed: the tail points at the dummy
        node, whose succ_wait is 0 (lock free)."""
        return {self.tail_addr: self._dummy, self._succ_wait(self._dummy): 0}

    def _node(self, tid: int) -> int:
        return self._node_of[tid]

    def _succ_wait(self, node: int) -> int:
        return node + _SUCC_WAIT * self._word_bytes

    def _prev_slot(self, node: int) -> int:
        return node + _PREV * self._word_bytes

    # ---------------------------------------------------------------- acquire

    def acquire(self, ctx):
        self._require_ready()
        start = ctx.now
        node = self._node(ctx.tid)
        if self.style is SyncStyle.MESI:
            yield Store(self._succ_wait(node), 1)
            result = yield Atomic(self.tail_addr, AtomicKind.SWAP, (node,))
            prev = result.old
            yield Store(self._prev_slot(node), prev)
            yield SpinUntil(self._succ_wait(prev), lambda v: v == 0)
        elif self.style is SyncStyle.VIPS:
            yield StoreThrough(self._succ_wait(node), 1)
            result = yield Atomic(self.tail_addr, AtomicKind.SWAP, (node,))
            prev = result.old
            yield Store(self._prev_slot(node), prev)
            attempt = 0
            while True:
                value = yield LoadThrough(self._succ_wait(prev))
                if value == 0:
                    break
                yield BackoffWait(attempt)
                attempt += 1
            yield Fence(FenceKind.SELF_INVL)
        else:
            # Figure 13: guard ld_through, then ld_cb spin.
            yield StoreThrough(self._succ_wait(node), 1)
            result = yield Atomic(self.tail_addr, AtomicKind.SWAP, (node,))
            prev = result.old
            yield Store(self._prev_slot(node), prev)
            value = yield LoadThrough(self._succ_wait(prev))
            while value != 0:
                value = yield LoadCB(self._succ_wait(prev))
            yield Fence(FenceKind.SELF_INVL)
        ctx.record_episode("lock_acquire", start)
        ctx.span_begin("lock_hold", lock=type(self).__name__)

    # ---------------------------------------------------------------- release

    def release(self, ctx):
        self._require_ready()
        node = self._node(ctx.tid)
        if self.style is SyncStyle.MESI:
            result = yield Load(self._prev_slot(node))
            prev = result
            yield Store(self._succ_wait(node), 0)
        else:
            yield Fence(FenceKind.SELF_DOWN)
            prev = yield Load(self._prev_slot(node))
            yield StoreThrough(self._succ_wait(node), 0)
        # st I, $p — recycle the predecessor's node as our own.
        self._node_of[ctx.tid] = prev
        ctx.span_end("lock_hold")
