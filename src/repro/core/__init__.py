"""Core model and machine assembly."""

from repro.core.core import Core
from repro.core.machine import Machine, ThreadBody, run_threads
from repro.core.thread import ThreadContext

__all__ = ["Core", "Machine", "ThreadBody", "ThreadContext", "run_threads"]
