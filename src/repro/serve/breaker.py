"""Client-side circuit breaker: stop hammering a partitioned service.

A worker cut off from the service by a network partition (or a service
riding out a restart) otherwise turns every lease poll, heartbeat, and
commit into a fresh connection attempt — thousands of doomed syscalls
that slow the worker's own recovery and, on the service side, a
thundering herd the instant the partition heals. The breaker is the
classic three-state machine in front of
:meth:`repro.serve.client.ServeClient.request`:

* **closed** — requests flow; consecutive transport-level failures are
  counted, and a streak of ``threshold`` trips the breaker;
* **open** — requests fail *immediately* with :class:`CircuitOpenError`
  (an ``OSError``, so every caller that already handles connection
  trouble — the worker's lease backoff, the supervisor's scrape loop —
  handles an open breaker for free, without a new except arm);
* **half-open** — after ``cooldown_s`` one probe request is let
  through. Success closes the breaker; failure reopens it with the
  cooldown doubled (capped), so a long partition costs a few probes a
  minute instead of a retry storm.

What counts as a *failure* is deliberately transport-shaped: OSErrors
(connection refused/reset/timeout) and 5xx responses. 4xx responses —
quota refusals, stale-lease fences, unknown jobs — are the service
*answering*, which is proof the wire works, so they count as successes
for the breaker even though the caller sees an exception.

Determinism: the half-open probe schedule is pure arithmetic over
``cooldown_s`` and the failure count (no RNG), and the clock is
injectable (``now_fn``), so the state machine is unit-testable
tick-by-tick and chaos drills replay identically.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

__all__ = ["CircuitBreaker", "CircuitOpenError",
           "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
           "BREAKER_STATES"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"
BREAKER_STATES = (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN)


class CircuitOpenError(OSError):
    """The breaker is open: the request was refused *locally*, without
    touching the wire. Subclasses ``OSError`` on purpose — callers
    treat it exactly like the connection failure it is standing in
    for."""

    def __init__(self, message: str, retry_in_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_in_s = retry_in_s


class CircuitBreaker:
    """Three-state breaker; thread-safe (one client is shared between a
    worker's main loop and its heartbeat thread)."""

    def __init__(self, threshold: int = 5, cooldown_s: float = 1.0,
                 cooldown_max_s: float = 30.0,
                 now_fn: Optional[Callable[[], float]] = None) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("breaker cooldown must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.cooldown_max_s = max(cooldown_s, cooldown_max_s)
        if now_fn is None:
            import time
            now_fn = time.monotonic
        self._now = now_fn
        self._lock = threading.Lock()
        self.state = BREAKER_CLOSED
        self._streak = 0          # consecutive failures while closed
        self._opened_at = 0.0
        self._open_count = 0      # trips since construction (monotonic)
        self._reopens = 0         # failed half-open probes on this trip
        self._probe_inflight = False
        #: Requests refused locally while open (monotonic).
        self.refusals = 0

    # ------------------------------------------------------------ gates

    def _current_cooldown(self) -> float:
        # Doubles per failed probe on this trip, capped.
        return min(self.cooldown_max_s,
                   self.cooldown_s * (2 ** self._reopens))

    def allow(self) -> None:
        """Gate one request. Raises :class:`CircuitOpenError` while
        open (and no probe is due); lets exactly one probe through per
        cooldown while half-open."""
        with self._lock:
            if self.state == BREAKER_CLOSED:
                return
            now = self._now()
            elapsed = now - self._opened_at
            cooldown = self._current_cooldown()
            if elapsed >= cooldown and not self._probe_inflight:
                self.state = BREAKER_HALF_OPEN
                self._probe_inflight = True
                return
            self.refusals += 1
            raise CircuitOpenError(
                f"circuit breaker open ({self._streak} consecutive "
                f"failures); next probe in "
                f"{max(0.0, cooldown - elapsed):.2f}s",
                retry_in_s=max(0.0, cooldown - elapsed))

    def record_success(self) -> None:
        """The wire answered (any parseable response, even an error
        status below 500): close and reset."""
        with self._lock:
            self.state = BREAKER_CLOSED
            self._streak = 0
            self._reopens = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        """A transport-level failure (OSError or 5xx)."""
        with self._lock:
            self._streak += 1
            if self.state == BREAKER_HALF_OPEN:
                # The probe failed: reopen, with a longer cooldown.
                self.state = BREAKER_OPEN
                self._reopens += 1
                self._opened_at = self._now()
                self._probe_inflight = False
                return
            if self.state == BREAKER_CLOSED and \
                    self._streak >= self.threshold:
                self.state = BREAKER_OPEN
                self._open_count += 1
                self._reopens = 0
                self._opened_at = self._now()

    # ------------------------------------------------------- introspection

    def snapshot(self) -> Dict[str, float]:
        """State document for logs, pidfile metadata, and the fleet
        snapshot ``/metrics`` renders."""
        with self._lock:
            return {"state": self.state, "streak": self._streak,
                    "trips": self._open_count, "reopens": self._reopens,
                    "refusals": self.refusals,
                    "cooldown_s": self._current_cooldown()}
