"""Engine perf-trajectory cases, exercised under pytest.

``repro-bench`` is the CLI face of the trajectory; this module is the
test-suite face of the same matrix. It asserts the properties the
committed baseline (``results/BENCH_engine.json``) depends on:

* every standard case runs and reports sane numbers;
* repeats are deterministic (cycles/events identical run-to-run);
* the deterministic fields match the committed baseline **exactly** —
  they are machine-independent, so this check is as strong on a laptop
  as in CI, and it is the check that makes the perf trajectory
  trustworthy (throughput comparisons are meaningless when the work
  changed underneath them);
* the compare gate fails when it should (injected slowdown) and only
  then.

Set ``REPRO_BENCH_OUT=/path/doc.json`` to also emit a fresh BENCH
document while the tests run (used by the CI bench-trajectory job's
artifact upload; ``repro-bench run --out`` is the standalone way).
"""

import os

import pytest

from repro.bench import (DEFAULT_CASES, bench_doc, compare_benches,
                         load_bench, run_case, save_bench,
                         validate_bench)

BASELINE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             "results", "BENCH_engine.json")


@pytest.fixture(scope="module")
def measured():
    """Run the whole matrix once (module-scoped: it is the expensive
    part) and optionally emit the document for artifact upload."""
    results = [run_case(case, iters=1) for case in DEFAULT_CASES]
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        save_bench(out, bench_doc("engine", results, iters=1))
    return {case["name"]: case for case in results}


@pytest.fixture(scope="module")
def baseline():
    if not os.path.exists(BASELINE_PATH):
        pytest.skip("no committed baseline yet")
    return load_bench(BASELINE_PATH)


@pytest.mark.parametrize("case", DEFAULT_CASES, ids=lambda c: c.name)
def test_case_reports_sane_numbers(case, measured):
    got = measured[case.name]
    assert got["cycles"] > 0
    assert got["events"] > 0
    assert got["wall_s"] > 0
    assert got["cycles_per_s"] > 0
    assert got["protocol"] == case.protocol
    assert got["cores"] == case.cores


def test_repeats_are_deterministic():
    """run_case itself asserts across-repeat determinism; two separate
    invocations must agree on the deterministic fields too."""
    case = DEFAULT_CASES[0]
    first = run_case(case, iters=1)
    second = run_case(case, iters=2)
    assert (first["cycles"], first["events"]) == \
           (second["cycles"], second["events"])


def test_matches_committed_baseline(measured, baseline):
    """The committed deterministic fields reproduce exactly, anywhere."""
    base = {c["name"]: c for c in baseline["cases"]}
    assert set(base) == set(measured)
    for name, case in measured.items():
        assert (case["cycles"], case["events"]) == \
               (base[name]["cycles"], base[name]["events"]), (
            f"{name}: deterministic outputs diverged from the committed "
            f"baseline — regenerate results/BENCH_engine.json if this "
            f"is an intentional engine change")


def test_baseline_document_valid(baseline):
    assert validate_bench(baseline) == []
    assert baseline["suite"] == "engine"
    # A committed baseline must never carry an injected slowdown.
    assert "handicap" not in baseline


def test_compare_gate_detects_injected_slowdown(baseline):
    slow = {**baseline,
            "cases": [{**c, "cycles_per_s": c["cycles_per_s"] * 0.1,
                       "events_per_s": c["events_per_s"] * 0.1}
                      for c in baseline["cases"]]}
    ok, verdicts = compare_benches(baseline, slow, max_regression=0.5)
    assert not ok
    assert all(v.status == "perf_regression" for v in verdicts)


def test_compare_gate_flags_behavior_change(baseline):
    changed = {**baseline,
               "cases": [{**c, "cycles": c["cycles"] + 1}
                         for c in baseline["cases"]]}
    ok, verdicts = compare_benches(baseline, changed)
    assert not ok
    assert all(v.status == "behavior_change" for v in verdicts)


def test_compare_gate_passes_identity(baseline):
    ok, verdicts = compare_benches(baseline, baseline)
    assert ok
    assert all(v.status == "ok" and v.ratio == 1.0 for v in verdicts)
