"""Network timing + traffic accounting over the mesh.

``Network.send`` computes the delivery latency of one message and
schedules its handler on the engine; it also books the message's traffic
(flit-hops, byte-hops, per-kind counts) on the stats object. Local
deliveries (same tile) cost one cycle and zero traffic — the L1 talking to
its co-located LLC bank still crosses the cache hierarchy but not the
network, matching how GEMS/GARNET accounts local bank hits.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.config import SystemConfig
from repro.noc.mesh import Mesh, make_topology
from repro.noc.messages import MsgKind, message_bytes
from repro.sim.engine import Engine
from repro.sim.stats import Stats

LOCAL_DELIVERY_LATENCY = 1


def _drop_duplicate() -> None:
    """Delivery of a fault-injected duplicate message: dropped on arrival."""


class Network:
    """Latency/traffic model of the 2-D mesh interconnect.

    With ``config.model_link_contention`` enabled, each directed link
    tracks its occupancy: a message claims every link on its X-Y route
    for ``flits`` cycles in sequence, waiting behind earlier traffic.
    Without it, delivery time is the uncontended head latency plus
    serialization (the default — hop/flit counting, as in DESIGN.md).
    """

    def __init__(self, config: SystemConfig, engine: Engine, stats: Stats) -> None:
        self.config = config
        self.engine = engine
        self.stats = stats
        self.mesh = make_topology(config.topology,
                                  config.mesh_side)
        # (src_tile, dst_tile) directed link -> busy-until cycle.
        self._link_busy: dict = {}
        #: Telemetry probe bus (set when a Telemetry attaches), else None.
        self.obs = None
        #: When telemetry is attached, delivery handlers are wrapped to
        #: maintain the flits-in-flight gauge. The wrapping changes only
        #: handler identity, never (time, seq) ordering.
        self.track_inflight = False
        self.inflight_flits = 0
        #: Fault-injection hook (repro.resilience): when set, called as
        #: ``hook(src, dst, kind, latency) -> (extra_latency, duplicates)``
        #: for every message. ``extra_latency`` delays delivery (a slow
        #: NoC path); ``duplicates`` re-sends the message's flits that
        #: many times — the payload handler still runs exactly once (the
        #: receiver drops duplicates), but the copies are charged as
        #: traffic. Left None (the default), sends are untouched.
        self.fault_hook: Optional[
            Callable[[int, int, MsgKind, int], Tuple[int, int]]] = None

    def message_latency(self, src: int, dst: int, kind: MsgKind) -> int:
        """Cycles from injection at ``src`` to delivery at ``dst``."""
        hops = self.mesh.hops(src, dst)
        if hops == 0:
            return LOCAL_DELIVERY_LATENCY
        flits = self.config.flits_for(self._size(kind))
        return hops * self.config.switch_latency + (flits - 1)

    def send(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        sync: bool = False,
    ) -> int:
        """Deliver a message: account traffic, schedule ``handler``.

        ``sync`` tags the message as synchronization traffic (used by the
        Figure 20 LLC-sync-access metric upstream; the tag itself is only
        recorded in per-kind counters here). Returns the latency charged.
        """
        if self.config.model_link_contention:
            latency = self._contended_latency(src, dst, kind)
        else:
            latency = self.message_latency(src, dst, kind)
        hops = self.mesh.hops(src, dst)
        size = self._size(kind)
        flits = self.config.flits_for(size)
        duplicates = 0
        if self.fault_hook is not None:
            extra, duplicates = self.fault_hook(src, dst, kind, latency)
            latency += extra
        if hops > 0:
            self.stats.record_message(kind.value, flits, hops, size)
        else:
            # Local delivery: count the message for protocol-level
            # message-count assertions, but it contributes no traffic.
            self.stats.record_message(kind.value, flits, 0, size)
        if self.track_inflight and hops > 0:
            self.inflight_flits += flits
            inner = handler

            def handler() -> None:
                self.inflight_flits -= flits
                inner()

        if self.obs is not None:
            self.obs.emit("noc.send", src=src, dst=dst, kind=kind.value,
                          flits=flits, hops=hops, latency=latency,
                          sync=sync)
        self.engine.schedule(latency, handler)
        for copy in range(duplicates):
            # The duplicate crosses the network (charged as traffic) but
            # the receiver discards it: a daemon no-op one cycle behind
            # each copy, so duplication never extends the run's liveness.
            self.stats.record_message(kind.value, flits, hops, size)
            self.stats.msgs_duplicated += 1
            self.engine.schedule(latency + 1 + copy, _drop_duplicate,
                                 daemon=True)
        return latency

    def ckpt_state(self) -> dict:
        """Link occupancy as canonical data (checkpoint capture).

        Only links still busy at or after ``now`` matter — already-idle
        entries can never influence a future send — so stale rows are
        dropped, making the capture identical whether a dict entry was
        left behind or never created. The in-flight flit gauge is a
        telemetry artifact and deliberately excluded."""
        now = self.engine.now
        busy = {f"{src}>{dst}": until
                for (src, dst), until in sorted(self._link_busy.items())
                if until >= now}
        return {"link_busy": busy}

    def round_trip(self, a: int, b: int, req: MsgKind, resp: MsgKind) -> int:
        """Latency of a request/response pair without scheduling anything."""
        return self.message_latency(a, b, req) + self.message_latency(b, a, resp)

    def _contended_latency(self, src: int, dst: int, kind: MsgKind) -> int:
        """Wormhole-ish delivery over the X-Y route with link occupancy.

        The head waits for each link in turn (queuing behind earlier
        messages), each link takes ``switch_latency`` to traverse and is
        then held for ``flits`` cycles of serialization.
        """
        if src == dst:
            return LOCAL_DELIVERY_LATENCY
        flits = self.config.flits_for(self._size(kind))
        route = self.mesh.route(src, dst)
        time = self.engine.now
        for a, b in zip(route, route[1:]):
            link = (a, b)
            start = max(time, self._link_busy.get(link, 0))
            self._link_busy[link] = start + flits
            time = start + self.config.switch_latency
        time += flits - 1
        return time - self.engine.now

    def _size(self, kind: MsgKind) -> int:
        return message_bytes(
            kind,
            self.config.line_bytes,
            self.config.word_bytes,
            self.config.header_bytes,
        )
