"""Table 1: the synchronization primitive catalogue.

Each row of the paper's Table 1 maps to an op (or op combination) in
this library; these tests pin the catalogue and each primitive's
documented behaviour at the protocol level.
"""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols import ops

from tests.protocol_utils import issue, issue_pending

ADDR = 0x4000


def machine():
    return Machine(config_for("CB-One", num_cores=4))


class TestCatalogue:
    """Every Table 1 primitive exists with the listed semantics."""

    def test_ld_through_responds_immediately_and_resets_fe(self):
        """Row 1: general conflicting load; LLC responds immediately;
        resets the F/E bit (Section 3.3)."""
        m = machine()
        issue(m, 1, ops.LoadCB(ADDR))               # install an entry
        issue(m, 2, ops.StoreThrough(ADDR, 3))      # F/E full for core 0
        value = issue(m, 0, ops.LoadThrough(ADDR))  # never blocks
        assert value == 3
        entry = m.protocol.cb_dirs[m.protocol.bank_of(ADDR)].lookup(
            m.protocol.addr_map.word_base(ADDR))
        assert not entry.fe_full(0)

    def test_ld_cb_waits_for_full(self):
        """Row 2: subsequent (blocking) loads in spin-waiting."""
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        fut = issue_pending(m, 0, ops.LoadCB(ADDR))
        assert not fut.done

    def test_st_cb0_services_no_callbacks(self):
        """Row 3 (st_cb0): not used standalone, services no callbacks."""
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        parked = issue_pending(m, 0, ops.LoadCB(ADDR))
        issue(m, 1, ops.StoreCB0(ADDR, 1))
        m.engine.run()
        assert not parked.done

    def test_st_cb1_services_one_callback(self):
        """Row 4: lock release."""
        m = machine()
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 0))
        parked = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in (0, 1)]
        issue(m, 3, ops.StoreCB1(ADDR, 1))
        m.engine.run()
        assert sum(f.done for f in parked) == 1

    def test_st_through_services_all_callbacks(self):
        """Row 5: general conflicting store / barrier release."""
        m = machine()
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 0))
        parked = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in (0, 1, 2)]
        issue(m, 3, ops.StoreThrough(ADDR, 1))
        m.engine.run()
        assert all(f.done for f in parked)

    def test_ld_and_st_cb0_is_the_ttas_guard(self):
        """Row 6: {ld}&{st_cb0} — T&T&S lock acquire."""
        m = machine()
        r = issue(m, 0, ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1),
                                   ld=ops.LdKind.PLAIN, st=ops.StKind.CB0))
        assert r.success

    def test_ld_and_st_cb1_signals_one(self):
        """Row 7: {ld}&{st_cb1} — Fetch&Add signalling one waiter."""
        m = machine()
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 0))
        parked = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in (0, 1)]
        issue(m, 2, ops.Atomic(ADDR, ops.AtomicKind.FETCH_ADD, (1,),
                               st=ops.StKind.CB1))
        m.engine.run()
        assert sum(f.done for f in parked) == 1

    def test_ld_and_st_cba_is_the_barrier_fetch_add(self):
        """Row 8: {ld}&{st_cbA} — Fetch&Add in a barrier wakes all."""
        m = machine()
        issue(m, 3, ops.LoadCB(ADDR))
        issue(m, 3, ops.StoreCB0(ADDR, 0))
        parked = [issue_pending(m, c, ops.LoadCB(ADDR)) for c in (0, 1)]
        issue(m, 2, ops.Atomic(ADDR, ops.AtomicKind.FETCH_ADD, (1,),
                               st=ops.StKind.CBA))
        m.engine.run()
        assert all(f.done for f in parked)

    def test_ld_cb_and_st_cb0_is_the_spinning_tas(self):
        """Row 9: {ld_cb}&{st_cb0} — spin-waiting T&S acquire."""
        m = machine()
        issue(m, 0, ops.LoadCB(ADDR))
        issue(m, 0, ops.StoreCB0(ADDR, 1))  # lock taken
        fut = issue_pending(m, 1, ops.Atomic(ADDR, ops.AtomicKind.TAS,
                                             (0, 1), ld=ops.LdKind.CB,
                                             st=ops.StKind.CB0))
        assert not fut.done  # held in the callback directory
        issue(m, 0, ops.StoreCB1(ADDR, 0))
        m.engine.run()
        assert fut.done and fut.value.success


class TestOpDataclasses:
    def test_atomic_defaults(self):
        op = ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1))
        assert op.ld is ops.LdKind.PLAIN
        assert op.st is ops.StKind.CBA

    def test_atomic_result_fields(self):
        r = ops.AtomicResult(old=7, success=False)
        assert (r.old, r.success) == (7, False)

    def test_fence_kinds(self):
        assert ops.FenceKind.SELF_INVL.value == "self_invl"
        assert ops.FenceKind.SELF_DOWN.value == "self_down"

    def test_unknown_atomic_kind_rejected(self):
        m = machine()
        op = ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1))
        op.kind = "bogus"
        with pytest.raises(ValueError):
            m.protocol.apply_rmw(op)
