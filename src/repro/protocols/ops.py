"""The memory-operation vocabulary threads yield to their core.

This is the paper's Table 1 plus the ordinary (DRF) access path:

* plain ``Load``/``Store`` — data-race-free accesses through the L1;
* ``LoadThrough`` (``ld_through``) — general conflicting load, bypasses the
  L1, serviced by the LLC, never blocks;
* ``LoadCB`` (``ld_cb``) — callback read: blocks in the callback directory
  until its F/E bit is full;
* ``StoreThrough`` (``st_through`` / ``st_cbA``) — general conflicting
  write-through; under the callback protocol it services *all* callbacks;
* ``StoreCB1`` (``st_cb1``) — write-through servicing exactly one callback;
* ``StoreCB0`` (``st_cb0``) — write-through servicing no callbacks;
* ``Atomic`` — an RMW composed of a {ld | ld_cb} and a
  {st_cb0 | st_cb1 | st_cbA} performed atomically at the LLC
  (or via M-state ownership under MESI);
* ``Fence`` — ``self_invl`` / ``self_down``;
* ``SpinUntil`` — MESI local spinning on an L1 copy (modelled as blocking
  until invalidation, with the iteration count accounted analytically);
* ``BackoffWait`` — one exponential back-off pause between LLC probes;
* ``Compute`` — non-memory work;
* ``DataBurst`` — a batch of DRF data accesses described at line
  granularity (the trace-driven data side of the simulation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class LdKind(enum.Enum):
    """The load half of an atomic (Table 1 naming)."""

    PLAIN = "ld"
    CB = "ld_cb"


class StKind(enum.Enum):
    """The store half of an atomic / a racy store variant."""

    CB0 = "st_cb0"
    CB1 = "st_cb1"
    CBA = "st_cbA"  # == st_through


class AtomicKind(enum.Enum):
    """RMW flavours used by the paper's synchronization algorithms."""

    TAS = "test&set"          # operands: (test, set) — writes iff value == test
    FETCH_ADD = "fetch&add"   # operands: (delta,) — always writes
    SWAP = "fetch&store"      # operands: (new,) — always writes
    TDEC = "test&dec"         # operands: () — decrements iff value != 0
    CAS = "compare&swap"      # operands: (expect, new) — writes iff equal


@dataclass
class AtomicResult:
    """Result handed back for an :class:`Atomic`: old value + whether the
    write happened (e.g. T&S success)."""

    old: int
    success: bool


class FenceKind(enum.Enum):
    SELF_INVL = "self_invl"
    SELF_DOWN = "self_down"


class Op:
    """Base class for everything a thread can yield."""

    __slots__ = ()


@dataclass
class Compute(Op):
    cycles: int


@dataclass
class Load(Op):
    """DRF load through the L1. Returns the word value."""

    addr: int


@dataclass
class Store(Op):
    """DRF store through the L1. ``value`` updates the word store (None for
    data whose value is irrelevant to control flow)."""

    addr: int
    value: Optional[int] = None


@dataclass
class LoadThrough(Op):
    """Racy load: bypass L1, read at the LLC. Never blocks. Consumes the
    issuer's F/E bit if a callback-directory entry exists (Table 1)."""

    addr: int


@dataclass
class LoadCB(Op):
    """Callback read: blocks in the callback directory until full."""

    addr: int


@dataclass
class StoreThrough(Op):
    """Racy write-through (st_cbA): wakes all callbacks."""

    addr: int
    value: int


@dataclass
class StoreCB1(Op):
    """Write-through waking exactly one callback (lock release)."""

    addr: int
    value: int


@dataclass
class StoreCB0(Op):
    """Write-through waking no callbacks (successful lock-acquiring RMW)."""

    addr: int
    value: int


@dataclass
class Atomic(Op):
    """Read-modify-write at the LLC (VIPS/callback) or via M state (MESI).

    Returns an :class:`AtomicResult`. The ``ld``/``st`` kinds select the
    callback behaviour of the two halves, written
    ``{ld|ld_cb}&{st_cb0|st_cb1|st_cbA}`` in the paper.
    """

    addr: int
    kind: AtomicKind
    operands: Tuple[int, ...] = ()
    ld: LdKind = LdKind.PLAIN
    st: StKind = StKind.CBA


@dataclass
class Fence(Op):
    kind: FenceKind


@dataclass
class SpinUntil(Op):
    """MESI local spin: block until ``pred(value)`` holds for the L1 copy,
    re-fetching after each invalidation. Returns the satisfying value."""

    addr: int
    pred: Callable[[int], bool]


@dataclass
class BackoffWait(Op):
    """One exponential back-off pause; ``attempt`` is the 0-based retry
    number. The core consults ``SystemConfig.backoff_delay``."""

    attempt: int


@dataclass
class LineAccess:
    """One line-granular data access inside a :class:`DataBurst`."""

    addr: int
    write: bool = False


@dataclass
class DataBurst(Op):
    """A batch of DRF data accesses.

    ``accesses`` lists the distinct line touches in order; ``extra_hits``
    is the number of additional same-line accesses, charged as L1 hits in
    bulk (1 cycle + 1 L1 access each). This keeps the event count
    proportional to the number of *lines*, not accesses.
    """

    accesses: List[LineAccess] = field(default_factory=list)
    extra_hits: int = 0
