"""Reader-writer lock extension."""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols.ops import Compute
from repro.sync import style_for
from repro.sync.rwlock import RWLock

LABELS = ("Invalidation", "BackOff-0", "BackOff-10", "CB-All", "CB-One")


def run_rw(label, readers=3, writers=1, iterations=4):
    cfg = config_for(label, num_cores=4)
    machine = Machine(cfg)
    lock = RWLock(style_for(cfg))
    lock.setup(machine.layout, 4)
    for addr, value in lock.initial_values().items():
        machine.store.write(addr, value)

    state = {"readers": 0, "writers": 0, "violations": 0,
             "max_readers": 0}
    data = machine.layout.alloc_sync_word()

    def check():
        if state["writers"] > 1:
            state["violations"] += 1
        if state["writers"] and state["readers"]:
            state["violations"] += 1
        state["max_readers"] = max(state["max_readers"], state["readers"])

    def reader(ctx):
        for _ in range(iterations):
            yield Compute(1 + ctx.rng.randrange(50))
            yield from lock.acquire_read(ctx)
            state["readers"] += 1
            check()
            yield Compute(10 + ctx.rng.randrange(20))
            state["readers"] -= 1
            yield from lock.release_read(ctx)

    def writer(ctx):
        for _ in range(iterations):
            yield Compute(1 + ctx.rng.randrange(80))
            yield from lock.acquire_write(ctx)
            state["writers"] += 1
            check()
            value = machine.store.read(data)
            yield Compute(15)
            machine.store.write(data, value + 1)
            state["writers"] -= 1
            yield from lock.release_write(ctx)

    machine.spawn([reader] * readers + [writer] * writers)
    stats = machine.run()
    return machine, stats, state, data, writers * iterations


@pytest.mark.parametrize("label", LABELS)
class TestExclusion:
    def test_no_reader_writer_overlap(self, label):
        _m, _s, state, _d, _e = run_rw(label)
        assert state["violations"] == 0

    def test_writer_updates_never_lost(self, label):
        machine, _s, _state, data, expected = run_rw(label)
        assert machine.store.read(data) == expected


def test_readers_do_share():
    """At least one schedule exhibits genuinely concurrent readers."""
    _m, _s, state, _d, _e = run_rw("CB-All", readers=4, writers=0,
                                   iterations=6)
    assert state["max_readers"] >= 2


@pytest.mark.parametrize("label", ("Invalidation", "CB-One"))
def test_writer_only_degenerates_to_mutex(label):
    machine, _s, state, data, expected = run_rw(label, readers=0,
                                                writers=4, iterations=3)
    assert state["violations"] == 0
    assert machine.store.read(data) == expected


def test_episode_categories_recorded():
    _m, stats, _state, _d, _e = run_rw("CB-One")
    assert stats.episode_latencies["rwlock_read_acquire"]
    assert stats.episode_latencies["rwlock_write_acquire"]
