"""Synchronization algorithms in MESI / VIPS / callback encodings."""

from repro.sync.base import SyncPrimitive, SyncStyle, style_for
from repro.sync.clh import CLHLock
from repro.sync.dissemination_barrier import DisseminationBarrier
from repro.sync.mcs import MCSLock
from repro.sync.rwlock import RWLock
from repro.sync.registry import (BARRIERS, LOCKS, NAIVE_SYNC, SCALABLE_SYNC,
                                 make_barrier, make_lock, make_signal_wait,
                                 sync_kit)
from repro.sync.signal_wait import SignalWait
from repro.sync.sr_barrier import SRBarrier
from repro.sync.tas import TASLock
from repro.sync.ticket import TicketLock
from repro.sync.treesr_barrier import TreeSRBarrier
from repro.sync.ttas import TTASLock

__all__ = [
    "BARRIERS",
    "CLHLock",
    "DisseminationBarrier",
    "LOCKS",
    "MCSLock",
    "RWLock",
    "NAIVE_SYNC",
    "SCALABLE_SYNC",
    "SRBarrier",
    "SignalWait",
    "SyncPrimitive",
    "SyncStyle",
    "TASLock",
    "TTASLock",
    "TicketLock",
    "TreeSRBarrier",
    "make_barrier",
    "make_lock",
    "make_signal_wait",
    "style_for",
    "sync_kit",
]
