"""Deterministic re-execution checkpoints.

A checkpoint of this simulator is **not** a serialized heap — simulated
threads are generator continuations, which cannot be pickled. It is the
pair that, for a deterministic machine, is provably equivalent:

* the **replay recipe** — the content-addressed
  :class:`~repro.orchestrate.jobspec.JobSpec` (plus the fault plan, if
  one was attached) that rebuilds the machine bit-identically;
* a **cycle boundary** ``C`` and the full canonical **state capture**
  (with its SHA-256 fingerprint) of the machine after every event
  before ``C`` has executed and none at-or-after it.

Restoring means rebuilding the machine from the recipe and
fast-forwarding — re-executing history up to the boundary — then
*verifying* the capture matches the checkpoint. The verification is the
point: a restore is only declared valid when the machine provably
reached the exact recorded state, so code drift, a changed seed, or a
corrupted blob can never silently resume into a diverged run.

:class:`Checkpointer` drives a checkpointed run end to end: resume from
the newest valid checkpoint in a :class:`~repro.ckpt.store.CheckpointStore`,
save a checkpoint at every crossed boundary plus a final one at
completion, and — black-box-recorder style — persist the terminal
snapshot, a ring of recent boundary digests, and the structured
diagnosis when the run dies of a deadlock, livelock, or budget timeout,
so ``repro-ckpt replay`` can re-execute the approach to the hang with
telemetry and the race monitor attached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.ckpt.state import (capture_state, diff_captures,
                              functional_fingerprint, state_fingerprint)
from repro.config import config_for
from repro.core.machine import Machine
from repro.orchestrate.jobspec import JobSpec
from repro.sim.engine import (DeadlockError, LivenessError, SimulationError,
                              SimulationTimeout)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckpt.store import CheckpointStore
    from repro.obs.flight import FlightRecorder
    from repro.obs.telemetry import Telemetry
    from repro.resilience.faults import FaultPlan
    from repro.resilience.resilience import Resilience
    from repro.sim.stats import Stats
    from repro.workloads.base import Workload

__all__ = ["Checkpoint", "CheckpointMismatchError", "Checkpointer",
           "build_machine", "restore_checkpoint"]

#: Format version of the checkpoint blob.
CKPT_VERSION = 1


class CheckpointMismatchError(SimulationError):
    """Re-execution did not reproduce the checkpointed state.

    ``divergence`` maps each diverging component (engine, store, stats,
    network, protocol, cores) to its digest pair — the restore's
    built-in bisection of *where* determinism broke.
    """

    def __init__(self, message: str,
                 divergence: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.divergence = divergence or {}


@dataclass
class Checkpoint:
    """One boundary snapshot: recipe + capture + fingerprints."""

    spec: Dict[str, Any]
    boundary: int
    state: Dict[str, Any]
    fingerprint: str
    functional: str
    clock: int
    events_executed: int
    plan: Optional[Dict[str, Any]] = None
    #: Whether telemetry was attached when this was captured (telemetry
    #: wraps network handlers, perturbing the full capture; restores on
    #: the other side of the divide verify functionally).
    observed: bool = False
    final: bool = False
    progress: Dict[str, int] = field(default_factory=dict)
    version: int = CKPT_VERSION

    @property
    def job_key(self) -> str:
        return JobSpec.from_dict(self.spec).job_key()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "spec": self.spec,
            "plan": self.plan,
            "boundary": self.boundary,
            "clock": self.clock,
            "events_executed": self.events_executed,
            "observed": self.observed,
            "final": self.final,
            "progress": dict(self.progress),
            "fingerprint": self.fingerprint,
            "functional": self.functional,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Checkpoint":
        return cls(
            spec=dict(data["spec"]),
            plan=data.get("plan"),
            boundary=int(data["boundary"]),
            clock=int(data["clock"]),
            events_executed=int(data["events_executed"]),
            observed=bool(data.get("observed", False)),
            final=bool(data.get("final", False)),
            progress=dict(data.get("progress", {})),
            fingerprint=data["fingerprint"],
            functional=data["functional"],
            state=dict(data["state"]),
            version=int(data.get("version", CKPT_VERSION)),
        )

    def describe(self) -> str:
        tag = "final" if self.final else f"cycle {self.boundary}"
        return (f"{self.job_key[:12]} @ {tag} "
                f"(clock {self.clock}, {self.events_executed} events, "
                f"{self.fingerprint[:12]})")


def take_checkpoint(machine: Machine, spec: JobSpec, boundary: int,
                    plan: Optional["FaultPlan"] = None,
                    final: bool = False) -> Checkpoint:
    """Capture ``machine`` at ``boundary`` (caller guarantees every
    event before the boundary has executed and none at-or-after it)."""
    state = capture_state(machine)
    return Checkpoint(
        spec=spec.to_dict(),
        plan=plan.to_dict() if plan is not None else None,
        boundary=boundary,
        clock=machine.engine.now,
        events_executed=machine.events_executed,
        observed=machine.telemetry is not None,
        final=final,
        progress={str(k): v for k, v in machine.progress().items()},
        fingerprint=state_fingerprint(state),
        functional=functional_fingerprint(machine),
        state=state,
    )


def build_machine(spec: JobSpec, plan: Optional["FaultPlan"] = None,
                  telemetry: Optional["Telemetry"] = None,
                  resilience: Optional["Resilience"] = None,
                  workload: Optional["Workload"] = None,
                  prepare: Optional[Callable[[Machine], None]] = None,
                  ) -> Machine:
    """Rebuild a machine from its replay recipe, threads spawned.

    ``plan`` attaches a fault injector replaying the recorded fault
    schedule (merged into ``resilience`` when both are given).
    ``workload`` overrides the registry lookup with a prepared workload
    object — the caller then owns recipe reproducibility. ``prepare``
    runs after construction but *before* threads spawn — the attachment
    window pre-spawn observers (e.g. the race monitor) need.
    """
    if workload is None:
        # Lazy: the registry package reaches back into the harness.
        from repro.orchestrate.registry import build_workload
        workload = build_workload(spec.workload, spec.workload_params)
    if plan is not None:
        from repro.resilience.resilience import Resilience, ResilienceConfig
        if resilience is None:
            resilience = Resilience(ResilienceConfig(plan=plan))
        elif resilience.config.plan is None:
            resilience.config.plan = plan
    config = config_for(spec.config_label, seed=spec.seed,
                        **spec.config_overrides)
    machine = Machine(config, telemetry=telemetry, resilience=resilience)
    if prepare is not None:
        prepare(machine)
    workload.install(machine)
    return machine


def restore_checkpoint(ckpt: Checkpoint,
                       telemetry: Optional["Telemetry"] = None,
                       resilience: Optional["Resilience"] = None,
                       workload: Optional["Workload"] = None,
                       prepare: Optional[Callable[[Machine], None]] = None,
                       verify: str = "auto") -> Machine:
    """Rebuild + fast-forward to the checkpoint's boundary, verified.

    ``verify`` is ``"full"`` (the entire capture must match),
    ``"functional"`` (word-store digest only), ``"none"``, or ``"auto"``
    — full when neither side attached telemetry, else functional.
    Raises :class:`CheckpointMismatchError` when re-execution does not
    reproduce the recorded state.
    """
    if verify not in ("auto", "full", "functional", "none"):
        raise ValueError(f"unknown verify level: {verify!r}")
    from repro.resilience.faults import FaultPlan
    plan = FaultPlan.from_dict(ckpt.plan) if ckpt.plan else None
    machine = build_machine(JobSpec.from_dict(ckpt.spec), plan=plan,
                            telemetry=telemetry, resilience=resilience,
                            workload=workload, prepare=prepare)
    machine.fast_forward(ckpt.boundary)
    if verify == "auto":
        observed = ckpt.observed or telemetry is not None
        verify = "functional" if observed else "full"
    if verify == "full":
        actual = capture_state(machine)
        fingerprint = state_fingerprint(actual)
        if fingerprint != ckpt.fingerprint:
            divergence = diff_captures(ckpt.state, actual)
            raise CheckpointMismatchError(
                f"restore of {ckpt.describe()} diverged in "
                f"{', '.join(divergence) or 'fingerprint'}",
                divergence=divergence)
    elif verify == "functional":
        actual = functional_fingerprint(machine)
        if actual != ckpt.functional:
            raise CheckpointMismatchError(
                f"restore of {ckpt.describe()} diverged functionally "
                f"({ckpt.functional[:12]} != {actual[:12]})",
                divergence={"store": f"{ckpt.functional[:12]} != "
                                     f"{actual[:12]}"})
    return machine


class Checkpointer:
    """Drives one checkpointed (and resumable) simulation.

    ``every`` is the boundary period in cycles; ``ring`` bounds the
    in-memory flight recorder of recent boundary digests persisted on a
    failure. ``boundary_hook``, called with each crossed boundary
    *before* that boundary's checkpoint is saved, exists for crash
    testing (a SIGKILL there dies strictly between durable checkpoints).
    """

    def __init__(self, spec: JobSpec, store: "CheckpointStore",
                 every: int, plan: Optional["FaultPlan"] = None,
                 ring: int = 8,
                 telemetry: Optional["Telemetry"] = None,
                 resilience: Optional["Resilience"] = None,
                 workload: Optional["Workload"] = None,
                 boundary_hook: Optional[Callable[[int], None]] = None,
                 flight: Optional["FlightRecorder"] = None,
                 ) -> None:
        if every <= 0:
            raise ValueError("checkpoint period must be positive")
        self.spec = spec
        self.store = store
        self.every = every
        if plan is None and resilience is not None:
            # Adopt an attached injector's schedule so the checkpoint's
            # replay recipe records the faults it must re-execute.
            plan = resilience.config.plan
        self.plan = plan
        self.telemetry = telemetry
        self.resilience = resilience
        self.workload = workload
        self.boundary_hook = boundary_hook
        #: Optional host-domain flight recorder whose snapshot joins the
        #: black-box payload (what was the *fleet* doing when this run
        #: deadlocked?).
        self.flight = flight
        self.machine: Optional[Machine] = None
        #: Boundary cycle this run resumed from, or None (fresh start).
        self.resumed_from: Optional[int] = None
        #: Light flight-recorder entries for the last ``ring`` boundaries.
        self.ring: deque = deque(maxlen=max(1, ring))
        self.saved: List[int] = []

    @property
    def job_key(self) -> str:
        return self.spec.job_key()

    # ----------------------------------------------------------- prepare

    def prepare(self, resume: bool = True) -> Machine:
        """Build the machine — restored from the newest checkpoint that
        verifies when ``resume`` is true, else from scratch. A stored
        checkpoint that fails verification is quarantined and the next
        older one is tried; corrupt blobs were already quarantined by
        the store. Falls back to a fresh build when nothing survives."""
        if self.machine is not None:
            return self.machine
        if resume:
            ckpt = self.store.latest(self.job_key)
            while ckpt is not None:
                try:
                    self.machine = restore_checkpoint(
                        ckpt, telemetry=self.telemetry,
                        resilience=self.resilience, workload=self.workload)
                    self.resumed_from = ckpt.boundary
                    self.ring.append(self._ring_entry(ckpt))
                    return self.machine
                except CheckpointMismatchError as exc:
                    self.store.quarantine_checkpoint(
                        self.job_key, ckpt.boundary, reason=str(exc))
                    ckpt = self.store.latest(self.job_key)
        self.machine = build_machine(
            self.spec, plan=self.plan, telemetry=self.telemetry,
            resilience=self.resilience, workload=self.workload)
        return self.machine

    # --------------------------------------------------------------- run

    def run(self, resume: bool = True) -> "Stats":
        """Run to completion, checkpointing at every crossed boundary
        plus a final checkpoint; on a deadlock / livelock / timeout the
        black-box payload is persisted before the error propagates."""
        machine = self.prepare(resume=resume)
        try:
            stats = machine.run(checkpoint_every=self.every,
                                on_checkpoint=self._at_boundary)
        except (DeadlockError, LivenessError, SimulationTimeout) as exc:
            self.persist_failure(exc)
            raise
        final = take_checkpoint(machine, self.spec,
                                boundary=machine.engine.now + 1,
                                plan=self.plan, final=True)
        self.store.save(final)
        self.saved.append(final.boundary)
        self.ring.append(self._ring_entry(final))
        return stats

    def _at_boundary(self, boundary: int) -> None:
        if self.boundary_hook is not None:
            self.boundary_hook(boundary)
        ckpt = take_checkpoint(self.machine, self.spec, boundary,
                               plan=self.plan)
        self.store.save(ckpt)
        self.saved.append(boundary)
        self.ring.append(self._ring_entry(ckpt))

    @staticmethod
    def _ring_entry(ckpt: Checkpoint) -> Dict[str, Any]:
        return {"boundary": ckpt.boundary, "clock": ckpt.clock,
                "events_executed": ckpt.events_executed,
                "fingerprint": ckpt.fingerprint,
                "functional": ckpt.functional,
                "progress": dict(ckpt.progress)}

    # ---------------------------------------------------------- blackbox

    def persist_failure(self, error: BaseException) -> Dict[str, Any]:
        """Black-box recorder: persist the terminal snapshot, the recent
        boundary ring, and the structured diagnosis for later replay."""
        from repro.resilience.classify import classify_failure
        machine = self.machine
        snapshot = take_checkpoint(machine, self.spec,
                                   boundary=machine.engine.now + 1,
                                   plan=self.plan)
        diagnosis = getattr(error, "diagnosis", None)
        payload = {
            "checkpoint": snapshot.to_dict(),
            "ring": list(self.ring),
            "error": {"kind": classify_failure(error),
                      "type": type(error).__name__,
                      "message": str(error)},
            "diagnosis": (diagnosis.as_dict()
                          if diagnosis is not None else None),
        }
        if self.flight is not None:
            payload["flight"] = self.flight.payload()
        self.store.save_blackbox(self.job_key, payload)
        return payload
