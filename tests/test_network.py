"""Network timing and traffic accounting."""

import pytest

from repro.config import SystemConfig
from repro.noc.messages import MsgKind, message_bytes
from repro.noc.network import Network
from repro.sim.engine import Engine
from repro.sim.stats import Stats


def make_network(cores=16):
    cfg = SystemConfig(num_cores=cores)
    engine = Engine()
    stats = Stats()
    return cfg, engine, stats, Network(cfg, engine, stats)


class TestMessageBytes:
    def test_control_messages_are_header_only(self):
        assert message_bytes(MsgKind.GETS, 64, 8, 8) == 8
        assert message_bytes(MsgKind.INV, 64, 8, 8) == 8
        assert message_bytes(MsgKind.ACK, 64, 8, 8) == 8

    def test_line_data_carries_line(self):
        assert message_bytes(MsgKind.DATA, 64, 8, 8) == 72
        assert message_bytes(MsgKind.PUTM, 64, 8, 8) == 72

    def test_word_data_carries_word(self):
        for kind in (MsgKind.DATA_WORD, MsgKind.WAKEUP,
                     MsgKind.STORE_THROUGH, MsgKind.ATOMIC):
            assert message_bytes(kind, 64, 8, 8) == 16


class TestLatency:
    def test_local_delivery_is_one_cycle(self):
        _cfg, _e, _s, net = make_network()
        assert net.message_latency(3, 3, MsgKind.DATA) == 1

    def test_remote_control_latency(self):
        cfg, _e, _s, net = make_network()
        hops = net.mesh.hops(0, 5)
        assert net.message_latency(0, 5, MsgKind.GETS) == hops * cfg.switch_latency

    def test_data_message_adds_serialization(self):
        cfg, _e, _s, net = make_network()
        hops = net.mesh.hops(0, 5)
        flits = cfg.flits_for(cfg.line_msg_bytes)
        assert (net.message_latency(0, 5, MsgKind.DATA)
                == hops * cfg.switch_latency + flits - 1)

    def test_round_trip(self):
        _cfg, _e, _s, net = make_network()
        rt = net.round_trip(0, 5, MsgKind.GETS, MsgKind.DATA)
        assert rt == (net.message_latency(0, 5, MsgKind.GETS)
                      + net.message_latency(5, 0, MsgKind.DATA))


class TestTrafficAccounting:
    def test_send_books_flit_hops(self):
        cfg, engine, stats, net = make_network()
        hops = net.mesh.hops(0, 5)
        net.send(0, 5, MsgKind.DATA, lambda: None)
        flits = cfg.flits_for(cfg.line_msg_bytes)
        assert stats.flit_hops == flits * hops
        assert stats.byte_hops == cfg.line_msg_bytes * hops
        assert stats.messages == 1
        assert stats.msg_kinds["Data"] == 1

    def test_local_send_counts_message_but_no_traffic(self):
        _cfg, engine, stats, net = make_network()
        net.send(2, 2, MsgKind.GETS, lambda: None)
        assert stats.messages == 1
        assert stats.flit_hops == 0

    def test_handler_scheduled_at_latency(self):
        _cfg, engine, stats, net = make_network()
        seen = []
        latency = net.send(0, 5, MsgKind.GETS, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [latency]
