"""Static and dynamic analysis of the four synchronization encodings.

Two complementary checkers over the op vocabulary of
:mod:`repro.protocols.ops`:

* the **static encoding linter** (:mod:`repro.analyze.linter`) drives
  every sync primitive and workload generator symbolically, per style,
  and checks the recorded ops against the paper's Table-1 discipline
  (:mod:`repro.analyze.rules`), plus an AST pass
  (:mod:`repro.analyze.astlint`) for ops constructed but never yielded;
* the **dynamic race sanitizer** (:mod:`repro.analyze.hb`) replays a
  recorded trace through a FastTrack-style vector-clock happens-before
  engine and reports unannotated conflicting accesses (errors) and
  annotated-but-never-racing words (perf advisories).

Both produce machine-readable :class:`repro.analyze.findings.Finding`
records; the ``repro-analyze`` CLI (:mod:`repro.analyze.cli`) fronts
them for CI.
"""

from repro.analyze.coverage import lint_spec_coverage
from repro.analyze.findings import Finding, Report, Severity
from repro.analyze.hb import HBEngine, RaceMonitor, analyze_trace
from repro.analyze.linter import (DEFAULT_WORKLOADS, PRIMITIVE_SPECS,
                                  PrimitiveSpec, lint_all, lint_primitive,
                                  lint_workload)
from repro.analyze.rules import RULES, Rule

__all__ = [
    "Finding", "Report", "Severity", "Rule", "RULES",
    "HBEngine", "RaceMonitor", "analyze_trace",
    "PrimitiveSpec", "PRIMITIVE_SPECS", "DEFAULT_WORKLOADS",
    "lint_all", "lint_primitive", "lint_workload",
    "lint_spec_coverage",
]
