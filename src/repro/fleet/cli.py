"""``repro-fleet`` — operate a self-healing worker fleet.

Subcommands:

* ``up`` — run a supervisor in the foreground (all the knobs of
  ``python -m repro.fleet.supervisor``; SIGTERM/Ctrl-C drains the
  fleet and exits);
* ``status`` — print the supervisor's published snapshot plus every
  registered worker pidfile (hand-spawned ones included), each with a
  live/dead verdict from the pid liveness check;
* ``scale`` — ask the running supervisor for a new desired size via
  the ``control.json`` mailbox (clamped to its ``[min, max]``);
* ``drain`` — scale to zero gracefully: every worker finishes its
  current job and deregisters;
* ``clear`` — lift a slot's quarantine (the only way back in: the
  budget never un-benches a flapper on its own);
* ``drill`` — the partition drill / parity control experiment
  (:mod:`repro.fleet.drill`).

The mailbox commands need no HTTP and no supervisor pid — they write
one JSON file under ``<root>/fleet/`` that the supervisor consumes on
its next tick, which is exactly what makes them safe to run while the
supervisor is mid-restart.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.fleet.paths import (control_path, fleet_dir, pid_alive,
                               read_worker_metas, supervisor_state_path)
from repro.ioutil import atomic_write_json, read_checked_json

__all__ = ["main"]


def _post_control(root: str, update: Dict[str, Any]) -> Dict[str, Any]:
    """Merge ``update`` into the control mailbox (several commands may
    land between two supervisor ticks; last writer per key wins, other
    keys survive)."""
    path = control_path(fleet_dir(root))
    try:
        doc = read_checked_json(path)
        if not isinstance(doc, dict):
            doc = {}
    except (OSError, ValueError):
        doc = {}
    doc.update(update)
    atomic_write_json(path, doc, indent=2)
    return doc


def _cmd_status(args: argparse.Namespace) -> int:
    root = fleet_dir(args.root)
    try:
        snap = read_checked_json(supervisor_state_path(root))
    except (OSError, ValueError):
        snap = None
    if snap is None:
        print("supervisor: no snapshot (never started, or registry "
              "wiped)")
    else:
        pid = int(snap.get("pid", 0))
        alive = pid_alive(pid)
        age = time.time() - float(snap.get("t", 0.0))
        print(f"supervisor: pid {pid} "
              f"({'alive' if alive else 'DEAD'}), "
              f"snapshot {age:.1f}s old, tick {snap.get('ticks')}")
        print(f"  desired {snap.get('desired')} in "
              f"[{snap.get('min')}, {snap.get('max')}], "
              f"states {snap.get('states')}")
        counters = snap.get("counters") or {}
        print(f"  spawns {counters.get('spawns', 0)}, "
              f"crashes {counters.get('crashes', 0)}, "
              f"adoptions {counters.get('adoptions', 0)}, "
              f"clean exits {counters.get('clean_exits', 0)}")
        quarantined = snap.get("quarantined") or {}
        for slot, reason in sorted(quarantined.items()):
            print(f"  quarantined {slot}: {reason}")
    metas = read_worker_metas(root)
    print(f"workers: {len(metas)} registered")
    for meta in metas:
        state = "alive" if meta.get("alive") else "dead"
        print(f"  {meta.get('worker_id')}: pid {meta.get('pid')} "
              f"({state}) -> {meta.get('server')}")
    if args.json:
        print(json.dumps({"supervisor": snap, "workers": metas},
                         indent=2, sort_keys=True, default=str))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    _post_control(args.root, {"desired": args.to})
    print(f"requested desired={args.to} (applied on the supervisor's "
          f"next tick)")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    _post_control(args.root, {"drain": True})
    print("requested drain (fleet scales to 0 gracefully)")
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    _post_control(args.root, {"clear_quarantine": args.slots})
    print(f"requested quarantine clear for {', '.join(args.slots)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``up`` and ``drill`` forward everything after the verb verbatim.
    # argparse's REMAINDER refuses a leading optional right after a
    # subparser (``repro-fleet up --server ...`` dies with
    # "unrecognized arguments"), so dispatch these two before parsing.
    if argv[:1] in (["up"], ["drill"]):
        rest = argv[1:]
        if rest[:1] == ["--"]:
            rest = rest[1:]
        if argv[0] == "up":
            from repro.fleet.supervisor import main as supervisor_main
            return supervisor_main(rest)
        from repro.fleet.drill import main as drill_main
        return drill_main(rest)
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Operate a self-healing repro-serve worker fleet.")
    sub = parser.add_subparsers(dest="command", required=True)

    up = sub.add_parser("up", help="run a supervisor in the foreground")
    up.add_argument("args", nargs=argparse.REMAINDER,
                    help="flags for repro.fleet.supervisor "
                         "(--server, --root, --min, --max, ...)")

    status = sub.add_parser("status", help="snapshot + worker registry")
    status.add_argument("--root", required=True)
    status.add_argument("--json", action="store_true")
    status.set_defaults(func=_cmd_status)

    scale = sub.add_parser("scale", help="request a new desired size")
    scale.add_argument("--root", required=True)
    scale.add_argument("--to", type=int, required=True)
    scale.set_defaults(func=_cmd_scale)

    drain = sub.add_parser("drain", help="gracefully scale to zero")
    drain.add_argument("--root", required=True)
    drain.set_defaults(func=_cmd_drain)

    clear = sub.add_parser("clear", help="lift slot quarantines")
    clear.add_argument("--root", required=True)
    clear.add_argument("slots", nargs="+", metavar="SLOT")
    clear.set_defaults(func=_cmd_clear)

    drill = sub.add_parser("drill", help="partition drill / parity run")
    drill.add_argument("args", nargs=argparse.REMAINDER,
                       help="flags for repro.fleet.drill "
                            "(--root, --jobs, --seed, --parity)")

    args = parser.parse_args(argv)
    if args.command == "up":
        from repro.fleet.supervisor import main as supervisor_main
        return supervisor_main(args.args)
    if args.command == "drill":
        from repro.fleet.drill import main as drill_main
        return drill_main(args.args)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
