"""repro.chaos — deterministic host-level fault injection.

PR 3's :mod:`repro.resilience` proved the paper's synchronization
machinery correct under faults *inside* the simulated machine; this
package holds the host plane — the journaled queue, the atomic-write
protocol, the HTTP fleet — to the same standard before it gets sharded
across hosts (ROADMAP item 2). Three instruments, all driven by
pre-drawn, content-addressed plans so every failure is replayable:

* **fault shims** — :class:`~repro.chaos.fio.FaultyIO` injects
  ENOSPC/torn-write/EIO/slow-fsync faults at the named
  :mod:`repro.iohooks` sites; :class:`~repro.chaos.httpshim.
  ChaosTransport` drops, delays, truncates, and 5xx's the wire between
  :class:`~repro.serve.client.ServeClient` and the API. The empty plan
  is asserted bit-identical to no shim (:mod:`repro.chaos.parity`);
* **crash-point exploration** — :mod:`repro.chaos.crashpoints`
  SIGKILLs a lifecycle subprocess at every journal append/fsync/rename
  point and verifies recovery loses and duplicates nothing;
* **campaigns & drills** — :mod:`repro.chaos.campaign` runs the whole
  service under a plan and scripts the disk-full → read-only → heal →
  recover round-trip the degraded-mode runbook documents.

CLI: ``repro-chaos campaign|replay|crashpoints|drill|parity``.
"""

from repro.chaos.campaign import run_campaign, run_drill
from repro.chaos.crashpoints import enumerate_crash_points, sweep
from repro.chaos.fio import FaultyIO, KillAtSite, SiteCounter
from repro.chaos.httpshim import ChaosTransport
from repro.chaos.parity import empty_plan_parity
from repro.chaos.plan import ChaosPlan, HostFault, make_chaos_plan

__all__ = [
    "ChaosPlan",
    "ChaosTransport",
    "FaultyIO",
    "HostFault",
    "KillAtSite",
    "SiteCounter",
    "empty_plan_parity",
    "enumerate_crash_points",
    "make_chaos_plan",
    "run_campaign",
    "run_drill",
    "sweep",
]
