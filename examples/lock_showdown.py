#!/usr/bin/env python
"""Lock showdown: how each lock algorithm behaves under each technique.

Reproduces the essence of the paper's Figure 20 lock columns on a
contended critical section: for T&S, T&T&S, and the CLH queue lock, it
reports acquire latency, LLC synchronization accesses, and traffic under
every coherence technique — including both callback modes, which shows
why write_CB1 (waking one spinner instead of all) matters for locks.

Run:  python examples/lock_showdown.py [--cores 16] [--iterations 8]
"""

import argparse

from repro.config import PAPER_CONFIGS
from repro.harness.runner import run_config
from repro.workloads import LockMicrobench


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=8)
    args = parser.parse_args()

    for lock_name in ("tas", "ttas", "clh"):
        print(f"=== {lock_name.upper()} lock, {args.cores} cores, "
              f"{args.iterations} acquires/thread ===")
        header = (f"{'config':14s} {'acquire lat':>12s} {'LLC sync':>10s} "
                  f"{'flit-hops':>10s} {'cb parked':>10s}")
        print(header)
        print("-" * len(header))
        for label in PAPER_CONFIGS:
            workload = LockMicrobench(lock_name,
                                      iterations=args.iterations)
            result = run_config(label, workload, num_cores=args.cores)
            print(f"{label:14s} "
                  f"{result.episode_mean('lock_acquire'):12.1f} "
                  f"{result.stats.llc_sync_accesses:10d} "
                  f"{result.stats.flit_hops:10d} "
                  f"{result.stats.cb_blocked_reads:10d}")
        print()

    print("Things to notice:")
    print(" * BackOff-0 maximizes LLC accesses (it spins on the LLC);")
    print(" * larger back-off limits trade those accesses for latency;")
    print(" * CB-One parks spinners in the callback directory: few LLC")
    print("   accesses AND low latency — no tuning knob required;")
    print(" * for T&T&S, CB-All wakes every spinner per release and wastes")
    print("   work; CLH has one spinner per word, so both modes match.")


if __name__ == "__main__":
    main()
