"""Tests for repro.chaos: fault shims, crash-point exploration, and
the graceful-degradation machinery they force on the service plane."""

import errno
import json
import os

import pytest

from repro import iohooks
from repro.chaos.campaign import run_campaign, run_drill
from repro.chaos.crashpoints import enumerate_crash_points, run_crash_point
from repro.chaos.fio import FaultyIO, SiteCounter
from repro.chaos.httpshim import ChaosTransport
from repro.chaos.parity import empty_plan_parity
from repro.chaos.plan import (HTTP_DROP, HTTP_DROP_RESPONSE, HTTP_ERROR,
                              HTTP_TRUNCATE, READ_EIO, TORN_WRITE,
                              WRITE_ENOSPC, FSYNC_ENOSPC, ChaosPlan,
                              HostFault, make_chaos_plan)
from repro.ioutil import (CorruptArtifactError, atomic_write_json,
                          read_checked_json, sha256_of)
from repro.orchestrate.jobspec import JobSpec
from repro.serve.api import ServeService
from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.journal import Journal
from repro.serve.model import (HEALTH_OK, HEALTH_READ_ONLY,
                               BacklogExceededError,
                               ServiceUnavailableError)
from repro.serve.queue import JobQueue


def spec_for(seed=1):
    return JobSpec(config_label="CB-All", workload="lock",
                   workload_params={"lock_name": "ttas", "iterations": 2},
                   config_overrides={"num_cores": 4}, seed=seed)


def record_for(spec, cycles=123):
    return {"spec": spec.to_dict(),
            "result": {"cycles": cycles, "traffic": 7, "llc_sync": 3},
            "meta": {"wall_s": 0.01}}


@pytest.fixture(autouse=True)
def _clean_hooks():
    """A failed test must not leave a handler installed process-wide."""
    yield
    iohooks.uninstall()


# ---------------------------------------------------------------- plans

class TestChaosPlan:
    def test_content_addressed_and_deterministic(self):
        a = make_chaos_plan(seed=9, io_faults=3, http_faults=3)
        b = make_chaos_plan(seed=9, io_faults=3, http_faults=3)
        c = make_chaos_plan(seed=10, io_faults=3, http_faults=3)
        assert a.plan_key() == b.plan_key()
        assert a.plan_key() != c.plan_key()
        assert a.canonical_json() == b.canonical_json()

    def test_key_independent_of_fault_order(self):
        f1 = HostFault(kind=WRITE_ENOSPC, site="journal.append.write")
        f2 = HostFault(kind=READ_EIO, site="ioutil.read", nth=3)
        assert ChaosPlan(faults=[f1, f2]).plan_key() == \
            ChaosPlan(faults=[f2, f1]).plan_key()

    def test_round_trip_and_save_load(self, tmp_path):
        plan = make_chaos_plan(seed=4)
        again = ChaosPlan.from_dict(plan.to_dict())
        assert again.plan_key() == plan.plan_key()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert ChaosPlan.load(path).plan_key() == plan.plan_key()

    def test_load_rejects_tampered_key(self, tmp_path):
        plan = make_chaos_plan(seed=4)
        path = str(tmp_path / "plan.json")
        atomic_write_json(path, {"plan": plan.to_dict(),
                                 "plan_key": "f" * 64})
        with pytest.raises(ValueError):
            ChaosPlan.load(path)


# ------------------------------------------------------------- IO shims

class TestFaultyIO:
    def test_write_enospc_at_nth_hit(self, tmp_path):
        plan = ChaosPlan(faults=[HostFault(
            kind=WRITE_ENOSPC, site="journal.append.write", nth=2)])
        journal = Journal(str(tmp_path / "j.jsonl"))
        with FaultyIO(plan) as fio:
            journal.append("submit", sub="a-1", job_key="k1")
            with pytest.raises(OSError) as exc:
                journal.append("submit", sub="a-2", job_key="k2")
            assert exc.value.errno == errno.ENOSPC
        journal.close()
        assert fio.injected and \
            fio.injected[0]["kind"] == WRITE_ENOSPC
        entries = Journal.replay(str(tmp_path / "j.jsonl"))
        assert [e["sub"] for e in entries] == ["a-1"]

    def test_fsync_enospc_on_atomic_write_cleans_tmp(self, tmp_path):
        plan = ChaosPlan(faults=[HostFault(
            kind=FSYNC_ENOSPC, site="ioutil.tmp.fsync")])
        path = str(tmp_path / "a.json")
        with FaultyIO(plan):
            with pytest.raises(OSError):
                atomic_write_json(path, {"v": 1})
        assert not os.path.exists(path)
        assert not [n for n in os.listdir(str(tmp_path))
                    if n.endswith(".tmp")]

    def test_torn_journal_append_replays_complete_prefix(self, tmp_path):
        plan = ChaosPlan(faults=[HostFault(
            kind=TORN_WRITE, site="journal.append.write", nth=2,
            magnitude=11)])
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        with FaultyIO(plan):
            journal.append("submit", sub="a-1", job_key="k1")
            with pytest.raises(OSError) as exc:
                journal.append("submit", sub="a-2", job_key="k2")
            assert "torn journal append" in str(exc.value)
        journal.close()
        entries = Journal.replay(path)
        assert [e["sub"] for e in entries] == ["a-1"]

    def test_read_eio_surfaces_as_corrupt_artifact(self, tmp_path):
        path = str(tmp_path / "a.json")
        body = {"v": 1}
        atomic_write_json(path, dict(body, integrity=sha256_of(body)))
        plan = ChaosPlan(faults=[HostFault(kind=READ_EIO,
                                           site="ioutil.read")])
        with FaultyIO(plan):
            with pytest.raises(CorruptArtifactError):
                read_checked_json(path, "integrity")
        # The file itself was never damaged: a bare re-read succeeds.
        assert read_checked_json(path, "integrity") == body

    def test_disk_full_toggle(self, tmp_path):
        with FaultyIO() as fio:
            fio.disk_full = True
            with pytest.raises(OSError) as exc:
                atomic_write_json(str(tmp_path / "x.json"), {})
            assert exc.value.errno == errno.ENOSPC
            hits_before = dict(fio.hits)
            fio.disk_full = False
            atomic_write_json(str(tmp_path / "x.json"), {})
        assert hits_before  # sites were seen while full

    def test_handlers_do_not_stack(self):
        with FaultyIO():
            with pytest.raises(RuntimeError):
                iohooks.install(SiteCounter())


class TestEmptyPlanParity:
    def test_bit_identical_files(self, tmp_path):
        report = empty_plan_parity(str(tmp_path))
        assert report["identical"], report
        assert report["bare"]  # actually compared something

    def test_http_parity_against_live_service(self, tmp_path):
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0)
        service = ServeService(queue).start()
        try:
            bare = ServeClient(service.url).health()
            shimmed = ServeClient(
                service.url,
                transport=ChaosTransport(ChaosPlan())).health()
            assert bare == shimmed
        finally:
            service.stop()


# ---------------------------------------------------- crash-point sweep

class TestCrashPoints:
    def test_catalog_covers_every_journal_and_rename_site(self):
        points = enumerate_crash_points(jobs=1)
        sites = {site for site, _ in points}
        # The acceptance bar: every journal fsync/rename-protocol site
        # in the lifecycle is a crash point.
        for required in ("journal.append.write", "journal.append.fsync",
                         "journal.append.synced", "ioutil.tmp.write",
                         "ioutil.tmp.fsync", "ioutil.publish.rename",
                         "ioutil.dir.fsync", "ioutil.published"):
            assert required in sites, f"missing crash site {required}"

    @pytest.mark.parametrize("site,nth", [
        ("journal.append.fsync", 1),   # submit ack never made
        ("journal.append.fsync", 2),   # submit acked, commit pending
        ("ioutil.publish.rename", 1),  # died mid cache.put
        ("journal.append.synced", 2),  # commit durable, ack printed?
    ])
    def test_kill_and_recover_loses_and_duplicates_nothing(self, site,
                                                           nth):
        report = run_crash_point(site, nth, jobs=1)
        assert report["killed"], report
        assert report["ok"], report["problems"]


# ------------------------------------------------- graceful degradation

class TestDegradation:
    def test_disk_full_trips_read_only_and_probe_heals(self, tmp_path):
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0,
                         probe_interval_s=0.0)
        try:
            with FaultyIO() as fio:
                queue.submit("alice", spec_for(1).to_dict())
                fio.disk_full = True
                with pytest.raises(ServiceUnavailableError) as exc:
                    queue.submit("alice", spec_for(2).to_dict())
                assert exc.value.retry_after is not None
                assert queue.health == HEALTH_READ_ONLY
                # Reads still work; leasing is off.
                assert queue.status()["health"] == HEALTH_READ_ONLY
                assert queue.lease("w") is None
                assert queue.healthz()["state"] == HEALTH_READ_ONLY
                # Probe fails while the disk is full...
                assert queue.health_probe() == HEALTH_READ_ONLY
                # ...and heals the instant it is not.
                fio.disk_full = False
                assert queue.health_probe() == HEALTH_OK
            view = queue.submit("alice", spec_for(2).to_dict())
            assert view["state"] == "queued"
            assert queue.counters["health_recoveries"] == 1
        finally:
            queue.close()

    def test_backlog_watermark_returns_429(self, tmp_path):
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0,
                         max_queued_runs=2)
        try:
            queue.submit("alice", spec_for(1).to_dict())
            queue.submit("alice", spec_for(2).to_dict())
            with pytest.raises(BacklogExceededError) as exc:
                queue.submit("alice", spec_for(3).to_dict())
            assert exc.value.http_status == 429
            assert exc.value.retry_after is not None
            assert queue.counters["rejected_backlog"] == 1
            # Near-watermark backlog shows up as degraded.
            assert queue.healthz()["state"] == "degraded"
        finally:
            queue.close()

    def test_metrics_expose_health_and_rejections(self, tmp_path):
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0,
                         max_queued_runs=1)
        try:
            queue.submit("alice", spec_for(1).to_dict())
            with pytest.raises(BacklogExceededError):
                queue.submit("alice", spec_for(2).to_dict())
            text = queue.prometheus_text()
            assert 'repro_health_state{state="ok"} 0' in text
            assert 'repro_health_state{state="degraded"} 1' in text
            assert ('repro_submit_rejections_total{reason="backlog"} 1'
                    in text)
            assert 'repro_io_fsync_errors_total{layer="journal"} 0' \
                in text
        finally:
            queue.close()

    def test_drill_round_trip(self, tmp_path):
        manifest = run_drill(str(tmp_path / "drill"),
                             probe_interval_s=0.05)
        assert manifest["ok"], manifest["steps"]
        assert len(manifest["steps"]) == 6


# -------------------------------------------------------- client retry

def _scripted_transport(script):
    """A transport that pops canned (status, body, headers) responses;
    a response of 'drop' raises ConnectionResetError."""
    calls = []

    def transport(method, url, data, timeout, headers):
        calls.append((method, url))
        step = script.pop(0)
        if step == "drop":
            raise ConnectionResetError("scripted drop")
        return step

    transport.calls = calls
    return transport


class TestClientRetry:
    def test_retries_503_with_retry_after_then_succeeds(self):
        ok = (200, b'{"v": 1}', {})
        busy = (503, b'{"error": "read-only", "retry_after": 0.0}',
                {"Retry-After": "0.0"})
        client = ServeClient("http://x", retries=3, backoff_s=0.001,
                             retry_seed=1,
                             transport=_scripted_transport(
                                 [busy, busy, ok]))
        assert client.request("GET", "/v1/status") == {"v": 1}
        assert client.retry_counts["503"] == 2

    def test_429_without_retry_after_raises_immediately(self):
        quota = (429, b'{"error": "quota"}', {})
        client = ServeClient("http://x", retries=5, backoff_s=0.001,
                             transport=_scripted_transport([quota]))
        with pytest.raises(ServeHTTPError) as exc:
            client.request("GET", "/v1/status")
        assert exc.value.status == 429
        assert not client.retry_counts

    def test_connection_error_retried_only_when_idempotent(self):
        ok = (200, b'{}', {})
        client = ServeClient("http://x", retries=2, backoff_s=0.001,
                             transport=_scripted_transport(["drop", ok]))
        assert client.request("GET", "/v1/status") == {}
        client2 = ServeClient("http://x", retries=2, backoff_s=0.001,
                              transport=_scripted_transport(["drop", ok]))
        with pytest.raises(OSError):
            client2.request("POST", "/v1/worker/fail", {"x": 1})

    def test_truncated_body_retried_for_gets(self):
        torn = (200, b'{"v": ', {})
        ok = (200, b'{"v": 1}', {})
        client = ServeClient("http://x", retries=2, backoff_s=0.001,
                             transport=_scripted_transport([torn, ok]))
        assert client.request("GET", "/v1/status") == {"v": 1}
        assert client.retry_counts["bad_body"] == 1

    def test_zero_budget_is_the_old_behavior(self):
        busy = (503, b'{"error": "x", "retry_after": 1}',
                {"Retry-After": "1"})
        client = ServeClient("http://x",
                             transport=_scripted_transport([busy]))
        with pytest.raises(ServeHTTPError):
            client.request("GET", "/v1/status")


class TestWaitIdleLongPoll:
    def test_wait_idle_rides_event_stream(self, tmp_path):
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0)
        service = ServeService(queue).start()
        try:
            client = ServeClient(service.url)
            spec = spec_for(1)
            client.submit("alice", spec.to_dict())
            lease = client.lease("w")
            client.commit(lease["job_key"], lease["token"],
                          record_for(spec))
            status = client.wait_idle(timeout_s=10.0)
            assert status["runs"].get("leased", 0) == 0
        finally:
            service.stop()

    def test_wait_idle_times_out(self, tmp_path):
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0)
        service = ServeService(queue).start()
        try:
            client = ServeClient(service.url)
            client.submit("alice", spec_for(1).to_dict())
            with pytest.raises(TimeoutError):
                client.wait_idle(timeout_s=0.3)
        finally:
            service.stop()


# ------------------------------------------------------------ HTTP shim

class TestChaosTransport:
    def test_injected_503_is_absorbed_by_retry_budget(self, tmp_path):
        plan = ChaosPlan(faults=[HostFault(
            kind=HTTP_ERROR, site="POST /v1/jobs", nth=1)])
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0)
        service = ServeService(queue).start()
        try:
            shim = ChaosTransport(plan)
            client = ServeClient(service.url, retries=3,
                                 backoff_s=0.001, retry_seed=0,
                                 transport=shim)
            view = client.submit("alice", spec_for(1).to_dict())
            assert view["state"] == "queued"
            assert shim.injected[0]["kind"] == HTTP_ERROR
            assert client.retry_counts["503"] == 1
        finally:
            service.stop()

    def test_dropped_response_after_server_side_effect(self, tmp_path):
        plan = ChaosPlan(faults=[HostFault(
            kind=HTTP_DROP_RESPONSE, site="POST /v1/jobs", nth=1)])
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0)
        service = ServeService(queue).start()
        try:
            client = ServeClient(service.url, retries=2,
                                 backoff_s=0.001, retry_seed=0,
                                 transport=ChaosTransport(plan))
            # submit is declared idempotent (content-address dedup),
            # so the lost reply is retried and lands on the same run.
            view = client.submit("alice", spec_for(1).to_dict())
            assert view["state"] == "queued"
            assert len(queue.runs) == 1
        finally:
            service.stop()

    def test_drop_and_truncate(self, tmp_path):
        plan = ChaosPlan(faults=[
            HostFault(kind=HTTP_DROP, site="GET /v1/status", nth=1),
            HostFault(kind=HTTP_TRUNCATE, site="GET /v1/health", nth=1,
                      magnitude=3)])
        queue = JobQueue(str(tmp_path / "s"), checkpoint_every=0)
        service = ServeService(queue).start()
        try:
            client = ServeClient(service.url, retries=2,
                                 backoff_s=0.001, retry_seed=0,
                                 transport=ChaosTransport(plan))
            assert "runs" in client.status()     # drop retried
            assert client.health()["ok"] is True  # truncate retried
        finally:
            service.stop()


# ------------------------------------------------------------ campaign

class TestCampaign:
    @pytest.mark.slow
    def test_seeded_campaign_holds_invariants(self, tmp_path):
        plan = make_chaos_plan(seed=1, io_faults=5, http_faults=5,
                               label="unit")
        manifest = run_campaign(str(tmp_path / "c"), plan, jobs=4,
                                deadline_s=40.0)
        assert manifest["ok"], manifest["problems"]
        assert manifest["plan_key"] == plan.plan_key()
        assert manifest["checks"]["none_lost"]
        assert manifest["checks"]["none_duplicated"]

    def test_cli_drill_writes_manifest(self, tmp_path):
        from repro.chaos.cli import main
        out = str(tmp_path / "m" / "drill.json")
        rc = main(["drill", "--root", str(tmp_path / "d"),
                   "--out", out])
        assert rc == 0
        with open(out) as handle:
            assert json.load(handle)["ok"] is True
