"""The service's data model: submissions, runs, and their views.

Two-level identity is the heart of the multi-tenant design:

* a **submission** is one tenant's request — it has its own id, tenant,
  priority, and lifecycle, and is what clients poll and cancel;
* a **run** is one *simulation* — keyed by the JobSpec's content
  address (:meth:`~repro.orchestrate.jobspec.JobSpec.job_key`), it is
  what workers lease and execute.

Identical submissions — same spec, any tenant — collapse onto one run:
thousands of users asking for the same experiment cost one simulation,
and every submission sees its result. This is the same content-address
dedup the orchestrator's result cache performs, lifted to the queue.

Run lease fencing: every lease increments the run's ``generation``, and
the worker gets that generation back as its **lease token**. A commit
(or failure report) must present a token matching the *current*
generation of a run that is *still leased*; anything else is stale — a
zombie worker that lost its lease finishing late — and is refused, so a
re-leased run can never be double-committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.orchestrate.jobspec import JobSpec
from repro.orchestrate.status import job_status_entry

# Submission states.
SUB_QUEUED = "queued"
SUB_DONE = "done"          # run finished (simulated or cache hit)
SUB_FAILED = "failed"
SUB_CANCELLED = "cancelled"

# Run states.
RUN_QUEUED = "queued"
RUN_LEASED = "leased"
RUN_DONE = "done"
RUN_FAILED = "failed"
RUN_CANCELLED = "cancelled"

#: Terminal states (no further transitions).
TERMINAL_RUN_STATES = frozenset({RUN_DONE, RUN_FAILED, RUN_CANCELLED})
TERMINAL_SUB_STATES = frozenset({SUB_DONE, SUB_FAILED, SUB_CANCELLED})

# Service health states (GET /healthz).
HEALTH_OK = "ok"
#: Still writable, but something is off — recent journal write errors
#: or backlog near the admission watermark.
HEALTH_DEGRADED = "degraded"
#: Durability lost (disk full / persistent journal failure): submits
#: are refused 503 + Retry-After; reads are still served; an automatic
#: probe returns the service to ``ok`` when the disk heals.
HEALTH_READ_ONLY = "read_only"

HEALTH_STATES = (HEALTH_OK, HEALTH_DEGRADED, HEALTH_READ_ONLY)


class ServeError(Exception):
    """Base class for queue/service errors (HTTP-mapped by the API).

    ``retry_after`` (seconds, or None) is surfaced by the API as a
    ``Retry-After`` header plus a ``retry_after`` field in the error
    body — the signal the client retry budget keys off.
    """

    http_status = 400
    retry_after: Optional[float] = None


class UnknownJobError(ServeError):
    http_status = 404


class QuotaExceededError(ServeError):
    http_status = 429


class ServiceUnavailableError(ServeError):
    """The queue cannot accept writes right now (read-only after a
    durability loss, or a journal append just failed). Safe to retry
    after ``retry_after`` seconds."""

    http_status = 503

    def __init__(self, message: str,
                 retry_after: Optional[float] = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class BacklogExceededError(ServeError):
    """Admission control: the global queued-run backlog is at the
    watermark. Distinct from :class:`QuotaExceededError` (a per-tenant
    policy refusal, not retryable) — this one carries ``retry_after``
    because the backlog drains."""

    http_status = 429

    def __init__(self, message: str,
                 retry_after: Optional[float] = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class StaleLeaseError(ServeError):
    """A worker presented a lease token that is no longer current —
    its lease expired (and the run was requeued or re-leased) or the
    run is already terminal. The worker must discard its result."""

    http_status = 409


@dataclass
class Submission:
    """One tenant's request for one run."""

    sub_id: str
    tenant: str
    job_key: str
    priority: int = 0
    t_submit: float = 0.0
    state: str = SUB_QUEUED
    #: True when the submission was answered straight from the result
    #: cache (no queueing at all).
    cache_hit: bool = False

    def view(self, run: Optional["Run"] = None) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "submission_id": self.sub_id,
            "tenant": self.tenant,
            "job_key": self.job_key,
            "priority": self.priority,
            "state": self.state,
            "cache_hit": self.cache_hit,
        }
        if run is not None:
            doc["run_state"] = run.state
            if run.error:
                doc["error"] = run.error
                doc["failure_kind"] = run.kind
            if run.resumed_from is not None:
                doc["resumed_from"] = run.resumed_from
        return doc


@dataclass
class Run:
    """One simulation, shared by every submission with the same spec."""

    job_key: str
    spec: Dict[str, Any]
    #: Tenant charged for this run's queue/lease quota: the first
    #: submitter. Later tenants piggyback for free — their dedup win.
    tenant: str
    seq: int = 0                       # FIFO tiebreak within a tenant
    priority: int = 0                  # max over attached submissions
    state: str = RUN_QUEUED
    submissions: List[str] = field(default_factory=list)
    tenants: Set[str] = field(default_factory=set)
    attempts: int = 0                  # lease count
    requeues: int = 0                  # lease expiries / worker failures
    commits: int = 0                   # successful commits (must stay <=1)
    stale_commits: int = 0             # fenced-off zombie finishes
    generation: int = 0                # lease fencing token source
    worker: Optional[str] = None
    lease_expires: float = 0.0         # wall clock (time.time) deadline
    #: Host-domain trace id, minted once at queue ingest and carried by
    #: every lease of this run (including post-crash resume attempts).
    trace_id: str = ""
    t_queued: float = 0.0              # wall clock of first enqueue
    t_leased: float = 0.0              # wall clock of the current lease
    error: str = ""
    kind: str = "ok"
    #: Checkpoint boundary the committing attempt resumed from, if any.
    resumed_from: Optional[int] = None
    #: Any attached submission asked for telemetry artifacts.
    telemetry: bool = False
    #: Wall-clock deadline (time.time) after which the run is cut off at
    #: every layer — refused a lease, lease TTL capped, and the worker's
    #: engine bounded by a derived ``max_cycles``. ``None`` = unlimited;
    #: when submissions with different deadlines dedup onto one run the
    #: *loosest* wins (None beats any finite deadline), because a result
    #: computed for the patient tenant also answers the impatient one.
    deadline_at: Optional[float] = None

    def job_spec(self) -> JobSpec:
        return JobSpec.from_dict(self.spec)

    def view(self, record: Optional[Dict[str, Any]] = None,
             artifacts: Optional[List[str]] = None) -> Dict[str, Any]:
        """The run's status document — the *shared* formatter
        (:func:`repro.orchestrate.status.job_status_entry`) plus the
        queue-side fields only the service knows."""
        extra: Dict[str, Any] = {
            "state": self.state,
            "tenant": self.tenant,
            "tenants": sorted(self.tenants),
            "priority": self.priority,
            "submissions": len(self.submissions),
            "attempts": self.attempts,
            "requeues": self.requeues,
            "worker": self.worker if self.state == RUN_LEASED else None,
            "trace_id": self.trace_id,
        }
        if self.error:
            extra["error"] = self.error
            extra["failure_kind"] = self.kind
        if self.resumed_from is not None:
            extra["resumed_from"] = self.resumed_from
        if self.deadline_at is not None:
            extra["deadline_at"] = self.deadline_at
        if artifacts:
            extra["artifacts"] = list(artifacts)
        return job_status_entry(self.job_spec(), record, **extra)
