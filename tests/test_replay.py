"""Trace replay: trace-driven re-execution across configurations."""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols import ops
from repro.trace import TraceRecorder
from repro.trace.recorder import TraceEvent
from repro.trace.replay import _reconstruct, replay, replay_bodies


def record_run(label="BackOff-10", cores=4):
    """Record a simple through-op/atomic workload."""
    machine = Machine(config_for(label, num_cores=cores))
    recorder = TraceRecorder(machine)
    flag = machine.layout.alloc_sync_word()

    def writer(ctx):
        yield ops.Compute(120)
        yield ops.StoreThrough(flag, 1)

    def reader(ctx):
        while True:
            value = yield ops.LoadThrough(flag)
            if value == 1:
                break
            yield ops.Compute(30)
        yield ops.Atomic(flag, ops.AtomicKind.FETCH_ADD, (1,))

    machine.spawn([writer, reader])
    machine.run()
    return recorder.detach(), flag


class TestReconstruct:
    def test_roundtrip_each_kind(self):
        cases = [
            (ops.Load(0x40), "ld"),
            (ops.Store(0x40, 5), "st"),
            (ops.LoadThrough(0x40), "ld_through"),
            (ops.LoadCB(0x40), "ld_cb"),
            (ops.StoreThrough(0x40, 7), "st_through"),
            (ops.StoreCB1(0x40, 8), "st_cb1"),
            (ops.StoreCB0(0x40, 9), "st_cb0"),
            (ops.Atomic(0x40, ops.AtomicKind.TAS, (0, 1),
                        ld=ops.LdKind.CB, st=ops.StKind.CB0), "atomic"),
            (ops.Fence(ops.FenceKind.SELF_INVL), "fence"),
        ]
        from repro.trace.recorder import _classify
        for original, kind in cases:
            event = _classify(original)
            assert event.kind == kind
            rebuilt = _reconstruct(event)
            assert type(rebuilt) is type(original)
            if hasattr(original, "value"):
                assert rebuilt.value == original.value
            if isinstance(original, ops.Atomic):
                assert rebuilt.kind is original.kind
                assert rebuilt.operands == original.operands
                assert rebuilt.ld is original.ld
                assert rebuilt.st is original.st

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            _reconstruct(TraceEvent(0, 0, "warp", 0x40))


class TestReplay:
    def test_replay_reproduces_value_outcome(self):
        events, flag = record_run()
        machine = Machine(config_for("BackOff-10", num_cores=4))
        replay(machine, events)
        # writer's 1 + reader's fetch_add = 2
        assert machine.store.read(flag) == 2

    def test_cross_config_replay(self):
        """Record under back-off, replay under the callback protocol."""
        events, flag = record_run("BackOff-10")
        machine = Machine(config_for("CB-One", num_cores=4))
        stats = replay(machine, events)
        assert machine.store.read(flag) == 2
        assert stats.cycles > 0

    def test_replay_preserves_thread_structure(self):
        events, _flag = record_run()
        bodies = replay_bodies(events)
        assert len(bodies) == 2  # writer and reader threads

    def test_think_time_preserved(self):
        """A trace with one op at t=500 must not replay before t=500."""
        events = [TraceEvent(500, 0, "st_through", 0x4000, detail=[1])]
        machine = Machine(config_for("CB-One", num_cores=4))
        stats = replay(machine, events)
        assert stats.cycles >= 500

    def test_too_many_trace_threads_rejected(self):
        events = [TraceEvent(0, tid, "ld_through", 0x4000)
                  for tid in range(5)]
        machine = Machine(config_for("CB-One", num_cores=4))
        with pytest.raises(ValueError, match="threads"):
            replay(machine, events)

    def test_empty_trace_is_a_trivial_run(self):
        machine = Machine(config_for("CB-One", num_cores=4))
        stats = replay(machine, [])
        assert stats.cycles == 0
