"""Callback directory entry: per-core F/E + CB bits and the A/O mode bit.

The semantics follow Section 2 of the paper:

* On allocation (and after any replacement) an entry starts with **all F/E
  bits full and all CB bits clear** — the known re-initialization state
  that makes the directory self-contained (Section 2.3.1).
* In **All** mode the F/E bits act individually: a read consumes its own
  core's F/E bit; a write (st_cbA) wakes every waiter and fills the F/E
  bits of the cores that did *not* have a callback.
* In **One** mode (entered by st_cb1/st_cb0) the F/E bits act in unison
  (all ones or all zeroes): a read consumes only if all are full, clearing
  all of them; st_cb1 wakes exactly one waiter leaving F/E undisturbed;
  st_cb0 wakes nobody and leaves F/E empty.

The bit-vector semantics themselves live in the declarative
:data:`~repro.protocols.callback.table.CALLBACK_ENTRY_TABLE`; this class
is the stateful wrapper the live simulator uses. Every state change goes
through a table step, so the FSM the model checker explores is — by
construction — the FSM the simulator executes. A mutant table can be
injected (``table=`` argument) to replay checker counterexamples against
seeded-bad semantics.

Waiters are stored per core with an opaque ``wake(value)`` closure: the
protocol supplies a closure that either sends a Wakeup message to the core
(plain ``ld_cb``) or executes the parked RMW at the LLC (Section 2.6).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.config import WakePolicy
from repro.protocols.callback.table import CALLBACK_ENTRY_TABLE, callback_cores
from repro.protocols.table import Event, StepResult, TransitionTable


class Waiter:
    """One parked callback read.

    ``word`` is filled in by :meth:`CBEntry.park` so that a waiter detached
    by an eviction still knows which word's current value to receive.
    """

    __slots__ = ("core", "wake", "since", "word")

    def __init__(self, core: int, wake: Callable[[int], None], since: int) -> None:
        self.core = core
        self.wake = wake
        self.since = since
        self.word: int = -1


class CBEntry:
    """F/E + CB bit vectors for one word address."""

    __slots__ = ("word", "num_cores", "fe", "cb", "mode_all", "rr_ptr",
                 "waiters", "arrival", "table", "last_step")

    def __init__(self, word: int, num_cores: int,
                 table: Optional[TransitionTable] = None) -> None:
        self.word = word
        self.num_cores = num_cores
        self.table = table if table is not None else CALLBACK_ENTRY_TABLE
        self.waiters: Dict[int, Waiter] = {}
        self.last_step: Optional[StepResult] = None
        self._adopt(self.table.initial(num_cores))

    # ----------------------------------------------------------- table glue

    def _view(self) -> Dict[str, object]:
        return {"fe": self.fe, "cb": self.cb, "mode_all": self.mode_all,
                "rr": self.rr_ptr, "arrival": tuple(self.arrival),
                "n": self.num_cores}

    def _adopt(self, state: Mapping[str, Any]) -> None:
        self.fe = int(state["fe"])
        self.cb = int(state["cb"])
        self.mode_all = bool(state["mode_all"])
        self.rr_ptr = int(state["rr"])
        self.arrival = list(state["arrival"])

    def _step(self, event: Event) -> StepResult:
        result = self.table.step(self._view(), event)
        self._adopt(result.state)
        # Exposed for the model-checker replay harness, which inspects
        # the emits (e.g. a mutant table emitting ``free`` on a write).
        self.last_step = result
        return result

    def _pop_woken(self, result: StepResult) -> List[Waiter]:
        """Waiter objects for the wake emits, in emit order. A mutant
        table may emit wakes for cores it never parked (or drop parked
        cores); only cores actually present in the waiter map are popped,
        so seeded-bad semantics manifest concretely as lost waiters."""
        return [self.waiters.pop(emit.core) for emit in result.emits
                if emit.kind == "wake" and emit.core in self.waiters]

    # ----------------------------------------------------------- bit helpers

    @property
    def full_mask(self) -> int:
        return (1 << self.num_cores) - 1

    def fe_full(self, core: int) -> bool:
        return bool(self.fe & (1 << core))

    def has_callbacks(self) -> bool:
        return self.cb != 0

    def callback_cores(self) -> List[int]:
        return callback_cores(self.cb, self.num_cores)

    # -------------------------------------------------------------- consume

    def try_consume(self, core: int) -> bool:
        """A read attempts to consume the value; True if F/E permitted it.

        All mode: the core's own bit. One mode: all bits act in unison.
        """
        result = self._step(Event("consume", core=core))
        return result.transition.name == "consume_hit"

    # ---------------------------------------------------------------- park

    def park(self, waiter: Waiter) -> None:
        if waiter.core in self.waiters:
            raise RuntimeError(
                f"core {waiter.core} already has a callback on {self.word:#x}"
            )
        self._step(Event("park", core=waiter.core))
        waiter.word = self.word
        self.waiters[waiter.core] = waiter

    # --------------------------------------------------------------- writes

    def write_all(self, value: int) -> List[Waiter]:
        """st_cbA / st_through: wake everybody; cores without a callback get
        their F/E bit set full. Resets the A/O bit to All."""
        return self._pop_woken(self._step(Event("write_all")))

    def write_one(self, value: int, policy: WakePolicy,
                  rng_next: Callable[[int], int]) -> Optional[Waiter]:
        """st_cb1: One mode; wake a single waiter (F/E undisturbed), or, if
        nobody waits, make the value consumable once (all F/E full)."""
        pick = 0
        if policy is WakePolicy.RANDOM and self.cb:
            # Draw from the caller's RNG stream exactly when the legacy
            # imperative code did, preserving seeded-run bit parity.
            pick = rng_next(len(self.callback_cores()))
        result = self._step(Event("write_one",
                                  payload={"policy": policy, "pick": pick}))
        woken = self._pop_woken(result)
        return woken[0] if woken else None

    def write_zero(self, value: int) -> None:
        """st_cb0: One mode; wake nobody; the value is not consumable."""
        self._step(Event("write_zero"))

    # ----------------------------------------------------------- checkpoint

    def ckpt_state(self) -> Dict[str, object]:
        """F/E + CB vectors, A/O mode, round-robin pointer, and the
        parked waiters (checkpoint capture). Waiter ``wake`` closures are
        opaque; their observable identity is (core, since, word), which
        deterministic re-execution reproduces exactly."""
        return {"word": self.word, "fe": self.fe, "cb": self.cb,
                "mode_all": self.mode_all, "rr_ptr": self.rr_ptr,
                "arrival": list(self.arrival),
                "waiters": [[w.core, w.since, w.word]
                            for _c, w in sorted(self.waiters.items())]}

    # ------------------------------------------------------------- eviction

    def evict(self) -> List[Waiter]:
        """Replacement: answer every pending callback with the current
        value; all bits are lost (the entry object is discarded)."""
        return self._pop_woken(self._step(Event("evict")))
