"""Mesh topology and X-Y routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.mesh import Mesh


class TestCoordinates:
    def test_row_major_numbering(self):
        mesh = Mesh(4)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(3) == (3, 0)
        assert mesh.coords(4) == (0, 1)
        assert mesh.coords(15) == (3, 3)

    def test_node_at_roundtrip(self):
        mesh = Mesh(5)
        for node in range(25):
            x, y = mesh.coords(node)
            assert mesh.node_at(x, y) == node

    def test_out_of_range_rejected(self):
        mesh = Mesh(3)
        with pytest.raises(ValueError):
            mesh.coords(9)
        with pytest.raises(ValueError):
            mesh.node_at(3, 0)

    def test_degenerate_mesh(self):
        mesh = Mesh(1)
        assert mesh.hops(0, 0) == 0
        assert mesh.route(0, 0) == [0]


class TestHops:
    def test_manhattan_distance(self):
        mesh = Mesh(8)
        assert mesh.hops(0, 63) == 14  # corner to corner
        assert mesh.hops(0, 7) == 7
        assert mesh.hops(0, 0) == 0

    def test_symmetric(self):
        mesh = Mesh(4)
        for a in range(16):
            for b in range(16):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_average_distance_8x8(self):
        # Mean Manhattan distance on an n x n mesh is 2*(n^2-1)/(3n).
        mesh = Mesh(8)
        assert mesh.average_distance() == pytest.approx(2 * 63 / 24)


class TestRouting:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_route_length_matches_hops(self, src, dst):
        mesh = Mesh(8)
        route = mesh.route(src, dst)
        assert len(route) == mesh.hops(src, dst) + 1
        assert route[0] == src and route[-1] == dst

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_route_steps_are_neighbors(self, src, dst):
        mesh = Mesh(8)
        route = mesh.route(src, dst)
        for a, b in zip(route, route[1:]):
            assert mesh.hops(a, b) == 1

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_x_before_y(self, src, dst):
        """Dimension-order: the Y coordinate never changes until the X
        coordinate has fully resolved."""
        mesh = Mesh(8)
        route = mesh.route(src, dst)
        dx = mesh.coords(dst)[0]
        seen_y_move = False
        for a, b in zip(route, route[1:]):
            ax, ay = mesh.coords(a)
            bx, by = mesh.coords(b)
            if ay != by:
                seen_y_move = True
                assert ax == dx  # X already resolved
            if seen_y_move:
                assert ax == bx  # no X moves after a Y move
