"""Labelled counters, gauges, and histograms.

A small Prometheus-flavoured metrics vocabulary for the telemetry layer:

* :class:`Counter` — monotonically increasing int;
* :class:`Gauge` — a settable value *or* a live callable probe (the
  sampler reads callable gauges every window: callback-directory
  occupancy, parked cores, flits in flight);
* :class:`Histogram` — power-of-two bucketed distribution with exact
  count/sum/min/max and a nearest-rank percentile over bucket midpoints.

A :class:`MetricsRegistry` keys instruments by ``(name, labels)``;
``snapshot()`` renders everything to a plain JSON-able dict that the
exporters persist next to traces.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

Labels = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value; either set explicitly or backed by a probe
    callable that is evaluated on every read."""

    __slots__ = ("name", "labels", "_value", "_fn")

    def __init__(self, name: str, labels: Labels = (),
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name} is probe-backed")
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Power-of-two bucketed distribution of non-negative samples.

    Bucket ``i`` counts samples in ``[2**i, 2**(i+1))`` (bucket 0 holds
    zeros and ones). That resolution matches what the latency figures
    need — order-of-magnitude tails — at O(1) memory.
    """

    __slots__ = ("name", "labels", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.buckets: List[int] = []
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0: {value}")
        index = max(0, int(value).bit_length() - 1) if value >= 1 else 0
        if index >= len(self.buckets):
            self.buckets.extend([0] * (index + 1 - len(self.buckets)))
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile over bucket lower bounds (exact to
        within one power of two)."""
        if not (0.0 < pct <= 100.0):
            raise ValueError(f"percentile out of range: {pct}")
        if not self.count:
            return 0.0
        rank = max(1, -(-int(pct * self.count) // 100))  # ceil
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= rank:
                return float(2 ** index)
        return float(self.max or 0)  # pragma: no cover


class MetricsRegistry:
    """All instruments of one run, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"{name}{dict(key[1])} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels: Any) -> Gauge:
        gauge = self._get(Gauge, name, labels, fn=fn)
        if fn is not None and gauge._fn is None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def gauges(self) -> List[Gauge]:
        return [i for i in self._instruments.values()
                if isinstance(i, Gauge)]

    def __iter__(self):
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every instrument's current value as JSON-able dicts."""
        out: List[Dict[str, Any]] = []
        for instrument in self._instruments.values():
            entry: Dict[str, Any] = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
                "kind": type(instrument).__name__.lower(),
            }
            if isinstance(instrument, Histogram):
                entry.update(count=instrument.count, sum=instrument.total,
                             min=instrument.min, max=instrument.max,
                             mean=instrument.mean,
                             p50=instrument.percentile(50),
                             p99=instrument.percentile(99))
            else:
                entry["value"] = instrument.value
            out.append(entry)
        return out
