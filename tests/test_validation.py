"""Invariant checkers: clean machines pass, corrupted machines fail."""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols import ops
from repro.protocols.mesi.states import MESIState
from repro.sync import make_lock, style_for
from repro.protocols.ops import Compute
from repro.validation import (InvariantViolation, audit_machine,
                              check_callback_directory, check_mesi_swmr,
                              check_vips_l1)

from tests.protocol_utils import issue, issue_pending

ADDR = 0x4000


def run_contended(label, threads=4):
    cfg = config_for(label, num_cores=threads)
    machine = Machine(cfg)
    lock = make_lock("ttas", style_for(cfg))
    lock.setup(machine.layout, threads)
    for addr, value in lock.initial_values().items():
        machine.store.write(addr, value)

    def body(ctx):
        for _ in range(4):
            yield from lock.acquire(ctx)
            yield Compute(10)
            yield from lock.release(ctx)
            yield Compute(1 + ctx.rng.randrange(30))

    machine.spawn([body] * threads)
    machine.run()
    return machine


class TestCleanMachinesPass:
    @pytest.mark.parametrize("label,expected", [
        ("Invalidation", ["mesi_swmr"]),
        ("BackOff-10", ["vips_l1"]),
        ("CB-One", ["callback_directory", "vips_l1"]),
    ])
    def test_audit_after_contended_run(self, label, expected):
        machine = run_contended(label)
        assert audit_machine(machine) == expected

    def test_audit_mid_simulation_checkpoints(self):
        """Audits hold at every quiescent point, not just at the end."""
        cfg = config_for("Invalidation", num_cores=4)
        machine = Machine(cfg)
        for step in range(8):
            core = step % 4
            issue(machine, core,
                  ops.Store(ADDR + 64 * (step % 3), step)
                  if step % 2 else ops.Load(ADDR + 64 * (step % 3)))
            check_mesi_swmr(machine.protocol)


class TestCorruptionDetected:
    def test_double_owner_detected(self):
        machine = Machine(config_for("Invalidation", num_cores=4))
        issue(machine, 0, ops.Store(ADDR, 1))
        # Corrupt: force a second M copy behind the protocol's back.
        line = machine.protocol.addr_map.line_of(ADDR)
        from repro.protocols.mesi.states import L1Line
        machine.protocol.l1[1].insert(line, L1Line(MESIState.MODIFIED, {}))
        with pytest.raises(InvariantViolation, match="multiple cores"):
            check_mesi_swmr(machine.protocol)

    def test_owner_plus_sharer_detected(self):
        machine = Machine(config_for("Invalidation", num_cores=4))
        issue(machine, 0, ops.Store(ADDR, 1))
        line = machine.protocol.addr_map.line_of(ADDR)
        from repro.protocols.mesi.states import L1Line
        machine.protocol.l1[1].insert(line, L1Line(MESIState.SHARED, {}))
        with pytest.raises(InvariantViolation):
            check_mesi_swmr(machine.protocol)

    def test_dirty_word_outside_line_detected(self):
        machine = Machine(config_for("BackOff-10", num_cores=4))
        issue(machine, 0, ops.Store(ADDR, 1))
        line = machine.protocol.addr_map.line_of(ADDR)
        payload = machine.protocol.l1[0].lookup(line).payload
        payload.dirty_words.add(0xdead00)
        with pytest.raises(InvariantViolation, match="outside the line"):
            check_vips_l1(machine.protocol)

    def test_cb_bit_waiter_mismatch_detected(self):
        machine = Machine(config_for("CB-One", num_cores=4))
        issue(machine, 0, ops.LoadCB(ADDR))
        word = machine.protocol.addr_map.word_base(ADDR)
        entry = machine.protocol.cb_dirs[
            machine.protocol.bank_of(ADDR)].lookup(word)
        entry.cb = 0b1010  # bits without waiters
        with pytest.raises(InvariantViolation, match="disagree"):
            check_callback_directory(machine.protocol)

    def _parked_entry(self):
        """A CB entry with core 1 genuinely parked (second LoadCB blocks
        once the first consumed the F/E bit)."""
        machine = Machine(config_for("CB-One", num_cores=4))
        issue(machine, 1, ops.LoadCB(ADDR))   # consumes core 1's F/E bit
        issue_pending(machine, 1, ops.LoadCB(ADDR))
        word = machine.protocol.addr_map.word_base(ADDR)
        entry = machine.protocol.cb_dirs[
            machine.protocol.bank_of(ADDR)].lookup(word)
        assert 1 in entry.waiters
        return machine, entry

    def test_arrival_fifo_desync_detected(self):
        machine, entry = self._parked_entry()
        entry.arrival.append(2)  # phantom arrival with no waiter record
        with pytest.raises(InvariantViolation, match="arrival FIFO"):
            check_callback_directory(machine.protocol)

    def test_invalid_waiter_core_detected(self):
        machine, entry = self._parked_entry()
        entry.waiters[99] = entry.waiters.pop(1)  # out-of-range core id
        with pytest.raises(InvariantViolation, match="invalid waiter core"):
            check_callback_directory(machine.protocol)

    def test_over_capacity_detected(self):
        machine, _entry = self._parked_entry()
        machine.protocol.config.cb_entries_per_bank = 0
        with pytest.raises(InvariantViolation, match="> capacity"):
            check_callback_directory(machine.protocol)

    def test_missing_sharer_detected(self):
        machine = Machine(config_for("Invalidation", num_cores=4))
        issue(machine, 0, ops.Store(ADDR, 1))
        issue(machine, 1, ops.Load(ADDR))
        line = machine.protocol.addr_map.line_of(ADDR)
        # Corrupt: the directory forgets a live S copy entirely.
        dir_entry = machine.protocol._dir.get(line)
        dir_entry.owner = None
        dir_entry.sharers.clear()
        with pytest.raises(InvariantViolation, match="missing from"):
            check_mesi_swmr(machine.protocol)

    def test_shared_line_classified_private_detected(self):
        machine = Machine(config_for("BackOff-10", num_cores=4))
        issue(machine, 0, ops.Load(ADDR))
        line = machine.protocol.addr_map.line_of(ADDR)
        payload = machine.protocol.l1[0].lookup(line).payload
        payload.shared = True  # cached as shared, classifier says private
        with pytest.raises(InvariantViolation, match="classified private"):
            check_vips_l1(machine.protocol)
