"""Core trampoline and machine assembly/run loop."""

import pytest

from repro.config import config_for
from repro.core.machine import Machine, run_threads
from repro.protocols import ops
from repro.sim.engine import DeadlockError


def cfg(label="CB-One", cores=4, **overrides):
    return config_for(label, num_cores=cores, **overrides)


class TestThreadExecution:
    def test_compute_advances_clock(self):
        done_at = {}

        def body(ctx):
            yield ops.Compute(100)
            done_at[ctx.tid] = ctx.now

        stats = run_threads(cfg(), [body])
        assert done_at[0] == 100
        assert stats.cycles == 100

    def test_op_results_flow_back(self):
        seen = {}

        def body(ctx):
            yield ops.StoreThrough(0x4000, 13)
            seen["value"] = yield ops.LoadThrough(0x4000)

        run_threads(cfg(), [body])
        assert seen["value"] == 13

    def test_backoff_wait_uses_config_policy(self):
        machine = Machine(cfg("BackOff-5", cores=4, backoff_base=4))

        def body(ctx):
            yield ops.BackoffWait(0)
            yield ops.BackoffWait(1)

        machine.spawn([body])
        stats = machine.run()
        assert stats.backoff_cycles == 4 + 8
        assert stats.cycles == 12

    def test_threads_run_concurrently(self):
        def body(ctx):
            yield ops.Compute(100)

        stats = run_threads(cfg(), [body, body, body])
        assert stats.cycles == 100  # not 300

    def test_per_thread_rng_deterministic(self):
        def draws():
            values = {}

            def body(ctx):
                values[ctx.tid] = ctx.rng.randrange(10**9)
                yield ops.Compute(1)

            run_threads(cfg(), [body, body])
            return values

        a, b = draws(), draws()
        assert a == b
        assert a[0] != a[1]  # different streams per thread


class TestMachineLifecycle:
    def test_spawn_twice_rejected(self):
        machine = Machine(cfg())

        def body(ctx):
            yield ops.Compute(1)

        machine.spawn([body])
        with pytest.raises(RuntimeError, match="already started"):
            machine.spawn([body])

    def test_run_before_spawn_rejected(self):
        with pytest.raises(RuntimeError, match="spawn"):
            Machine(cfg()).run()

    def test_too_many_threads_rejected(self):
        machine = Machine(cfg(cores=4))

        def body(ctx):
            yield ops.Compute(1)

        with pytest.raises(ValueError, match="> 4 hardware threads"):
            machine.spawn([body] * 5)

    def test_fewer_threads_than_cores_ok(self):
        def body(ctx):
            yield ops.Compute(10)

        stats = run_threads(cfg(cores=16), [body] * 3)
        assert stats.cycles == 10

    def test_deadlock_detected(self):
        """A ld_cb with no matching write must be flagged, not hang."""
        machine = Machine(cfg())

        def body(ctx):
            yield ops.LoadCB(0x4000)   # consumes the initial full state
            yield ops.LoadCB(0x4000)   # blocks forever

        machine.spawn([body])
        with pytest.raises(DeadlockError, match="blocked cores"):
            machine.run()

    def test_watchdog_bounds_runaway(self):
        machine = Machine(cfg(max_events=50))

        def body(ctx):
            while True:
                yield ops.Compute(1)

        machine.spawn([body])
        with pytest.raises(Exception, match="watchdog"):
            machine.run()

    def test_stats_cycles_is_finish_time(self):
        def short(ctx):
            yield ops.Compute(10)

        def long(ctx):
            yield ops.Compute(500)

        stats = run_threads(cfg(), [short, long])
        assert stats.cycles == 500
