"""VIPS-M protocol: fences, classification effects, racy ops, atomics."""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols import ops

from tests.protocol_utils import issue, issue_pending

ADDR = 0x4000
PAGE = 4096


def machine(cores=4):
    return Machine(config_for("BackOff-10", num_cores=cores))


class TestDataPath:
    def test_load_fills_and_hits(self):
        m = machine()
        issue(m, 0, ops.Load(ADDR))
        assert m.stats.l1_misses == 1
        before = m.stats.l1_hits
        issue(m, 0, ops.Load(ADDR))
        assert m.stats.l1_hits == before + 1

    def test_store_marks_dirty_word(self):
        m = machine()
        issue(m, 0, ops.Store(ADDR, 5))
        line = m.protocol.addr_map.line_of(ADDR)
        payload = m.protocol.l1[0].lookup(line).payload
        assert m.protocol.addr_map.word_base(ADDR) in payload.dirty_words
        assert m.store.read(ADDR) == 5

    def test_first_touch_private_classification(self):
        m = machine()
        issue(m, 0, ops.Load(ADDR))
        line = m.protocol.addr_map.line_of(ADDR)
        assert m.protocol.l1[0].lookup(line).payload.shared is False

    def test_second_core_touch_classifies_shared(self):
        m = machine()
        issue(m, 0, ops.Load(ADDR))
        issue(m, 1, ops.Load(ADDR + PAGE // 2))  # same page
        line = m.protocol.addr_map.line_of(ADDR + PAGE // 2)
        assert m.protocol.l1[1].lookup(line).payload.shared is True


class TestFences:
    def test_self_invl_discards_only_shared_lines(self):
        m = machine()
        private_addr = 0x10000
        shared_addr = 0x20000
        issue(m, 1, ops.Load(shared_addr))  # touch from another core first
        issue(m, 0, ops.Load(private_addr))
        issue(m, 0, ops.Load(shared_addr))  # now shared for core 0
        issue(m, 0, ops.Fence(ops.FenceKind.SELF_INVL))
        priv_line = m.protocol.addr_map.line_of(private_addr)
        shared_line = m.protocol.addr_map.line_of(shared_addr)
        assert m.protocol.l1[0].lookup(priv_line) is not None
        assert m.protocol.l1[0].lookup(shared_line) is None
        assert m.stats.lines_self_invalidated == 1

    def test_self_down_writes_through_dirty_shared_words(self):
        m = machine()
        shared_addr = 0x20000
        issue(m, 1, ops.Load(shared_addr))
        issue(m, 0, ops.Store(shared_addr, 3))
        before = m.stats.words_written_through
        issue(m, 0, ops.Fence(ops.FenceKind.SELF_DOWN))
        assert m.stats.words_written_through == before + 1
        # A second self_down has nothing left to flush.
        issue(m, 0, ops.Fence(ops.FenceKind.SELF_DOWN))
        assert m.stats.words_written_through == before + 1

    def test_self_down_skips_private_dirty(self):
        """VIPS-M excludes private data from coherence actions."""
        m = machine()
        issue(m, 0, ops.Store(0x30000, 3))  # private first touch
        issue(m, 0, ops.Fence(ops.FenceKind.SELF_DOWN))
        assert m.stats.words_written_through == 0

    def test_self_invl_flushes_transient_dirty_first(self):
        """Footnote 7: self_invl also downgrades dirty shared words."""
        m = machine()
        shared_addr = 0x20000
        issue(m, 1, ops.Load(shared_addr))
        issue(m, 0, ops.Store(shared_addr, 3))
        issue(m, 0, ops.Fence(ops.FenceKind.SELF_INVL))
        assert m.stats.words_written_through == 1
        line = m.protocol.addr_map.line_of(shared_addr)
        assert m.protocol.l1[0].lookup(line) is None


class TestRacyOps:
    def test_load_through_bypasses_l1(self):
        m = machine()
        issue(m, 0, ops.Load(ADDR))  # cached
        misses = m.stats.l1_misses
        m.store.write(ADDR, 9)  # value changes behind the L1's back
        assert issue(m, 0, ops.LoadThrough(ADDR)) == 9
        assert m.stats.l1_misses == misses  # L1 untouched

    def test_load_through_counts_sync_access(self):
        m = machine()
        before = m.stats.llc_sync_accesses
        issue(m, 0, ops.LoadThrough(ADDR))
        assert m.stats.llc_sync_accesses == before + 1

    def test_store_through_updates_llc(self):
        m = machine()
        issue(m, 0, ops.StoreThrough(ADDR, 4))
        assert m.store.read(ADDR) == 4

    def test_st_cb_variants_behave_as_store_through(self):
        m = machine()
        issue(m, 0, ops.StoreCB1(ADDR, 1))
        assert m.store.read(ADDR) == 1
        issue(m, 0, ops.StoreCB0(ADDR, 2))
        assert m.store.read(ADDR) == 2

    def test_ld_cb_degenerates_to_ld_through(self):
        m = machine()
        m.store.write(ADDR, 6)
        assert issue(m, 0, ops.LoadCB(ADDR)) == 6

    def test_spin_until_rejected(self):
        m = machine()
        with pytest.raises(TypeError, match="SpinUntil"):
            m.protocol.issue(0, ops.SpinUntil(ADDR, lambda v: True))


class TestAtomics:
    def test_tas_at_llc(self):
        m = machine()
        r = issue(m, 0, ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1)))
        assert (r.old, r.success) == (0, True)
        r = issue(m, 1, ops.Atomic(ADDR, ops.AtomicKind.TAS, (0, 1)))
        assert (r.old, r.success) == (1, False)

    def test_concurrent_fetch_adds_all_distinct(self):
        m = machine()
        futures = [
            m.protocol.issue(c, ops.Atomic(ADDR, ops.AtomicKind.FETCH_ADD,
                                           (1,)))
            for c in range(4)
        ]
        m.engine.run()
        assert m.store.read(ADDR) == 4
        assert sorted(f.value.old for f in futures) == [0, 1, 2, 3]

    def test_swap_returns_old(self):
        m = machine()
        m.store.write(ADDR, 11)
        r = issue(m, 0, ops.Atomic(ADDR, ops.AtomicKind.SWAP, (22,)))
        assert r.old == 11 and m.store.read(ADDR) == 22

    def test_tdec_fails_at_zero(self):
        m = machine()
        r = issue(m, 0, ops.Atomic(ADDR, ops.AtomicKind.TDEC))
        assert (r.old, r.success) == (0, False)
        m.store.write(ADDR, 2)
        r = issue(m, 0, ops.Atomic(ADDR, ops.AtomicKind.TDEC))
        assert (r.old, r.success) == (2, True)
        assert m.store.read(ADDR) == 1


class TestEvictionWriteThrough:
    def test_dirty_shared_victim_writes_through(self):
        cfg = config_for("BackOff-10", num_cores=4, l1_size_bytes=512,
                         l1_ways=1)
        m = Machine(cfg)
        a = 0x10000
        b = a + cfg.l1_sets * cfg.line_bytes  # same set as a
        issue(m, 1, ops.Load(a))             # make a's page shared
        issue(m, 0, ops.Store(a, 5))         # dirty shared line at core 0
        wb = m.stats.writebacks
        issue(m, 0, ops.Load(b))             # evicts it
        assert m.stats.writebacks == wb + 1
