"""The orchestration subsystem: specs, cache, scheduler, CLI."""

import functools
import json
import os
import time

import pytest

from repro.harness.replication import replicate
from repro.harness.sweeps import Sweep
from repro.orchestrate import (JobSpec, Orchestrator, RecordResult,
                               ResultCache, build_workload, execute_job,
                               run_batch)
from repro.orchestrate.cli import build_specs, main, parse_value
from repro.workloads.microbench import BarrierMicrobench, LockMicrobench


def spec_for(seed=1, iterations=2, label="CB-One", **overrides):
    overrides.setdefault("num_cores", 4)
    return JobSpec(config_label=label, workload="lock",
                   workload_params={"lock_name": "ttas",
                                    "iterations": iterations},
                   config_overrides=overrides, seed=seed)


# Injectable run functions. Top-level (picklable) so the parallel paths
# can ship them to pool workers.

def fake_run(spec_dict):
    spec = JobSpec.from_dict(spec_dict)
    return {
        "job_key": spec.job_key(),
        "spec": spec.to_dict(),
        "result": {"workload": spec.workload,
                   "config": spec.config_label,
                   "cycles": 100 + spec.seed, "traffic": 7, "llc_sync": 1,
                   "energy": {"total_pj": 1.0},
                   "stats": {"cycles": 100 + spec.seed,
                             "episodes": {"lock_acquire": {"n": 1,
                                                           "mean": 5.0}}}},
        "meta": {"wall_s": 0.0},
    }


def crash_once_run(spec_dict, sentinel):
    """Hard-kills the worker process on the first call ever (sentinel
    file marks that the crash already happened)."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(3)
    return fake_run(spec_dict)


def sleepy_run(spec_dict, seconds):
    time.sleep(seconds)
    return fake_run(spec_dict)


class TestJobSpec:
    def test_key_is_stable_and_order_insensitive(self):
        a = JobSpec("CB-One", "lock",
                    workload_params={"a": 1, "b": 2},
                    config_overrides={"x": 1, "y": 2}, seed=3)
        b = JobSpec("CB-One", "lock",
                    workload_params={"b": 2, "a": 1},
                    config_overrides={"y": 2, "x": 1}, seed=3)
        assert a.job_key() == b.job_key()
        assert len(a.job_key()) == 64

    def test_key_depends_on_every_field(self):
        base = spec_for()
        assert base.job_key() != spec_for(seed=2).job_key()
        assert base.job_key() != spec_for(iterations=3).job_key()
        assert base.job_key() != spec_for(label="CB-All").job_key()
        assert base.job_key() != spec_for(num_cores=16).job_key()

    def test_roundtrip(self):
        spec = spec_for(seed=4)
        again = JobSpec.from_dict(json.loads(
            json.dumps(spec.to_dict())))
        assert again.job_key() == spec.job_key()

    def test_seed_override_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            JobSpec("CB-One", "lock", config_overrides={"seed": 2})


class TestRegistry:
    def test_builds_registered_specs(self):
        lock = build_workload("lock", {"lock_name": "clh",
                                       "iterations": 3})
        assert isinstance(lock, LockMicrobench)
        assert lock.lock_name == "clh" and lock.iterations == 3
        barrier = build_workload("barrier", {"barrier_name": "sr"})
        assert isinstance(barrier, BarrierMicrobench)
        app = build_workload("app", {"name": "barnes", "scale": 0.25})
        assert app.name == "barnes"

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unknown workload spec"):
            build_workload("nope", {})


class TestCache:
    def test_round_trip_and_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        spec = spec_for()
        assert cache.get(spec) is None
        record = fake_run(spec.to_dict())
        path = cache.put(spec, record)
        assert os.path.exists(path)
        assert cache.get(spec) == record
        assert cache.get(spec_for(seed=9)) is None
        assert cache.keys() == [spec.job_key()]

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = spec_for()
        cache.put(spec, fake_run(spec.to_dict()))
        with open(cache.path_for(spec.job_key()), "w") as handle:
            handle.write("{not json")
        assert cache.get(spec) is None

    def test_spec_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec, other = spec_for(), spec_for(seed=2)
        # Simulate a collision/hand-edit: other's record under spec's key.
        record = fake_run(other.to_dict())
        cache.put(spec, record)
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for seed in (1, 2, 3):
            spec = spec_for(seed=seed)
            cache.put(spec, fake_run(spec.to_dict()))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


class TestExecuteJob:
    def test_real_simulation_record(self):
        record = execute_job(spec_for().to_dict())
        assert record["job_key"] == spec_for().job_key()
        result = record["result"]
        assert result["cycles"] > 0 and result["config"] == "CB-One"
        view = RecordResult(record)
        assert view.cycles == result["cycles"]
        assert view.episode_mean("lock_acquire") > 0
        assert view.energy.total > 0


class TestOrchestratorSerial:
    def test_cache_hit_miss_round_trip(self, tmp_path):
        specs = [spec_for(seed=s) for s in (1, 2, 3)]
        first = run_batch(specs, cache_dir=str(tmp_path), run_fn=fake_run)
        assert first.ok and first.simulations_executed == 3
        # Second run: everything from cache, zero simulations executed.
        second = run_batch(specs, cache_dir=str(tmp_path),
                           run_fn=fake_run)
        assert second.ok and second.simulations_executed == 0
        assert second.events.counts["cache_hit"] == 3
        assert [r.record["result"] for r in second.results] \
            == [r.record["result"] for r in first.results]
        # A new seed is the only miss on a third, extended run.
        third = run_batch(specs + [spec_for(seed=4)],
                          cache_dir=str(tmp_path), run_fn=fake_run)
        assert third.simulations_executed == 1

    def test_retry_after_injected_failure(self):
        calls = []

        def flaky(spec_dict):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("injected crash")
            return fake_run(spec_dict)

        batch = Orchestrator(retries=2, backoff_s=0.001,
                             run_fn=flaky).run([spec_for()])
        (job,) = batch.results
        assert job.ok and job.attempts == 3
        assert batch.events.counts["retried"] == 2

    def test_exhausted_retries_do_not_sink_the_batch(self):
        def doomed(spec_dict):
            spec = JobSpec.from_dict(spec_dict)
            if spec.seed == 2:
                raise RuntimeError("always fails")
            return fake_run(spec_dict)

        batch = Orchestrator(retries=1, backoff_s=0.001,
                             run_fn=doomed).run(
            [spec_for(seed=s) for s in (1, 2, 3)])
        assert [r.status for r in batch.results] \
            == ["finished", "failed", "finished"]
        assert not batch.ok
        (failed,) = batch.failed
        assert failed.attempts == 2 and "always fails" in failed.error
        with pytest.raises(RuntimeError, match="always fails"):
            failed.result()

    def test_deterministic_errors_fail_fast(self):
        def bad(spec_dict):
            raise ValueError("unknown configuration label: 'CB-Two'")

        batch = Orchestrator(retries=2, run_fn=bad).run([spec_for()])
        (job,) = batch.results
        assert job.status == "failed" and job.attempts == 1
        assert batch.events.counts["retried"] == 0

    def test_timeout_recorded_and_not_cached(self, tmp_path):
        batch = Orchestrator(
            cache=str(tmp_path), timeout=0.01,
            run_fn=functools.partial(sleepy_run, seconds=0.05),
        ).run([spec_for()])
        (job,) = batch.results
        assert job.status == "timeout" and not job.ok
        assert batch.events.counts["timeout"] == 1
        assert len(ResultCache(str(tmp_path))) == 0

    def test_duplicate_specs_simulate_once(self):
        batch = run_batch([spec_for(), spec_for()], run_fn=fake_run)
        assert batch.simulations_executed == 1
        assert batch.results[0].record is batch.results[1].record

    def test_events_narrate_the_batch(self, tmp_path):
        run_batch([spec_for()], cache_dir=str(tmp_path), run_fn=fake_run)
        sink = tmp_path / "events.jsonl"
        kinds = [json.loads(line)["kind"]
                 for line in sink.read_text().splitlines()]
        assert kinds == ["queued", "started", "finished",
                         "cache_stats"]


class TestOrchestratorParallel:
    def test_worker_crash_is_retried(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        batch = Orchestrator(
            jobs=2, retries=2, backoff_s=0.001,
            run_fn=functools.partial(crash_once_run, sentinel=sentinel),
        ).run([spec_for(seed=s) for s in (1, 2, 3)])
        assert batch.ok, [r.error for r in batch.failed]
        assert os.path.exists(sentinel)
        assert batch.events.counts["retried"] >= 1

    def test_parallel_timeout(self):
        batch = Orchestrator(
            jobs=2, timeout=0.2,
            run_fn=functools.partial(sleepy_run, seconds=0.8),
        ).run([spec_for()])
        (job,) = batch.results
        assert job.status == "timeout"

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        """jobs=4 must produce bit-identical records to serial runs."""
        specs = [spec_for(seed=s, label=label)
                 for s in (1, 2) for label in ("CB-One", "Invalidation")]
        serial = run_batch(specs)
        parallel = run_batch(specs, jobs=4,
                             cache_dir=str(tmp_path / "cache"))
        assert serial.ok and parallel.ok
        for left, right in zip(serial.results, parallel.results):
            assert left.record["result"] == right.record["result"]


class TestSweepIntegration:
    def make_sweep(self, **kwargs):
        defaults = dict(
            configs=["CB-One", "Invalidation"],
            workload_spec="lock",
            spec_params={"lock_name": "ttas"},
            params={"iterations": [1, 2]},
            metrics={"cycles": lambda r: r.cycles,
                     "traffic": lambda r: r.traffic},
        )
        defaults.update(kwargs)
        return Sweep(**defaults)

    def test_overlapping_keys_raise(self):
        sweep = self.make_sweep(overrides={"iterations": [1]})
        with pytest.raises(ValueError, match="iterations"):
            sweep.grid()

    def test_exactly_one_workload_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            Sweep(configs=["CB-One"], metrics={})
        with pytest.raises(ValueError, match="exactly one"):
            Sweep(configs=["CB-One"], workload=lambda p: None,
                  workload_spec="lock", metrics={})

    def test_seed_plumbs_through_and_lands_in_rows(self):
        sweep = self.make_sweep(params={"iterations": [2]})
        rows3 = sweep.run(seed=3, num_cores=4)
        rows4 = sweep.run(seed=4, num_cores=4)
        assert all(row["seed"] == 3 for row in rows3)
        assert all(row["seed"] == 4 for row in rows4)
        # The seed genuinely reaches the simulation.
        assert [r["cycles"] for r in rows3] != [r["cycles"] for r in rows4]

    def test_parallel_sweep_requires_declarative_workload(self):
        sweep = self.make_sweep(
            workload=lambda p: LockMicrobench("ttas", iterations=1),
            workload_spec=None, spec_params={})
        with pytest.raises(ValueError, match="workload_spec"):
            sweep.run(jobs=2, num_cores=4)

    def test_parallel_sweep_matches_serial(self, tmp_path):
        sweep = self.make_sweep()
        serial = sweep.run(seed=2, num_cores=4)
        parallel = sweep.run(seed=2, num_cores=4, jobs=4,
                             cache_dir=str(tmp_path))
        assert serial == parallel
        # And the cached re-run is also identical.
        assert sweep.run(seed=2, num_cores=4,
                         cache_dir=str(tmp_path)) == serial


class TestReplicateIntegration:
    def test_spec_path_matches_factory_path(self, tmp_path):
        seeds = (1, 2, 3)
        factory = replicate(
            "CB-One", lambda: LockMicrobench("ttas", iterations=2),
            lambda r: float(r.cycles), seeds=seeds, num_cores=4)
        spec = replicate(
            "CB-One", None, lambda r: float(r.cycles), seeds=seeds,
            workload_spec="lock",
            workload_params={"lock_name": "ttas", "iterations": 2},
            jobs=2, cache_dir=str(tmp_path), num_cores=4)
        assert factory.values == spec.values

    def test_exactly_one_workload_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            replicate("CB-One", None, lambda r: 0.0)


class TestCLI:
    def test_parse_value(self):
        assert parse_value("3") == 3
        assert parse_value("0.5") == 0.5
        assert parse_value("true") is True
        assert parse_value("ttas") == "ttas"

    def run_args(self, tmp_path, *extra):
        return ["run", "--workload", "lock:ttas", "--configs",
                "CB-One,Invalidation", "--seeds", "1,2", "--cores", "4",
                "--param", "iterations=2", "--jobs", "4",
                "--cache-dir", str(tmp_path / "cache"), *extra]

    def test_build_specs_cartesian(self, tmp_path):
        import argparse
        args = argparse.Namespace(
            workload="lock:ttas", configs="CB-One,Invalidation",
            seeds="1,2", cores=4, param=["iterations=2"],
            override=["cb_entries_per_bank=1,4"])
        specs = build_specs(args)
        assert len(specs) == 8  # 2 configs x 2 seeds x 2 override values
        assert {s.config_overrides["cb_entries_per_bank"]
                for s in specs} == {1, 4}
        assert all(s.workload_params == {"lock_name": "ttas",
                                         "iterations": 2} for s in specs)

    def test_run_then_resume_from_cache(self, tmp_path, capsys):
        batch_file = str(tmp_path / "batch.json")
        json_out = str(tmp_path / "records.json")
        assert main(self.run_args(tmp_path, "--batch-out", batch_file,
                                  "--json", json_out)) == 0
        first = capsys.readouterr().out
        assert "4 simulated" in first
        with open(json_out) as handle:
            assert len(json.load(handle)) == 4
        # Second invocation: the whole batch completes from cache.
        assert main(["resume", batch_file, "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        second = capsys.readouterr().out
        assert "4 from cache, 0 simulated" in second
        # Inspect reports full coverage.
        assert main(["inspect", batch_file, "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        assert "4/4 jobs cached" in capsys.readouterr().out


# Classified failure injectors (top-level so pool workers can import
# them, matching the run fns above).

def invariant_run(spec_dict):
    from repro.validation import InvariantViolation
    raise InvariantViolation("SWMR broken in worker")


def deadlock_run(spec_dict):
    from repro.sim.engine import DeadlockError
    raise DeadlockError("threads parked forever")


def sim_timeout_run(spec_dict):
    from repro.sim.engine import SimulationTimeout
    raise SimulationTimeout("cycle budget", reason="max_cycles", cycle=9,
                            events=2, progress={0: 1})


def severity_run(spec_dict):
    from repro.sim.engine import SimulationTimeout
    from repro.validation import InvariantViolation
    if JobSpec.from_dict(spec_dict).seed == 1:
        raise SimulationTimeout("slow")
    raise InvariantViolation("bad state")


class TestFailureTaxonomy:
    def test_deterministic_kinds_classified_and_not_retried(self):
        batch = Orchestrator(retries=3, run_fn=invariant_run).run([spec_for()])
        (result,) = batch.results
        assert result.status == "failed"
        assert result.kind == "invariant"
        assert result.attempts == 1   # deterministic: never retried
        assert dict(batch.failure_kinds()) == {"invariant": 1}
        assert batch.exit_code() == 2

    def test_liveness_and_timeout_kinds(self):
        batch = Orchestrator(run_fn=deadlock_run).run([spec_for()])
        assert batch.results[0].kind == "liveness"
        assert batch.exit_code() == 3
        batch = Orchestrator(run_fn=sim_timeout_run).run([spec_for(seed=2)])
        assert batch.results[0].kind == "timeout"
        assert batch.exit_code() == 4

    def test_exit_code_reports_the_most_severe_class(self):
        batch = Orchestrator(run_fn=severity_run).run(
            [spec_for(seed=1), spec_for(seed=2)])
        kinds = sorted(r.kind for r in batch.results)
        assert kinds == ["invariant", "timeout"]
        assert batch.exit_code() == 2   # invariant outranks timeout

    def test_failure_manifest_names_every_failure(self):
        batch = Orchestrator(run_fn=invariant_run).run([spec_for()])
        manifest = batch.failure_manifest()
        assert manifest["total"] == 1
        assert manifest["failed"] == 1
        assert manifest["by_kind"] == {"invariant": 1}
        (entry,) = manifest["failures"]
        assert entry["kind"] == "invariant"
        assert entry["job_key"] and entry["error"]

    def test_events_and_inspect_summarize_failure_classes(self, tmp_path,
                                                          capsys):
        cache = str(tmp_path)
        run_batch([spec_for()], cache_dir=cache, run_fn=invariant_run)
        with open(os.path.join(cache, "events.jsonl")) as handle:
            events = [json.loads(line) for line in handle]
        failed = [e for e in events if e["kind"] == "failed"]
        assert failed and failed[-1]["failure_kind"] == "invariant"
        assert main(["inspect", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "failure classes" in out
        assert "invariant" in out


class TestQuarantine:
    def test_family_quarantined_after_repeat_failures(self):
        specs = [spec_for(seed=s) for s in range(1, 6)]   # one family
        batch = Orchestrator(run_fn=invariant_run,
                             quarantine_after=2).run(specs)
        kinds = [r.kind for r in batch.results]
        assert kinds.count("invariant") == 2
        assert kinds.count("quarantined") == 3
        for result in batch.results:
            if result.kind == "quarantined":
                assert result.status == "quarantined"
                assert "quarantined" in result.error
        assert batch.failure_kinds()["quarantined"] == 3
        assert batch.exit_code() == 2   # root cause outranks quarantine

    def test_other_families_are_unaffected(self):
        specs = [spec_for(seed=s) for s in (1, 2, 3)]
        specs.append(spec_for(seed=1, label="CB-All"))
        batch = Orchestrator(run_fn=invariant_run,
                             quarantine_after=2).run(specs)
        by_label = {(r.spec.config_label, r.spec.seed): r.kind
                    for r in batch.results}
        assert by_label[("CB-One", 3)] == "quarantined"
        assert by_label[("CB-All", 1)] == "invariant"   # fresh family

    def test_transient_errors_never_quarantine(self):
        def flaky(spec_dict):
            raise ValueError("not a deterministic simulation failure")
        specs = [spec_for(seed=s) for s in (1, 2, 3)]
        batch = Orchestrator(run_fn=flaky, retries=0,
                             quarantine_after=1).run(specs)
        assert [r.kind for r in batch.results] == ["error"] * 3

    def test_quarantine_threshold_validated(self):
        with pytest.raises(ValueError):
            Orchestrator(quarantine_after=-1)

    def test_zero_disables_quarantine(self):
        specs = [spec_for(seed=s) for s in (1, 2, 3)]
        batch = Orchestrator(run_fn=invariant_run,
                             quarantine_after=0).run(specs)
        assert [r.kind for r in batch.results] == ["invariant"] * 3


class TestEventLogReader:
    """tail_events/read_events: the torn-tail-tolerant JSONL reader."""

    def _log(self, tmp_path, lines, torn=None):
        path = tmp_path / "events.jsonl"
        text = "".join(json.dumps(line) + "\n" for line in lines)
        if torn is not None:
            text += torn  # no trailing newline: a crash mid-append
        path.write_text(text)
        return str(path)

    def test_torn_final_line_is_skipped_not_raised(self, tmp_path):
        from repro.orchestrate.events import read_events, tail_events
        path = self._log(tmp_path,
                         [{"kind": "queued", "job_key": "a"},
                          {"kind": "started", "job_key": "a"}],
                         torn='{"kind": "finis')
        events = read_events(path)
        assert [e["kind"] for e in events] == ["queued", "started"]
        # The torn fragment is not consumed: once its newline lands the
        # next tail call returns it.
        events, offset, skipped = tail_events(path)
        assert skipped == 0
        with open(path, "a") as handle:
            handle.write('hed", "job_key": "a"}\n')
        more, offset2, skipped = tail_events(path, offset)
        assert [e["kind"] for e in more] == ["finished"]
        assert offset2 > offset and skipped == 0

    def test_interleaved_garbage_line_is_counted_not_raised(self, tmp_path):
        from repro.orchestrate.events import tail_events
        # A crash-torn fragment that a *restarted* writer appended
        # after: the merged line is complete but unparseable.
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "que{"kind": "started", "job_key": "a"}\n'
                        '{"kind": "finished", "job_key": "a"}\n')
        events, _, skipped = tail_events(str(path))
        assert [e["kind"] for e in events] == ["finished"]
        assert skipped == 1

    def test_missing_file_reads_empty(self, tmp_path):
        from repro.orchestrate.events import tail_events
        assert tail_events(str(tmp_path / "nope.jsonl")) == ([], 0, 0)

    def test_incremental_offsets_resume_across_calls(self, tmp_path):
        from repro.orchestrate.events import tail_events
        path = self._log(tmp_path, [{"n": i} for i in range(5)])
        first, offset, _ = tail_events(path)
        assert len(first) == 5
        again, offset2, _ = tail_events(path, offset)
        assert again == [] and offset2 == offset
        with open(path, "a") as handle:
            handle.write(json.dumps({"n": 5}) + "\n")
        more, _, _ = tail_events(path, offset)
        assert more == [{"n": 5}]


class TestCacheCounters:
    """Hit/miss/quarantine counters: dedup observability (satellite)."""

    def test_counters_track_lookups(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = spec_for()
        assert cache.get(spec) is None
        assert cache.counters["miss"] == 1
        cache.put(spec, fake_run(spec.to_dict()))
        assert cache.counters["put"] == 1
        assert cache.get(spec) is not None
        assert cache.counters["hit"] == 1

    def test_quarantine_counted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = spec_for()
        cache.put(spec, fake_run(spec.to_dict()))
        path = cache.path_for(spec.job_key())
        with open(path, "w") as handle:
            handle.write("{ torn")
        assert cache.get(spec) is None
        assert cache.counters["quarantined"] == 1
        assert cache.counters["miss"] == 1

    def test_scheduler_emits_cache_stats_event(self, tmp_path):
        batch = run_batch([spec_for()], cache_dir=str(tmp_path),
                          run_fn=fake_run)
        (stats,) = batch.events.of_kind("cache_stats")
        assert stats.detail["miss"] == 1 and stats.detail["put"] == 1
        second = run_batch([spec_for()], cache_dir=str(tmp_path),
                           run_fn=fake_run)
        (stats,) = second.events.of_kind("cache_stats")
        assert stats.detail["hit"] == 1


class TestInspectJson:
    """inspect --json shares its formatter with the serve status API."""

    def test_inspect_json_matches_shared_formatter(self, tmp_path, capsys):
        from repro.orchestrate.status import job_status_entry
        cache_dir = str(tmp_path / "cache")
        batch_path = str(tmp_path / "batch.json")
        spec = spec_for()
        run_batch([spec], cache_dir=cache_dir, run_fn=fake_run)
        from repro.orchestrate.cli import save_batch
        save_batch(batch_path, [spec, spec_for(seed=9)])
        assert main(["inspect", batch_path, "--cache-dir", cache_dir,
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 2 and doc["cached"] == 1
        assert doc["cache_counters"]["hit"] == 1
        cached = [j for j in doc["jobs"] if j["cached"]]
        missing = [j for j in doc["jobs"] if not j["cached"]]
        assert len(cached) == 1 and len(missing) == 1
        # Byte-for-byte the shared formatter's output for the hit...
        expected = job_status_entry(spec, ResultCache(cache_dir).get(spec))
        assert cached[0] == expected
        assert cached[0]["result"]["cycles"] == 101
        # ...and the failure histogram came through the tolerant reader.
        assert "failure_classes" in doc

    def test_inspect_json_whole_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path)
        run_batch([spec_for(), spec_for(seed=2)], cache_dir=cache_dir,
                  run_fn=fake_run)
        assert main(["inspect", "--cache-dir", cache_dir, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 2
        assert {j["spec"]["seed"] for j in doc["jobs"]} == {1, 2}

    def test_inspect_json_to_file(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        out = str(tmp_path / "status.json")
        run_batch([spec_for()], cache_dir=cache_dir, run_fn=fake_run)
        assert main(["inspect", "--cache-dir", cache_dir,
                     "--json", out]) == 0
        with open(out) as handle:
            doc = json.load(handle)
        assert doc["total"] == 1
