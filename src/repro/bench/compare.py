"""Baseline-vs-candidate comparison: the regression gate.

Two different severities, because the two kinds of BENCH number mean
different things:

* ``cycles`` / ``events`` are **deterministic** — the simulator
  produces them identically on any machine. A mismatch against the
  baseline is not a perf regression, it is a *behavior change*, and the
  gate reports it as such (changed behavior may be intentional; then
  the baseline is regenerated in the same PR, making the change loud
  and reviewed instead of silent).
* ``cycles_per_s`` is **host-dependent**. The gate only fails when the
  candidate loses more than ``max_regression`` of the baseline's
  throughput (default 0.5 — generous enough that CI noise and machine
  differences never flake it, tight enough that an accidental
  quadratic shows up immediately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["CaseComparison", "compare_benches", "format_comparison"]


@dataclass
class CaseComparison:
    """One case's verdict."""

    name: str
    status: str          # ok | perf_regression | behavior_change |
                         # missing | new
    ratio: float = 1.0   # candidate / baseline cycles_per_s
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("perf_regression", "behavior_change",
                               "missing")


def compare_benches(baseline: Dict[str, Any], candidate: Dict[str, Any],
                    max_regression: float = 0.5
                    ) -> Tuple[bool, List[CaseComparison]]:
    """Compare two BENCH documents; returns ``(ok, per-case verdicts)``."""
    if not 0.0 < max_regression < 1.0:
        raise ValueError("max_regression must be in (0, 1)")
    floor = 1.0 - max_regression
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    cand_cases = {c["name"]: c for c in candidate.get("cases", [])}
    verdicts: List[CaseComparison] = []
    for name, base in base_cases.items():
        cand = cand_cases.get(name)
        if cand is None:
            verdicts.append(CaseComparison(
                name, "missing", 0.0,
                "case present in baseline but not in candidate"))
            continue
        if (int(cand["cycles"]), int(cand["events"])) != \
                (int(base["cycles"]), int(base["events"])):
            verdicts.append(CaseComparison(
                name, "behavior_change", 0.0,
                f"deterministic outputs changed: cycles "
                f"{base['cycles']} -> {cand['cycles']}, events "
                f"{base['events']} -> {cand['events']} (regenerate the "
                f"baseline if intentional)"))
            continue
        base_tp = float(base["cycles_per_s"]) or 1e-9
        ratio = float(cand["cycles_per_s"]) / base_tp
        if ratio < floor:
            verdicts.append(CaseComparison(
                name, "perf_regression", ratio,
                f"{cand['cycles_per_s']:.0f} cycles/s vs baseline "
                f"{base['cycles_per_s']:.0f} ({ratio:.2f}x < "
                f"{floor:.2f}x floor)"))
        else:
            verdicts.append(CaseComparison(name, "ok", ratio))
    for name in cand_cases:
        if name not in base_cases:
            verdicts.append(CaseComparison(
                name, "new", 1.0, "not in baseline (informational)"))
    ok = not any(v.failed for v in verdicts)
    return ok, verdicts


def format_comparison(verdicts: Sequence[CaseComparison]) -> List[str]:
    lines = []
    for v in sorted(verdicts, key=lambda v: (not v.failed, v.name)):
        mark = "FAIL" if v.failed else ("new " if v.status == "new"
                                        else "ok  ")
        line = f"{mark} {v.name:<20} {v.ratio:>6.2f}x"
        if v.detail:
            line += f"  {v.detail}"
        lines.append(line)
    return lines
