"""Ablation (Section 5.2): callback directory size.

The paper simulated 4, 16, 64, and 256 entries per bank "without any
noticeable change" — the whole point of the tiny, self-contained
directory. This bench reproduces that insensitivity, plus the stressed
regime (1 entry per bank with many hot words) where eviction wakeups keep
the system correct at some performance cost.
"""

import pytest

from benchmarks.conftest import BENCH_CORES
from repro.harness.experiments import ablation_dirsize
from repro.harness.runner import run_config
from repro.workloads.microbench import LockMicrobench


def test_dirsize_insensitivity(benchmark):
    out = benchmark.pedantic(
        lambda: ablation_dirsize(num_cores=BENCH_CORES, scale=0.25,
                                 sizes=(4, 16, 64, 256), verbose=False),
        rounds=1, iterations=1,
    )
    baseline = out[4]
    for size in (16, 64, 256):
        assert out[size]["time"] == pytest.approx(baseline["time"],
                                                  rel=0.02)
        assert out[size]["traffic"] == pytest.approx(baseline["traffic"],
                                                     rel=0.02)
    ablation_dirsize(num_cores=BENCH_CORES, scale=0.25, verbose=True)


def test_single_entry_directory_still_correct(benchmark):
    """Pathological pressure: one entry per bank, contended lock. The
    protocol must stay correct (eviction answers waiters)."""
    result = benchmark.pedantic(
        lambda: run_config("CB-One", LockMicrobench("ttas", iterations=4),
                           num_cores=BENCH_CORES, cb_entries_per_bank=1),
        rounds=1, iterations=1,
    )
    assert result.cycles > 0
