"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the JobSpec's
SHA-256 content address (two-level fan-out keeps directories small for
multi-thousand-job sweeps). Each file is one self-describing record
(see :mod:`repro.orchestrate.record`), so the cache doubles as an
archive: any record can be traced back to the exact spec that produced
it, and two checkouts can be diffed mechanically.

Crash safety and integrity (:mod:`repro.ioutil`):

* writes are atomic and durable — same-directory temp file, ``fsync``,
  then :func:`os.replace` — so a killed run never publishes a torn
  record;
* every record is stored with an ``integrity`` field, a SHA-256 over
  the record's canonical form, verified (and stripped) on read, so a
  record handed back from the cache is byte-equivalent to one freshly
  computed;
* a record that fails parsing or its checksum is **quarantined** —
  renamed ``<key>.json.corrupt`` for post-mortems — and treated as a
  miss, so the damaged job simply re-runs. Records from before the
  integrity field existed verify on their embedded spec alone.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional

from repro.ioutil import (CorruptArtifactError, atomic_write_json,
                          quarantine, read_checked_json, sha256_of)
from repro.orchestrate.jobspec import JobSpec


def _verify_record(path: str) -> Dict[str, Any]:
    """Load + integrity-check one record file; the returned record has
    the ``integrity`` field already stripped (it is storage metadata,
    not part of the result — cached and fresh records compare equal).
    Raises :class:`CorruptArtifactError` on damage."""
    record = read_checked_json(path)
    if not isinstance(record, dict):
        raise CorruptArtifactError(path, "expected a JSON object")
    stated = record.pop("integrity", None)
    if stated is not None and stated != sha256_of(record):
        raise CorruptArtifactError(
            path, f"integrity mismatch (stated {str(stated)[:12]}…)")
    return record


class ResultCache:
    """A directory of finished-job records, keyed by spec content hash.

    Every lookup updates :attr:`counters` (``hit`` / ``miss`` /
    ``quarantined`` / ``put``), the cache's dedup-observability surface:
    the scheduler emits them as a ``cache_stats`` event at the end of
    each batch, ``repro-orchestrate inspect`` reports them after a
    scan, and the ``repro-serve`` status endpoint exposes them live —
    under multi-tenant load they are the direct measure of how many
    submissions collapsed onto one simulation.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        #: Lifetime lookup counters for *this* cache handle.
        self.counters: Dict[str, int] = {
            "hit": 0, "miss": 0, "quarantined": 0, "put": 0}

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """The cached record for ``spec``, or None on miss.

        A record that fails to parse or fails its integrity checksum is
        quarantined (``*.corrupt``) and counts as a miss; one whose
        embedded spec does not match (hash collision or hand-edited
        file) counts as a miss without quarantine.
        """
        path = self.path_for(spec.job_key())
        if not os.path.exists(path):
            self.counters["miss"] += 1
            return None
        try:
            record = _verify_record(path)
        except CorruptArtifactError as exc:
            quarantine(exc)
            self.counters["quarantined"] += 1
            self.counters["miss"] += 1
            return None
        if record.get("spec") != spec.to_dict():
            self.counters["miss"] += 1
            return None
        self.counters["hit"] += 1
        return record

    def put(self, spec: JobSpec, record: Dict[str, Any]) -> str:
        """Atomically and durably persist ``record`` under ``spec``'s
        key, stamped with its integrity checksum."""
        path = self.path_for(spec.job_key())
        body = {k: v for k, v in record.items() if k != "integrity"}
        atomic_write_json(path, {**body, "integrity": sha256_of(body)},
                          indent=2)
        self.counters["put"] += 1
        return path

    def contains(self, spec: JobSpec) -> bool:
        return self.get(spec) is not None

    def keys(self) -> List[str]:
        """All record keys currently on disk."""
        found = []
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return found

    def records(self) -> Iterator[Dict[str, Any]]:
        for key in self.keys():
            try:
                yield _verify_record(self.path_for(key))
            except CorruptArtifactError:
                continue

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for key in self.keys():
            os.unlink(self.path_for(key))
            removed += 1
        return removed
