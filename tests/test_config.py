"""SystemConfig: Table 2 defaults, derived geometry, validation."""

import math

import pytest

from repro.config import (PAPER_CONFIGS, CallbackMode, Protocol, SystemConfig,
                          WakePolicy, config_for)


class TestTable2Defaults:
    """The default configuration must match Table 2 of the paper."""

    def setup_method(self):
        self.cfg = SystemConfig()

    def test_core_count(self):
        assert self.cfg.num_cores == 64

    def test_block_and_page_size(self):
        assert self.cfg.line_bytes == 64
        assert self.cfg.page_bytes == 4096

    def test_l1_geometry(self):
        assert self.cfg.l1_size_bytes == 32 * 1024
        assert self.cfg.l1_ways == 4
        assert self.cfg.l1_latency == 1

    def test_llc_geometry(self):
        assert self.cfg.llc_bank_size_bytes == 256 * 1024
        assert self.cfg.llc_ways == 16
        assert self.cfg.llc_tag_latency == 6
        assert self.cfg.llc_data_latency == 12

    def test_callback_directory(self):
        assert self.cfg.cb_entries_per_bank == 4
        assert self.cfg.cb_latency == 1

    def test_memory_latency(self):
        assert self.cfg.mem_latency == 160

    def test_network(self):
        assert self.cfg.mesh_side == 8
        assert self.cfg.flit_bytes == 16
        assert self.cfg.switch_latency == 6

    def test_one_bank_per_tile(self):
        assert self.cfg.num_banks == self.cfg.num_cores

    def test_l1_sets(self):
        assert self.cfg.l1_sets == 32 * 1024 // (64 * 4)

    def test_llc_sets(self):
        assert self.cfg.llc_sets == 256 * 1024 // (64 * 16)

    def test_words_per_line(self):
        assert self.cfg.words_per_line == 8


class TestValidation:
    def test_non_square_core_count_rejected(self):
        with pytest.raises(ValueError, match="perfect square"):
            SystemConfig(num_cores=6)

    def test_line_must_divide_words(self):
        with pytest.raises(ValueError):
            SystemConfig(line_bytes=60)

    def test_page_must_divide_lines(self):
        with pytest.raises(ValueError):
            SystemConfig(page_bytes=1000)

    def test_negative_backoff_limit_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(backoff_limit=-1)

    def test_zero_cb_entries_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(cb_entries_per_bank=0)


class TestBackoffDelay:
    def test_limit_zero_is_constant(self):
        cfg = SystemConfig(backoff_limit=0)
        delays = [cfg.backoff_delay(i) for i in range(5)]
        assert len(set(delays)) == 1

    def test_exponential_growth_until_limit(self):
        cfg = SystemConfig(backoff_limit=5, backoff_base=2)
        for attempt in range(5):
            assert cfg.backoff_delay(attempt + 1) == 2 * cfg.backoff_delay(attempt)

    def test_ceiling_after_limit(self):
        cfg = SystemConfig(backoff_limit=5, backoff_base=2)
        assert cfg.backoff_delay(5) == cfg.backoff_delay(50)

    def test_monotone_nondecreasing(self):
        cfg = SystemConfig(backoff_limit=10)
        delays = [cfg.backoff_delay(i) for i in range(20)]
        assert delays == sorted(delays)


class TestConfigFor:
    def test_all_paper_labels_resolve(self):
        for label in PAPER_CONFIGS:
            cfg = config_for(label, num_cores=16)
            assert cfg.label() == label

    def test_invalidation_is_mesi(self):
        assert config_for("Invalidation").protocol is Protocol.MESI

    def test_backoff_label_sets_limit(self):
        assert config_for("BackOff-7").backoff_limit == 7
        assert config_for("BackOff-7").protocol is Protocol.VIPS_BACKOFF

    def test_cb_modes(self):
        assert config_for("CB-All").callback_mode is CallbackMode.ALL
        assert config_for("CB-One").callback_mode is CallbackMode.ONE

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError, match="unknown configuration"):
            config_for("MOESI")

    def test_overrides_pass_through(self):
        cfg = config_for("CB-One", num_cores=16, cb_entries_per_bank=64)
        assert cfg.num_cores == 16
        assert cfg.cb_entries_per_bank == 64


class TestMessageSizing:
    def test_flits_round_up(self):
        cfg = SystemConfig()
        assert cfg.flits_for(1) == 1
        assert cfg.flits_for(16) == 1
        assert cfg.flits_for(17) == 2
        assert cfg.flits_for(72) == 5

    def test_control_message_is_one_flit(self):
        assert SystemConfig().control_msg_flits == 1

    def test_line_message_bytes(self):
        cfg = SystemConfig()
        assert cfg.line_msg_bytes == 8 + 64
        assert cfg.word_msg_bytes == 8 + 8
