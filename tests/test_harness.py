"""Harness: runner plumbing, experiment functions, figures CLI."""

import pytest

from repro.config import config_for
from repro.harness import experiments
from repro.harness.figures import main as figures_main
from repro.harness.runner import RunResult, run_config, run_workload
from repro.workloads.microbench import LockMicrobench
from repro.workloads.suite import get_workload


class TestRunner:
    def test_run_workload_populates_result(self):
        cfg = config_for("CB-One", num_cores=4)
        result = run_workload(cfg, LockMicrobench("ttas", iterations=2))
        assert isinstance(result, RunResult)
        assert result.config_label == "CB-One"
        assert result.workload == "ubench_lock_ttas"
        assert result.cycles > 0
        assert result.traffic > 0
        assert result.energy.total_pj > 0

    def test_run_config_label_shorthand(self):
        result = run_config("BackOff-5", LockMicrobench("tas", iterations=1),
                            num_cores=4)
        assert result.config_label == "BackOff-5"

    def test_results_are_reproducible(self):
        a = run_config("CB-All", get_workload("radix", scale=0.2),
                       num_cores=4)
        b = run_config("CB-All", get_workload("radix", scale=0.2),
                       num_cores=4)
        assert a.cycles == b.cycles
        assert a.traffic == b.traffic
        assert a.stats.llc_accesses == b.stats.llc_accesses


class TestExperiments:
    def test_fig21_normalizes_to_invalidation(self):
        out = experiments.fig21(num_cores=4, scale=0.15, verbose=False,
                                configs=("Invalidation", "CB-One"),
                                apps=["swaptions", "radix"])
        for app in ("swaptions", "radix"):
            assert out["time"][app]["Invalidation"] == pytest.approx(1.0)
            assert out["traffic"][app]["Invalidation"] == pytest.approx(1.0)
        assert "geomean" in out["time"]

    def test_fig22_rows_have_breakdown(self):
        out = experiments.fig22(num_cores=4, scale=0.15, verbose=False,
                                configs=("Invalidation", "CB-One"),
                                apps=["swaptions"])
        row = out["energy"]["CB-One"]
        assert set(row) == {"l1", "llc", "network", "total"}

    def test_fig23_covers_both_lock_regimes(self):
        out = experiments.fig23(num_cores=4, scale=0.15, verbose=False,
                                configs=("Invalidation", "CB-One"),
                                apps=["barnes"])
        assert set(out["time"]) == {"ttas", "clh"}
        assert set(out["traffic"]) == {"ttas", "clh"}

    def test_ablation_dirsize_rows(self):
        out = experiments.ablation_dirsize(num_cores=4, scale=0.15,
                                           sizes=(4, 16),
                                           apps=["swaptions"],
                                           verbose=False)
        assert set(out) == {4, 16}

    def test_ablation_policy_rows(self):
        out = experiments.ablation_policy(num_cores=4, iterations=2,
                                          verbose=False)
        assert set(out) == {"round_robin", "random", "fifo"}


class TestFiguresCLI:
    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            figures_main(["fig99"])

    def test_quick_fig1(self, capsys):
        rc = figures_main(["fig1", "--cores", "4", "--iterations", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig1 llc_accesses" in out
        assert "BackOff-15" in out

    def test_multiple_figures_in_one_call(self, capsys):
        rc = figures_main(["ablation-policy", "--cores", "4",
                           "--iterations", "1"])
        assert rc == 0
        assert "wake policy" in capsys.readouterr().out
