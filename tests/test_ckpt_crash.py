"""Crash injection: SIGKILL a checkpointing run mid-flight and prove the
resume path — Checkpointer, orchestrator, and CLI — recovers from the
newest durable checkpoint to a bit-identical result.

The kill lands in the ``boundary_hook``, which fires *before* that
boundary's blob is written, so the process dies strictly between durable
checkpoints — the worst honest crash point (an atomic-rename tear is
covered separately by corrupting blobs on disk).
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.ckpt import (Checkpointer, CheckpointStore, build_machine,
                        capture_state, state_fingerprint)
from repro.orchestrate import JobSpec
from repro.orchestrate.scheduler import run_batch

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")

STYLES = ["Invalidation", "BackOff-5", "CB-All", "CB-One"]


def spec_for(label="CB-One", seed=1, **overrides):
    overrides.setdefault("num_cores", 4)
    return JobSpec(config_label=label, workload="lock",
                   workload_params={"lock_name": "ttas", "iterations": 2},
                   config_overrides=overrides, seed=seed)


def spec_flags(spec):
    flags = ["--workload", "lock:ttas", "--config", spec.config_label,
             "--seed", str(spec.seed), "--cores",
             str(spec.config_overrides["num_cores"]),
             "--param", "iterations=2"]
    for key, value in spec.config_overrides.items():
        if key != "num_cores":
            flags += ["--override", f"{key}={value}"]
    return flags


def run_cli(args):
    """``repro-ckpt`` in a genuinely fresh process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.ckpt.cli", *args],
        capture_output=True, text=True, env=env, timeout=120)


def baseline_fingerprint(spec):
    machine = build_machine(spec)
    stats = machine.run()
    return state_fingerprint(capture_state(machine)), stats.cycles


class TestSigkillResume:
    @pytest.mark.parametrize("label", STYLES)
    def test_killed_run_resumes_to_identical_result(self, label, tmp_path):
        spec = spec_for(label)
        store_dir = str(tmp_path)
        expected_fp, expected_cycles = baseline_fingerprint(spec)

        killed = run_cli(["save", "--dir", store_dir, "--every", "300",
                          "--sigkill-at", "500", *spec_flags(spec)])
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        store = CheckpointStore(store_dir)
        key = spec.job_key()
        partial = store.boundaries(key)
        assert partial, "must have checkpointed before dying"
        assert max(partial) < 600, "the kill boundary was never saved"

        resumed = Checkpointer(spec, store, every=300)
        stats = resumed.run()
        assert resumed.resumed_from == max(partial)
        assert stats.cycles == expected_cycles
        actual = state_fingerprint(capture_state(resumed.machine))
        assert actual == expected_fp

    def test_cli_resume_after_kill(self, tmp_path):
        spec = spec_for()
        store_dir = str(tmp_path)
        expected_fp, _ = baseline_fingerprint(spec)

        killed = run_cli(["save", "--dir", store_dir, "--every", "300",
                          "--sigkill-at", "500", *spec_flags(spec)])
        assert killed.returncode == -signal.SIGKILL

        finished = run_cli(["save", "--dir", store_dir, "--every", "300",
                            *spec_flags(spec)])
        assert finished.returncode == 0, finished.stderr
        assert "resumed from cycle 300" in finished.stdout
        assert f"fingerprint={expected_fp[:16]}" in finished.stdout

        audit = run_cli(["verify", "--dir", store_dir])
        assert audit.returncode == 0
        assert "0 corrupt" in audit.stdout

    def test_fresh_process_restore_proves_bit_parity(self, tmp_path):
        """The determinism claim that matters: a checkpoint written by
        one process restores (full verification) in another."""
        spec = spec_for()
        store_dir = str(tmp_path)
        Checkpointer(spec, CheckpointStore(store_dir), every=300).run()

        restored = run_cli(["restore", spec.job_key()[:12],
                            "--dir", store_dir, "--at", "300",
                            "--verify", "full", "--finish"])
        assert restored.returncode == 0, restored.stderr
        assert "verified (full) at boundary 300" in restored.stdout
        expected_fp, _ = baseline_fingerprint(spec)
        assert f"fingerprint={expected_fp[:16]}" in restored.stdout


class TestOrchestratorResume:
    def test_orchestrator_resumes_killed_job(self, tmp_path):
        spec = spec_for()
        store_dir = str(tmp_path / "ckpts")
        cache_dir = str(tmp_path / "cache")
        expected_fp, expected_cycles = baseline_fingerprint(spec)

        killed = run_cli(["save", "--dir", store_dir, "--every", "300",
                          "--sigkill-at", "500", *spec_flags(spec)])
        assert killed.returncode == -signal.SIGKILL

        batch = run_batch([spec], jobs=1, cache_dir=cache_dir,
                          checkpoint_dir=store_dir, checkpoint_every=300)
        assert batch.ok
        result = batch.results[0]
        assert result.status == "finished"
        assert result.resumed_from == 300
        assert result.record["meta"]["resumed_from"] == 300
        assert result.record["result"]["cycles"] == expected_cycles

        final = CheckpointStore(store_dir).latest(spec.job_key())
        assert final.final and final.fingerprint == expected_fp

    def test_checkpoint_routing_stays_out_of_job_key(self, tmp_path):
        """The cache record a checkpointed run produces must be a cache
        hit for the identical spec run without checkpointing — the
        ``_checkpoint`` payload is routing, not job content."""
        spec = spec_for(seed=3)
        cache_dir = str(tmp_path / "cache")
        with_ckpt = run_batch([spec], jobs=1, cache_dir=cache_dir,
                              checkpoint_dir=str(tmp_path / "ckpts"),
                              checkpoint_every=300)
        assert with_ckpt.results[0].status == "finished"
        without = run_batch([spec], jobs=1, cache_dir=cache_dir)
        assert without.results[0].status == "cache_hit"
        assert (without.results[0].record["result"]
                == with_ckpt.results[0].record["result"])

    def test_parallel_jobs_checkpoint_too(self, tmp_path):
        specs = [spec_for(seed=s) for s in (1, 2)]
        batch = run_batch(specs, jobs=2,
                          checkpoint_dir=str(tmp_path),
                          checkpoint_every=300)
        assert batch.ok
        store = CheckpointStore(str(tmp_path))
        for spec in specs:
            assert store.latest(spec.job_key()).final


class TestCorruptionRecovery:
    def test_resume_survives_corrupted_newest_blob(self, tmp_path):
        """SIGKILL plus a torn newest blob: resume quarantines the
        damage and restarts from the next older checkpoint."""
        spec = spec_for("Invalidation")          # longest run: 4 boundaries
        store_dir = str(tmp_path)
        expected_fp, expected_cycles = baseline_fingerprint(spec)

        killed = run_cli(["save", "--dir", store_dir, "--every", "300",
                          "--sigkill-at", "800", *spec_flags(spec)])
        assert killed.returncode == -signal.SIGKILL
        store = CheckpointStore(store_dir)
        key = spec.job_key()
        saved = store.boundaries(key)
        assert len(saved) >= 2
        newest = saved[-1]
        path = store._blob_path(key, newest)
        with open(path, "r+") as handle:       # simulate a torn write
            handle.truncate(100)

        resumed = Checkpointer(spec, store, every=300)
        stats = resumed.run()
        assert resumed.resumed_from == saved[-2]
        assert os.path.exists(path + ".corrupt")
        assert stats.cycles == expected_cycles
        fp = state_fingerprint(capture_state(resumed.machine))
        assert fp == expected_fp

    def test_all_blobs_corrupt_falls_back_to_fresh_run(self, tmp_path):
        spec = spec_for()
        store_dir = str(tmp_path)
        killed = run_cli(["save", "--dir", store_dir, "--every", "300",
                          "--sigkill-at", "500", *spec_flags(spec)])
        assert killed.returncode == -signal.SIGKILL
        store = CheckpointStore(store_dir)
        key = spec.job_key()
        for boundary in store.boundaries(key):
            with open(store._blob_path(key, boundary), "w") as handle:
                handle.write("not json at all")

        resumed = Checkpointer(spec, store, every=300)
        resumed.run()
        assert resumed.resumed_from is None    # fresh, not poisoned
        assert store.latest(key).final


class TestBlackBox:
    def failing_spec(self):
        # A tight event budget fails the run with SimulationTimeout —
        # the same persist path a deadlock/livelock takes, reachable
        # from a registry spec.
        return spec_for(max_events=120)

    def test_failure_persists_blackbox(self, tmp_path):
        from repro.sim.engine import SimulationTimeout
        spec = self.failing_spec()
        store = CheckpointStore(str(tmp_path))
        checkpointer = Checkpointer(spec, store, every=100)
        with pytest.raises(SimulationTimeout):
            checkpointer.run()
        payload = store.load_blackbox(spec.job_key())
        assert payload is not None
        assert payload["error"]["kind"] == "timeout"
        assert payload["error"]["type"] == "SimulationTimeout"
        ring = payload["ring"]
        assert ring and ring[-1]["boundary"] <= payload["checkpoint"]["boundary"]
        assert payload["checkpoint"]["spec"] == spec.to_dict()

    def test_replay_reproduces_the_failure(self, tmp_path):
        from repro.ckpt.cli import main as ckpt_main
        from repro.sim.engine import SimulationTimeout
        spec = self.failing_spec()
        store = CheckpointStore(str(tmp_path))
        checkpointer = Checkpointer(spec, store, every=100)
        with pytest.raises(SimulationTimeout):
            checkpointer.run()

        rc = ckpt_main(["replay", spec.job_key()[:12],
                        "--dir", str(tmp_path), "--quiet"])
        assert rc == 0

    def test_replay_output_names_the_error(self, tmp_path, capsys):
        from repro.ckpt.cli import main as ckpt_main
        from repro.sim.engine import SimulationTimeout
        spec = self.failing_spec()
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(SimulationTimeout):
            Checkpointer(spec, store, every=100).run()
        ckpt_main(["replay", spec.job_key()[:12], "--dir", str(tmp_path),
                   "--quiet"])
        out = capsys.readouterr().out
        assert "[timeout] SimulationTimeout" in out
        assert "reproduced: SimulationTimeout" in out
