"""Barrier algorithms: epoch integrity under every protocol.

The fundamental barrier invariant: no thread leaves episode k until every
thread has arrived at episode k. We check it by counting arrivals per
episode and asserting the count is complete at every departure.
"""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols.ops import Compute
from repro.sync import make_barrier, make_lock, style_for

LABELS = ("Invalidation", "BackOff-0", "BackOff-10", "CB-All", "CB-One")
BARRIERS = ("sr", "treesr")


def build_barrier(machine, name, style, threads, lock_name="ttas"):
    if name == "sr":
        barrier = make_barrier("sr", style, threads,
                               lock=make_lock(lock_name, style))
    else:
        barrier = make_barrier(name, style, threads)
    barrier.setup(machine.layout, threads)
    for addr, value in barrier.initial_values().items():
        machine.store.write(addr, value)
    return barrier


def run_barrier_workload(label, barrier_name, threads=4, episodes=5,
                         skew=120):
    cfg = config_for(label, num_cores=threads)
    machine = Machine(cfg)
    barrier = build_barrier(machine, barrier_name, style_for(cfg), threads)
    arrived = [0] * episodes
    violations = []

    def body(ctx):
        for k in range(episodes):
            yield Compute(1 + ctx.rng.randrange(skew))
            arrived[k] += 1
            yield from barrier.wait(ctx)
            if arrived[k] != threads:
                violations.append((ctx.tid, k, arrived[k]))

    machine.spawn([body] * threads)
    stats = machine.run()
    return stats, violations


@pytest.mark.parametrize("label", LABELS)
@pytest.mark.parametrize("barrier_name", BARRIERS)
class TestEpochIntegrity:
    def test_nobody_leaves_early(self, label, barrier_name):
        _stats, violations = run_barrier_workload(label, barrier_name)
        assert violations == []

    def test_episode_latencies_recorded(self, label, barrier_name):
        stats, _v = run_barrier_workload(label, barrier_name, threads=4,
                                         episodes=3)
        assert len(stats.episode_latencies["barrier_wait"]) == 4 * 3


@pytest.mark.parametrize("barrier_name", BARRIERS)
def test_sixteen_threads(barrier_name):
    _stats, violations = run_barrier_workload("CB-One", barrier_name,
                                              threads=16, episodes=4)
    assert violations == []


@pytest.mark.parametrize("label", LABELS)
def test_many_episodes_alternate_sense_correctly(label):
    """Back-to-back episodes exercise the sense-reversal logic hard."""
    _stats, violations = run_barrier_workload(label, "sr", threads=4,
                                              episodes=12, skew=5)
    assert violations == []


def test_tree_barrier_single_thread_degenerates():
    _stats, violations = run_barrier_workload("CB-One", "treesr", threads=1,
                                              episodes=3)
    assert violations == []


def test_atomic_sr_barrier_without_lock():
    """The Figure 14 textbook form (fetch&dec, no companion lock)."""
    cfg = config_for("CB-All", num_cores=4)
    machine = Machine(cfg)
    barrier = make_barrier("sr", style_for(cfg), 4, lock=None)
    barrier.setup(machine.layout, 4)
    for addr, value in barrier.initial_values().items():
        machine.store.write(addr, value)
    arrived = [0] * 4
    violations = []

    def body(ctx):
        for k in range(4):
            yield Compute(1 + ctx.rng.randrange(60))
            arrived[k] += 1
            yield from barrier.wait(ctx)
            if arrived[k] != 4:
                violations.append((ctx.tid, k))

    machine.spawn([body] * 4)
    machine.run()
    assert violations == []
