"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the JobSpec's
SHA-256 content address (two-level fan-out keeps directories small for
multi-thousand-job sweeps). Each file is one self-describing record
(see :mod:`repro.orchestrate.record`), so the cache doubles as an
archive: any record can be traced back to the exact spec that produced
it, and two checkouts can be diffed mechanically.

Writes go through a same-directory temp file + :func:`os.replace`, so a
killed run never leaves a truncated record behind — a half-written job
simply re-runs on resume.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterator, List, Optional

from repro.orchestrate.jobspec import JobSpec


class ResultCache:
    """A directory of finished-job records, keyed by spec content hash."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """The cached record for ``spec``, or None on miss.

        A record that fails to parse, or whose embedded spec does not
        match (hash collision or hand-edited file), counts as a miss.
        """
        path = self.path_for(spec.job_key())
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if record.get("spec") != spec.to_dict():
            return None
        return record

    def put(self, spec: JobSpec, record: Dict[str, Any]) -> str:
        """Atomically persist ``record`` under ``spec``'s key."""
        path = self.path_for(spec.job_key())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    def contains(self, spec: JobSpec) -> bool:
        return self.get(spec) is not None

    def keys(self) -> List[str]:
        """All record keys currently on disk."""
        found = []
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return found

    def records(self) -> Iterator[Dict[str, Any]]:
        for key in self.keys():
            try:
                with open(self.path_for(key)) as handle:
                    yield json.load(handle)
            except (OSError, ValueError):
                continue

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for key in self.keys():
            os.unlink(self.path_for(key))
            removed += 1
        return removed
