"""The callback directory: a tiny directory cache just for spin-waiting.

One instance per LLC bank, with ``cb_entries_per_bank`` fully-associative
entries (4 in Table 2; the paper reports no change up to 256). The
directory is *self-contained*: it is never backed by memory. Entries are
installed only by callback reads; a replacement simply answers every
pending callback of the victim with the current value (Section 2.3.1), so
no information ever needs to be preserved.

Word granularity: entries are keyed by word address, allowing independent
callbacks on different words of one line (Section 2.2).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.config import SystemConfig, WakePolicy
from repro.mem.cache import SetAssociativeCache
from repro.protocols.callback.entry import CBEntry, Waiter
from repro.protocols.table import TransitionTable
from repro.sim.stats import Stats


class CallbackDirectory:
    """Per-bank directory cache of :class:`CBEntry` records."""

    def __init__(self, config: SystemConfig, stats: Stats, bank: int,
                 entry_table: Optional[TransitionTable] = None) -> None:
        self.config = config
        self.stats = stats
        self.bank = bank
        #: Entry FSM executed by every resident CBEntry. Defaults to the
        #: registered callback table; the model-checker replay harness
        #: injects seeded-mutant tables here.
        self.entry_table = entry_table
        # Fully associative by default (cb_sets_per_bank == 1, the
        # paper's design); more sets model a cheaper, conflict-prone
        # organization. Keys are word addresses; the generic cache's
        # set index is key % sets.
        sets = config.cb_sets_per_bank
        self._cache = SetAssociativeCache(
            sets=sets, ways=config.cb_entries_per_bank // sets)
        self._rng = random.Random(config.seed * 1009 + bank)
        #: Telemetry probe bus (set when a Telemetry attaches), else None.
        self.obs = None

    def lookup(self, word: int) -> Optional[CBEntry]:
        """The entry for a word address, or None. Does not install."""
        cached = self._cache.lookup(word)
        return cached.payload if cached is not None else None

    def get_or_install(self, word: int) -> Tuple[CBEntry, List[Waiter]]:
        """The entry for ``word``, installing (and possibly evicting) if
        missing. Returns ``(entry, evicted_waiters)`` — the caller must
        answer the evicted waiters with the victim word's current value.
        """
        cached = self._cache.lookup(word)
        if cached is not None:
            return cached.payload, []
        entry = CBEntry(word, self.config.num_threads, table=self.entry_table)
        _inserted, victim = self._cache.insert(word, entry)
        self.stats.cb_installs += 1
        if self.obs is not None:
            self.obs.emit("cb.install", word=word, bank=self.bank)
        evicted: List[Waiter] = []
        if victim is not None:
            self.stats.cb_evictions += 1
            evicted = victim.payload.evict()
            self.stats.cb_eviction_wakeups += len(evicted)
            if self.obs is not None:
                self.obs.emit("cb.evict", word=victim.payload.word,
                              bank=self.bank, woken=len(evicted))
        return entry, evicted

    def victim_word(self, victim_entry: CBEntry) -> int:
        return victim_entry.word

    def force_evict(self, word: int) -> List[Waiter]:
        """Evict ``word``'s entry right now, as a fault injector would.

        This exercises the paper's Section 2.3.1 safety argument — "an
        entry can be evicted at any moment by answering all pending
        callbacks with the current value" — at an *arbitrary* cycle
        rather than only under capacity pressure. Returns the orphaned
        waiters; the caller must answer them with the word's current
        value. A miss is a no-op (returns ``[]``).
        """
        victim = self._cache.remove(word)
        if victim is None:
            return []
        self.stats.cb_evictions += 1
        self.stats.cb_forced_evictions += 1
        evicted = victim.payload.evict()
        self.stats.cb_eviction_wakeups += len(evicted)
        if self.obs is not None:
            self.obs.emit("cb.evict", word=word, bank=self.bank,
                          woken=len(evicted), forced=True)
        return evicted

    def rng_next(self, bound: int) -> int:
        return self._rng.randrange(bound)

    def discard(self, word: int) -> List[Waiter]:
        """Drop ``word``'s entry WITHOUT answering its callbacks.

        No live protocol path does this — eviction always wakes
        (Section 2.3.1). The model-checker replay harness uses it to
        mirror a mutant table's emit-driven deallocation (``free`` on a
        write), so seeded-bad counterexamples reproduce bit-for-bit.
        Returns the orphaned waiters for the harness to account for.
        """
        victim = self._cache.remove(word)
        if victim is None:
            return []
        return list(victim.payload.waiters.values())

    # --------------------------------------------------------------- writes

    def on_write_all(self, word: int) -> List[Waiter]:
        entry = self.lookup(word)
        if entry is None:
            return []
        woken = entry.write_all(0)
        self.stats.cb_wakeups += len(woken)
        return woken

    def on_write_one(self, word: int) -> Optional[Waiter]:
        entry = self.lookup(word)
        if entry is None:
            return None
        waiter = entry.write_one(0, self.config.cb_wake_policy, self.rng_next)
        if waiter is not None:
            self.stats.cb_wakeups += 1
        return waiter

    def on_write_zero(self, word: int) -> None:
        entry = self.lookup(word)
        if entry is None:
            return
        entry.write_zero(0)

    # ---------------------------------------------------------------- reads

    def on_read_through(self, word: int, core: int) -> None:
        """ld_through consumes the F/E bit if an entry exists (Table 1),
        but never installs one."""
        entry = self.lookup(word)
        if entry is not None:
            entry.try_consume(core)

    def occupancy(self) -> int:
        return len(self._cache)

    def active_entries(self) -> int:
        """Entries with at least one pending callback right now."""
        return sum(1 for entry in self._cache
                   if entry.payload.has_callbacks())

    def parked_waiters(self) -> int:
        """Total callbacks pending across all resident entries."""
        return sum(len(entry.payload.waiters) for entry in self._cache)

    def note_activity(self) -> None:
        """Update the peak-active-entries gauge (called after a park)."""
        active = self.active_entries()
        if active > self.stats.cb_max_active_entries:
            self.stats.cb_max_active_entries = active

    def resident_words(self) -> List[int]:
        return self._cache.lines()

    def resident_entries(self) -> List[CBEntry]:
        """Resident entries in replacement order (oldest first), without
        touching recency — observation only."""
        return [line.payload for line in self._cache]

    def ckpt_state(self) -> dict:
        """Resident entries (replacement order preserved) plus a digest
        of the wake-policy RNG stream (checkpoint capture)."""
        import hashlib
        rng = hashlib.sha256(repr(self._rng.getstate()).encode()).hexdigest()
        return {"bank": self.bank,
                "entries": self._cache.ckpt_state(
                    lambda entry: entry.ckpt_state()),
                "rng": rng[:16]}
