"""The scenario catalog the checker sweeps.

Each scenario is a small, closed workload chosen to exercise one
synchronization pattern end to end: flag handoff (signal-wait), lock
handoff (mutex), directory overflow (capacity eviction with parked
waiters), forced eviction (the Section 2.3.1 'at any moment' safety
argument), and fence hygiene. The CI smoke sweep runs every scenario at
2 and 3 cores; the mutant gate pins each seeded-bad table to the
scenario that exposes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analyze.mc.model import OpT, Scenario

__all__ = ["scenario_catalog", "scenarios_for", "find_scenario"]


def _flag_write(protocol: str) -> OpT:
    """The producer's flag publication, in each protocol's idiom: a DRF
    store under MESI, a write-through under VIPS (the flag is racy), an
    st_cbA under callback (wake every waiter)."""
    if protocol == "mesi":
        return ("st", 1, 1)
    if protocol == "vips":
        return ("write", 1, 1, "through")
    return ("write", 1, 1, "all")


def _base_invariants(protocol: str) -> Tuple[str, ...]:
    if protocol == "mesi":
        return ("swmr", "data_value")
    if protocol == "callback":
        return ("cb_consistency",)
    return ()


def handoff(protocol: str, cores: int) -> Scenario:
    """Signal-wait: core 0 publishes data then a flag; everyone else
    waits on the flag and reads the data."""
    producer: Tuple[OpT, ...] = (("st", 0, 42), _flag_write(protocol))
    consumer: Tuple[OpT, ...] = (("await", 1, 1), ("ld", 0))
    return Scenario(
        name=f"handoff{cores}",
        protocol=protocol,
        programs=(producer,) + (consumer,) * (cores - 1),
        words=2,
        invariants=_base_invariants(protocol),
        description=f"{cores}-core flag handoff (signal-wait)",
    )


def mutex(protocol: str, cores: int) -> Scenario:
    """Lock handoff: every core acquires and releases one TAS lock."""
    program: Tuple[OpT, ...] = (("acquire", 0), ("release", 0))
    return Scenario(
        name=f"mutex{cores}",
        protocol=protocol,
        programs=(program,) * cores,
        words=1,
        invariants=("mutex",) + _base_invariants(protocol),
        description=f"{cores}-core TAS lock handoff",
    )


def overflow(cores: int) -> Scenario:
    """Callback-directory capacity pressure: more awaited words than
    entries, so installs evict entries whose waiters must be answered
    (Section 2.3.1). One writer, ``cores - 1`` waiters on distinct
    words, a single-entry bank."""
    waiters = cores - 1
    writer: Tuple[OpT, ...] = tuple(
        ("write", word, 1, "all") for word in range(waiters))
    programs: List[Tuple[OpT, ...]] = [writer]
    for word in range(waiters):
        programs.append((("await", word, 1),))
    return Scenario(
        name=f"overflow{cores}",
        protocol="callback",
        programs=tuple(programs),
        words=max(waiters, 1),
        cb_entries=1,
        invariants=("cb_consistency",),
        description=(f"{cores}-core overflow: {waiters} awaited words "
                     f"through a 1-entry bank"),
    )


def evict(cores: int) -> Scenario:
    """Forced eviction at any moment (environment moves) racing one
    writer and one-or-more waiters on a single word."""
    writer: Tuple[OpT, ...] = (("write", 0, 1, "all"),)
    waiter: Tuple[OpT, ...] = (("await", 0, 1),)
    return Scenario(
        name=f"evict{cores}",
        protocol="callback",
        programs=(writer,) + (waiter,) * (cores - 1),
        words=1,
        env_evictions=True,
        invariants=("cb_consistency",),
        description=(f"{cores}-core wait/wake under spontaneous entry "
                     f"evictions"),
    )


def fence(protocol: str, cores: int) -> Scenario:
    """Fence hygiene: consumers cache stale data, synchronize on a flag,
    then must self-invalidate before re-reading."""
    producer: Tuple[OpT, ...] = (("st", 0, 42), _flag_write(protocol))
    consumer: Tuple[OpT, ...] = (
        ("ld", 0),              # cache the stale value pre-sync
        ("await", 1, 1),
        ("fence", "invl"),      # acquire fence: drop shared lines
        ("ld", 0),
    )
    return Scenario(
        name=f"fence{cores}",
        protocol=protocol,
        programs=(producer,) + (consumer,) * (cores - 1),
        words=2,
        invariants=("fence_hygiene",) + _base_invariants(protocol),
        description=f"{cores}-core acquire-fence hygiene",
    )


def scenario_catalog(cores: Tuple[int, ...] = (2, 3)) -> List[Scenario]:
    """Every scenario at every requested core count."""
    catalog: List[Scenario] = []
    for n in cores:
        for protocol in ("mesi", "vips", "callback"):
            catalog.append(handoff(protocol, n))
            catalog.append(mutex(protocol, n))
        for protocol in ("vips", "callback"):
            catalog.append(fence(protocol, n))
        if n >= 3:
            catalog.append(overflow(n))
        catalog.append(evict(n))
    return catalog


def scenarios_for(protocol: str,
                  cores: Tuple[int, ...] = (2, 3)) -> List[Scenario]:
    return [scenario for scenario in scenario_catalog(cores)
            if scenario.protocol == protocol]


def find_scenario(protocol: str, name: str,
                  cores: Tuple[int, ...] = (2, 3, 4)) -> Optional[Scenario]:
    for scenario in scenario_catalog(cores):
        if scenario.protocol == protocol and scenario.name == name:
            return scenario
    return None
