"""Directory-based MESI: the paper's Invalidation baseline."""

from repro.protocols.mesi.protocol import MESIProtocol
from repro.protocols.mesi.states import DirEntry, L1Line, MESIState

__all__ = ["DirEntry", "L1Line", "MESIProtocol", "MESIState"]
