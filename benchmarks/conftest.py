"""Benchmark-harness defaults.

Benchmarks run CI-sized machines (16 cores, reduced workload scale) so the
whole suite finishes in minutes; the shapes they assert are the same ones
the full 64-core runs show (use ``repro-figures --cores 64`` for those).
"""

import pytest

#: Machine size for benchmark runs (4x4 mesh).
BENCH_CORES = 16
#: Workload scale for suite-based benches.
BENCH_SCALE = 0.25
#: Microbenchmark iterations.
BENCH_ITERS = 5


@pytest.fixture
def bench_cores():
    return BENCH_CORES


@pytest.fixture
def bench_scale():
    return BENCH_SCALE


@pytest.fixture
def bench_iters():
    return BENCH_ITERS
