"""Extension: callback-directory access latency sensitivity.

Table 2 gives the 4-entry directory a 1-cycle access. A skeptic might
ask whether the results depend on that aggressive number — a wider CAM
or a further placement could cost several cycles. This sweep shows the
callback advantage is insensitive to it: the directory is consulted
once per parked read (not per spin iteration), so even 8 cycles per
access is noise against the round trips it eliminates.
"""

import pytest

from benchmarks.conftest import BENCH_CORES, BENCH_ITERS
from repro.harness.runner import run_config
from repro.workloads.microbench import LockMicrobench


def test_cb_latency_sensitivity(benchmark):
    def sweep():
        out = {}
        for latency in (1, 2, 4, 8):
            out[latency] = run_config(
                "CB-One", LockMicrobench("ttas", iterations=BENCH_ITERS),
                num_cores=BENCH_CORES, cb_latency=latency)
        out["backoff"] = run_config(
            "BackOff-10", LockMicrobench("ttas", iterations=BENCH_ITERS),
            num_cores=BENCH_CORES)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slowest_cb = max(out[lat].cycles for lat in (1, 2, 4, 8))
    fastest_cb = min(out[lat].cycles for lat in (1, 2, 4, 8))
    # 8x the directory latency moves completion time by only a few %.
    assert slowest_cb <= fastest_cb * 1.10
    # And even the slowest callback directory beats back-off spinning on
    # LLC accesses.
    assert (out[8].llc_sync < out["backoff"].llc_sync)
    for latency in (1, 2, 4, 8):
        print(f"cb_latency={latency}: cycles={out[latency].cycles} "
              f"llc_sync={out[latency].llc_sync}")
