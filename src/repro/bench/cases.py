"""The standard bench case matrix and its runner.

Cases run the :class:`~repro.core.machine.Machine` directly — no
telemetry, no checkpointing, no orchestration — because the number the
trajectory tracks is the *engine's* throughput, and every layer on top
has its own bench. Timing is best-of-N wall clock (minimum sheds
scheduler noise better than the mean on a busy CI host); the
deterministic outputs (simulated cycles, engine events executed) are
asserted identical across the N repeats before they are reported,
which turns every bench run into a free determinism check.

The matrix deliberately mirrors the paper's protagonists: the callback
protocol (CB-One) and the invalidation baseline, over lock, barrier,
and signal/wait synchronization — the hot paths the engine-overhaul
roadmap item will rework.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import config_for
from repro.core.machine import Machine
from repro.orchestrate.registry import build_workload

__all__ = ["BenchCase", "DEFAULT_CASES", "run_case", "run_cases"]


@dataclass(frozen=True)
class BenchCase:
    """One point of the trajectory: workload x protocol x machine."""

    name: str
    workload: str                    # registry spec name
    params: Tuple[Tuple[str, Any], ...]  # workload params, hashable form
    protocol: str                    # config label (CB-One, Invalidation)
    cores: int = 16
    seed: int = 1

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


def _case(name: str, workload: str, params: Dict[str, Any],
          protocol: str, cores: int = 16, seed: int = 1) -> BenchCase:
    return BenchCase(name=name, workload=workload,
                     params=tuple(sorted(params.items())),
                     protocol=protocol, cores=cores, seed=seed)


#: The committed trajectory matrix (results/BENCH_engine.json tracks it).
DEFAULT_CASES: Tuple[BenchCase, ...] = (
    _case("lock_ttas_cb", "lock",
          {"lock_name": "ttas", "iterations": 5}, "CB-One"),
    _case("lock_ttas_inv", "lock",
          {"lock_name": "ttas", "iterations": 5}, "Invalidation"),
    _case("barrier_sr_cb", "barrier",
          {"barrier_name": "sr", "episodes": 4}, "CB-One"),
    _case("signal_wait_cb", "signal_wait",
          {"rounds": 6}, "CB-One"),
    _case("task_queue_cb", "task_queue",
          {"tasks": 24}, "CB-One"),
)


def run_case(case: BenchCase, iters: int = 3,
             handicap: float = 0.0) -> Dict[str, Any]:
    """Measure one case: best-of-``iters`` wall time plus the exact
    deterministic outputs.

    ``handicap`` (testing hook, surfaced in the document) inflates the
    recorded wall time by the given factor — a deterministic injected
    slowdown for exercising the regression gate without a sleep.
    """
    if iters < 1:
        raise ValueError("iters must be >= 1")
    best = float("inf")
    cycles: Optional[int] = None
    events: Optional[int] = None
    for _ in range(iters):
        config = config_for(case.protocol, seed=case.seed,
                            num_cores=case.cores)
        workload = build_workload(case.workload, case.params_dict())
        machine = Machine(config)
        workload.install(machine)
        t0 = time.perf_counter()
        stats = machine.run()
        wall = time.perf_counter() - t0
        best = min(best, wall)
        if cycles is None:
            cycles, events = stats.cycles, machine.events_executed
        elif (cycles, events) != (stats.cycles, machine.events_executed):
            raise AssertionError(
                f"{case.name}: non-deterministic repeat "
                f"({cycles}/{events} then {stats.cycles}/"
                f"{machine.events_executed})")
    wall_s = best * (1.0 + handicap)
    return {
        "name": case.name,
        "workload": case.workload,
        "params": case.params_dict(),
        "protocol": case.protocol,
        "cores": case.cores,
        "seed": case.seed,
        "cycles": int(cycles or 0),
        "events": int(events or 0),
        "wall_s": round(wall_s, 6),
        "cycles_per_s": round((cycles or 0) / wall_s, 1) if wall_s else 0,
        "events_per_s": round((events or 0) / wall_s, 1) if wall_s else 0,
    }


def run_cases(cases: Sequence[BenchCase] = DEFAULT_CASES,
              iters: int = 3, handicap: float = 0.0,
              progress=None) -> List[Dict[str, Any]]:
    results = []
    for case in cases:
        if progress is not None:
            progress(case)
        results.append(run_case(case, iters=iters, handicap=handicap))
    return results
