"""The static encoding linter: Table-1 discipline over driven ops.

Each registered :class:`PrimitiveSpec` says how to build a primitive,
which generator methods make up its sessions (and their fence
obligations), and what the wake-up write of its spun-on words must look
like. :func:`lint_primitive` symbolically drives every session per
style under several :class:`~repro.analyze.symbolic.StubPolicy`
schedules (fast path, short spin, long spin, failing atomics) and runs
the rule checks of :mod:`repro.analyze.rules` over the recorded ops.

Workload generators are linted the same way (:func:`lint_workload`),
but as ``BODY`` sessions: op-level rules only, since a whole thread
body has no single fence obligation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.config import config_for
from repro.core.machine import Machine
from repro.core.thread import ThreadContext
from repro.protocols import ops
from repro.sync.base import SyncPrimitive, SyncStyle
from repro.sync.clh import CLHLock
from repro.sync.dissemination_barrier import DisseminationBarrier
from repro.sync.mcs import MCSLock
from repro.sync.rwlock import RWLock
from repro.sync.signal_wait import SignalWait
from repro.sync.sr_barrier import SRBarrier
from repro.sync.tas import TASLock
from repro.sync.ticket import TicketLock
from repro.sync.treesr_barrier import TreeSRBarrier
from repro.sync.ttas import TTASLock

from repro.analyze.findings import Finding, Report
from repro.analyze.rules import (CB_STYLES, RULES, SI_STYLES, SessionKind,
                                 WakeupDiscipline, legal_atomic_pair)
from repro.analyze.symbolic import (LintContext, LintLayout, OpRecord,
                                    SessionRun, StubPolicy, drive_session)

ALL_STYLES: Tuple[SyncStyle, ...] = tuple(SyncStyle)

#: (load spin rounds, atomic fail rounds) schedules the driver explores.
POLICY_ROUNDS: Tuple[Tuple[int, int], ...] = ((0, 0), (1, 1), (3, 3), (0, 2))

#: Style -> paper configuration label, for workload linting.
STYLE_LABELS: Dict[SyncStyle, str] = {
    SyncStyle.MESI: "Invalidation",
    SyncStyle.VIPS: "BackOff-10",
    SyncStyle.CB_ALL: "CB-All",
    SyncStyle.CB_ONE: "CB-One",
}


@dataclass(frozen=True)
class PrimitiveSpec:
    """How to lint one synchronization algorithm."""

    name: str
    factory: Callable[[SyncStyle, int], SyncPrimitive]
    #: (method name, fence obligation) driven in order, per thread.
    sessions: Tuple[Tuple[str, SessionKind], ...]
    #: What a releasing write to this primitive's wake words must be.
    discipline: WakeupDiscipline
    #: The spun-on words whose wake-up writes the discipline governs
    #: (None for single-waiter structures, which need no check).
    wake_addrs: Optional[Callable[[SyncPrimitive], Set[int]]] = None
    episodes: int = 2
    num_threads: int = 4


_LOCK = (("acquire", SessionKind.ENTER), ("release", SessionKind.EXIT))
_BARRIER = (("wait", SessionKind.FULL),)

PRIMITIVE_SPECS: Dict[str, PrimitiveSpec] = {spec.name: spec for spec in (
    PrimitiveSpec("tas", lambda s, n: TASLock(s), _LOCK,
                  WakeupDiscipline.ONE, lambda p: {p.addr}),
    PrimitiveSpec("ttas", lambda s, n: TTASLock(s), _LOCK,
                  WakeupDiscipline.ONE, lambda p: {p.addr}),
    PrimitiveSpec("ticket", lambda s, n: TicketLock(s), _LOCK,
                  WakeupDiscipline.BROADCAST,
                  lambda p: {p.now_serving_addr}),
    PrimitiveSpec("clh", lambda s, n: CLHLock(s), _LOCK,
                  WakeupDiscipline.SINGLE_WAITER),
    PrimitiveSpec("mcs", lambda s, n: MCSLock(s), _LOCK,
                  WakeupDiscipline.SINGLE_WAITER),
    PrimitiveSpec("rwlock", lambda s, n: RWLock(s),
                  (("acquire_read", SessionKind.ENTER),
                   ("release_read", SessionKind.EXIT),
                   ("acquire_write", SessionKind.ENTER),
                   ("release_write", SessionKind.EXIT)),
                  WakeupDiscipline.BROADCAST,
                  lambda p: {p.state_addr, p.writers_waiting_addr}),
    PrimitiveSpec("signal_wait", lambda s, n: SignalWait(s),
                  (("signal", SessionKind.EXIT),
                   ("wait", SessionKind.ENTER)),
                  WakeupDiscipline.ONE, lambda p: {p.counter_addr}),
    PrimitiveSpec("sr", lambda s, n: SRBarrier(s, n, lock=TTASLock(s)),
                  _BARRIER, WakeupDiscipline.BROADCAST,
                  lambda p: {p.sense_addr}),
    PrimitiveSpec("sr_atomic", lambda s, n: SRBarrier(s, n), _BARRIER,
                  WakeupDiscipline.BROADCAST, lambda p: {p.sense_addr}),
    PrimitiveSpec("treesr", lambda s, n: TreeSRBarrier(s, n), _BARRIER,
                  WakeupDiscipline.SINGLE_WAITER),
    PrimitiveSpec("dissemination",
                  lambda s, n: DisseminationBarrier(s, n), _BARRIER,
                  WakeupDiscipline.SINGLE_WAITER),
)}

#: The workload specs the CLI/CI lint by default (name, params).
DEFAULT_WORKLOADS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("lock", {"lock_name": "ttas", "iterations": 2}),
    ("lock", {"lock_name": "clh", "iterations": 2}),
    ("barrier", {"barrier_name": "sr", "episodes": 2}),
    ("barrier", {"barrier_name": "treesr", "episodes": 2}),
    ("barrier", {"barrier_name": "dissemination", "episodes": 2}),
    ("signal_wait", {"rounds": 2}),
    ("pipeline", {"items": 2}),
    ("task_queue", {"tasks": 3}),
    ("app", {"name": "fft", "scale": 0.1}),
)


# --------------------------------------------------------------- op views


def op_name(op: ops.Op) -> str:
    """The Table-1 spelling of an op, for finding messages."""
    if isinstance(op, ops.Atomic):
        return (f"Atomic[{op.kind.name.lower()} "
                f"{{{op.ld.value}}}&{{{op.st.value}}}]")
    if isinstance(op, ops.Fence):
        return f"Fence[{op.kind.value}]"
    return type(op).__name__


def _store_kind(op: ops.Op) -> Optional[ops.StKind]:
    """The StKind of a racy write op (None for everything else)."""
    if isinstance(op, ops.StoreThrough):
        return ops.StKind.CBA
    if isinstance(op, ops.StoreCB1):
        return ops.StKind.CB1
    if isinstance(op, ops.StoreCB0):
        return ops.StKind.CB0
    if isinstance(op, ops.Atomic):
        return op.st
    return None


def _is_racy(op: ops.Op) -> bool:
    return isinstance(op, (ops.LoadThrough, ops.LoadCB, ops.StoreThrough,
                           ops.StoreCB1, ops.StoreCB0, ops.Atomic))


# ----------------------------------------------------------- rule engine


class _Checker:
    """Applies the rule catalog to the session runs of one (spec, style,
    policy) drive."""

    def __init__(self, spec: PrimitiveSpec, style: SyncStyle,
                 primitive: Optional[SyncPrimitive]) -> None:
        self.spec = spec
        self.style = style
        self.primitive = primitive
        self.findings: List[Finding] = []
        self.si = style in SI_STYLES
        self.cb = style in CB_STYLES
        # Cross-session state (one primitive instance).
        self.racy_addrs: Set[int] = set()
        self.spun_cb_addrs: Set[int] = set()
        self.writes: Dict[int, List[Tuple[SessionRun, OpRecord,
                                          ops.StKind]]] = {}
        self.plain: List[Tuple[SessionRun, OpRecord, int]] = []

    # ------------------------------------------------------------ emit

    def emit(self, rule_id: str, run: Optional[SessionRun],
             record: Optional[OpRecord], detail: str = "") -> None:
        rule = RULES[rule_id]
        message = rule.title
        if record is not None:
            message = f"{op_name(record.op)}: {message}"
        if detail:
            message = f"{message} ({detail})"
        self.findings.append(Finding(
            rule=rule_id, severity=rule.severity, message=message,
            primitive=run.primitive if run else self.spec.name,
            style=self.style.value,
            session=run.session if run else None,
            file=record.file if record else None,
            line=record.line if record else None,
        ))

    # --------------------------------------------------------- per run

    def check_run(self, run: SessionRun) -> None:
        probed: Set[int] = set()       # non-blockingly probed this session
        unguarded: Set[int] = set()    # E107 already reported (per addr)
        a202: Set[int] = set()
        a201 = False
        prev_op: Optional[ops.Op] = None
        for record in run.records:
            op = record.op
            if isinstance(op, ops.SpinUntil):
                if self.si:
                    self.emit("CB-E101", run, record)
            elif isinstance(op, ops.LoadThrough):
                if self.style is SyncStyle.MESI:
                    self.emit("CB-E103", run, record)
                self.racy_addrs.add(op.addr)
                if (self.style is SyncStyle.VIPS
                        and isinstance(prev_op, ops.LoadThrough)
                        and prev_op.addr == op.addr
                        and op.addr not in a202):
                    a202.add(op.addr)
                    self.emit("CB-A202", run, record)
                probed.add(op.addr)
            elif isinstance(op, ops.LoadCB):
                if not self.cb:
                    self.emit("CB-E102", run, record)
                else:
                    self.racy_addrs.add(op.addr)
                    self.spun_cb_addrs.add(op.addr)
                    self._check_guard(run, record, op.addr, probed,
                                      unguarded)
            elif isinstance(op, (ops.StoreThrough, ops.StoreCB1,
                                 ops.StoreCB0)):
                if self.style is SyncStyle.MESI:
                    self.emit("CB-E103", run, record)
                elif not self.cb and isinstance(op, (ops.StoreCB1,
                                                     ops.StoreCB0)):
                    self.emit("CB-E102", run, record)
                self.racy_addrs.add(op.addr)
                self.writes.setdefault(op.addr, []).append(
                    (run, record, _store_kind(op)))
            elif isinstance(op, ops.Atomic):
                if not legal_atomic_pair(self.style, op.ld, op.st):
                    self.emit("CB-E102", run, record,
                              "callback halves need a callback directory")
                self.racy_addrs.add(op.addr)
                self.writes.setdefault(op.addr, []).append(
                    (run, record, op.st))
                if op.ld is ops.LdKind.CB:
                    self.spun_cb_addrs.add(op.addr)
                    self._check_guard(run, record, op.addr, probed,
                                      unguarded)
                else:
                    probed.add(op.addr)
            elif isinstance(op, ops.Fence):
                if self.style is SyncStyle.MESI:
                    self.emit("CB-E103", run, record)
            elif isinstance(op, ops.BackoffWait):
                if self.cb and not a201:
                    a201 = True
                    self.emit("CB-A201", run, record)
            elif isinstance(op, ops.Load):
                self.plain.append((run, record, op.addr))
            elif isinstance(op, ops.Store):
                self.plain.append((run, record, op.addr))
            prev_op = op
        self._check_fences(run)
        if run.truncated:
            self.emit("LINT-W001", run, run.records[-1] if run.records
                      else None)
        if run.error:
            self.emit("LINT-W002", run,
                      run.records[-1] if run.records else None, run.error)

    def _check_guard(self, run: SessionRun, record: OpRecord, addr: int,
                     probed: Set[int], unguarded: Set[int]) -> None:
        """CB-E107: a ld_cb must follow a non-blocking probe."""
        if addr not in probed and addr not in unguarded:
            unguarded.add(addr)
            self.emit("CB-E107", run, record)

    def _check_fences(self, run: SessionRun) -> None:
        """CB-E105/CB-E106 over one completed session."""
        if not self.si or run.truncated or run.error:
            return
        kind = SessionKind(run.kind)
        racy = [r for r in run.records if _is_racy(r.op)]
        if not racy:
            return
        if kind in (SessionKind.ENTER, SessionKind.FULL):
            has_invl = any(isinstance(r.op, ops.Fence)
                           and r.op.kind is ops.FenceKind.SELF_INVL
                           for r in run.records)
            if not has_invl:
                self.emit("CB-E105", run, racy[0])
        if kind in (SessionKind.EXIT, SessionKind.FULL):
            for record in run.records:
                if (isinstance(record.op, ops.Fence)
                        and record.op.kind is ops.FenceKind.SELF_DOWN):
                    break
                if _store_kind(record.op) is not None:
                    self.emit("CB-E106", run, record)
                    break

    # ------------------------------------------------------- aggregate

    def finish(self) -> List[Finding]:
        if self.si:
            for run, record, addr in self.plain:
                if addr in self.racy_addrs:
                    self.emit("CB-E104", run, record,
                              f"word {addr:#x} is accessed racily "
                              f"elsewhere in this encoding")
        if self.cb:
            self._check_dead_wakeups()
            self._check_discipline()
        return self.findings

    def _check_dead_wakeups(self) -> None:
        """CB-E110: a spun word whose only writes are st_cb0."""
        for addr in sorted(self.spun_cb_addrs):
            writes = self.writes.get(addr, [])
            kinds = {st for _, _, st in writes}
            if kinds and kinds <= {ops.StKind.CB0}:
                run, record, _ = writes[0]
                self.emit("CB-E110", run, record,
                          f"word {addr:#x} is ld_cb-spun")

    def _check_discipline(self) -> None:
        """CB-E108/CB-E109 over the primitive's wake-up words."""
        if self.spec.wake_addrs is None or self.primitive is None:
            return
        wake_addrs = self.spec.wake_addrs(self.primitive)
        for addr in sorted(wake_addrs):
            for run, record, st in self.writes.get(addr, []):
                if SessionKind(run.kind) not in (SessionKind.EXIT,
                                                 SessionKind.FULL):
                    continue
                if (self.spec.discipline is WakeupDiscipline.ONE
                        and self.style is SyncStyle.CB_ONE
                        and st is not ops.StKind.CB1):
                    self.emit("CB-E108", run, record)
                elif (self.spec.discipline is WakeupDiscipline.BROADCAST
                        and st is not ops.StKind.CBA):
                    self.emit("CB-E109", run, record)


# -------------------------------------------------------------- driving


def _dedup(findings: Iterable[Finding]) -> List[Finding]:
    seen: Dict[Tuple, Finding] = {}
    for finding in findings:
        key = (finding.rule, finding.file, finding.line, finding.session)
        seen.setdefault(key, finding)
    return list(seen.values())


def lint_primitive(spec: PrimitiveSpec, style: SyncStyle,
                   policy_rounds: Sequence[Tuple[int, int]] = POLICY_ROUNDS,
                   budget: int = 600) -> Report:
    """Lint one synchronization algorithm under one style."""
    collected: List[Finding] = []
    for load_rounds, atomic_rounds in policy_rounds:
        primitive = spec.factory(style, spec.num_threads)
        layout = LintLayout()
        primitive.setup(layout, spec.num_threads)
        policy = StubPolicy(spec.num_threads, load_rounds,
                            memory=dict(primitive.initial_values()),
                            atomic_rounds=atomic_rounds)
        checker = _Checker(spec, style, primitive)
        for _episode in range(spec.episodes):
            for tid in range(spec.num_threads):
                ctx = LintContext(tid, spec.num_threads)
                for method, kind in spec.sessions:
                    gen = getattr(primitive, method)(ctx)
                    policy.begin_session()
                    records, truncated, error = drive_session(gen, policy,
                                                              budget)
                    checker.check_run(SessionRun(
                        primitive=spec.name, style=style.value,
                        session=method, kind=kind.value, tid=tid,
                        policy=policy.name, records=records,
                        truncated=truncated, error=error))
        collected.extend(checker.finish())
    return Report(findings=_dedup(collected))


def lint_workload(name: str, params: Mapping[str, Any],
                  style: SyncStyle, budget: int = 4000) -> Report:
    """Lint one workload spec's thread bodies under one style.

    The workload builds against a real (never-run) 4-core machine so its
    primitives and regions get genuine layout addresses; the bodies are
    then driven symbolically like sync sessions, as ``BODY`` runs
    (op-level rules only).
    """
    from repro.orchestrate.registry import build_workload

    config = config_for(STYLE_LABELS[style], num_cores=4)
    machine = Machine(config)
    workload = build_workload(name, dict(params))
    bodies = workload.build(machine)
    memory = {index * config.word_bytes: value
              for index, value in machine.store.snapshot().items()}
    policy = StubPolicy(len(bodies), 0, memory=memory)
    label = workload.name
    spec = PrimitiveSpec(label, lambda s, n: None, (),
                         WakeupDiscipline.SINGLE_WAITER)
    checker = _Checker(spec, style, None)
    for tid, body in enumerate(bodies):
        ctx = ThreadContext(tid, config, machine.engine, machine.stats)
        policy.begin_session()
        records, truncated, error = drive_session(body(ctx), policy, budget)
        checker.check_run(SessionRun(
            primitive=label, style=style.value, session=f"body[{tid}]",
            kind=SessionKind.BODY.value, tid=tid, policy=policy.name,
            records=records, truncated=truncated, error=error))
    return Report(findings=_dedup(checker.finish()))


def lint_all(primitives: Optional[Sequence[str]] = None,
             styles: Sequence[SyncStyle] = ALL_STYLES,
             workloads: Optional[Sequence[Tuple[str, Mapping[str, Any]]]]
             = DEFAULT_WORKLOADS) -> Report:
    """Lint every registered encoding (and workload) under ``styles``."""
    report = Report()
    names = list(primitives) if primitives is not None \
        else list(PRIMITIVE_SPECS)
    for name in names:
        spec = PRIMITIVE_SPECS[name]
        for style in styles:
            report.merge(lint_primitive(spec, style))
    for name, params in (workloads or ()):
        for style in styles:
            report.merge(lint_workload(name, params, style))
    # Imported here, not at module top: coverage imports PRIMITIVE_SPECS
    # from this module.
    from repro.analyze.coverage import lint_spec_coverage
    report.merge(lint_spec_coverage())
    return report
