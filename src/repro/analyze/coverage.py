"""Spec-coverage lint: every registered artifact has its analysis twin.

Two registries anchor the repo's checkers:

* :data:`repro.sync.registry.REGISTERED_PRIMITIVES` — the primitives the
  factories can build. Each must carry a
  :class:`~repro.analyze.linter.PrimitiveSpec`, otherwise the static
  Table-1 linter silently never drives it (**CB-A210**).
* :data:`repro.protocols.PROTOCOL_REGISTRY` — the protocol backends.
  Each must register at least one declarative
  :class:`~repro.protocols.table.TransitionTable`, otherwise the model
  checker (``repro-analyze mc``) cannot explore it and the live FSM has
  no single declarative source (**CB-A211**).

Both rules sit in the historical A2xx (advisory) ID range but are
ERROR severity: a gap here means a whole artifact escapes analysis, not
a style nit. The lint runs as part of ``repro-analyze lint`` and is
cheap (pure registry introspection, no simulation).
"""

from __future__ import annotations

from repro.analyze.findings import Finding, Report, Severity
from repro.analyze.linter import PRIMITIVE_SPECS
from repro.protocols import PROTOCOL_REGISTRY, tables_for
from repro.sync.registry import REGISTERED_PRIMITIVES


def lint_spec_coverage() -> Report:
    """Cross-check the sync and protocol registries against their
    analysis counterparts (rules CB-A210 / CB-A211)."""
    report = Report()
    for name in REGISTERED_PRIMITIVES:
        if name not in PRIMITIVE_SPECS:
            report.add(Finding(
                rule="CB-A210", severity=Severity.ERROR,
                message=(f"primitive {name!r} is registered in "
                         "repro.sync.registry but has no PrimitiveSpec; "
                         "the Table-1 linter never drives it"),
                primitive=name))
    for name in PROTOCOL_REGISTRY:
        tables = tables_for(name)
        if not tables:
            report.add(Finding(
                rule="CB-A211", severity=Severity.ERROR,
                message=(f"protocol {name!r} is registered in "
                         "PROTOCOL_REGISTRY but registered no "
                         "TransitionTable; the model checker cannot "
                         "explore it"),
                primitive=name))
    return report
