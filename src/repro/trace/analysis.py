"""Trace analysis.

The headline analysis is :func:`concurrent_races`: the paper justifies
the tiny callback directory by arguing that "'ongoing' races at any point
in time typically concern very few addresses" (Section 2.2). Given a
trace, we slide a window over the racy operations and count, per window,
how many distinct words were touched racily by more than one core —
exactly the set of words that would want a callback-directory entry.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.trace.recorder import TraceEvent


def op_mix(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """How many operations of each kind the trace contains."""
    return dict(Counter(e.kind for e in events))


def hottest_words(events: Sequence[TraceEvent], top: int = 10,
                  word_bytes: int = 8) -> List[tuple]:
    """The most racily-accessed words, as (word_addr, count) pairs."""
    counts: Counter = Counter()
    for e in events:
        if e.is_racy and e.addr >= 0:
            counts[(e.addr // word_bytes) * word_bytes] += 1
    return counts.most_common(top)


@dataclass
class RaceConcurrency:
    """Result of :func:`concurrent_races`."""

    max_concurrent: int
    mean_concurrent: float
    windows: int


def concurrent_races(events: Sequence[TraceEvent], window: int = 1000,
                     word_bytes: int = 8) -> RaceConcurrency:
    """Distinct multi-core racy words per time window.

    A word counts as "racing" in a window if at least two different
    cores issued racy operations to it within that window. The maximum
    over windows bounds how many callback-directory entries (machine-
    wide) could ever be useful simultaneously.
    """
    racy = [e for e in events if e.is_racy and e.addr >= 0]
    if not racy:
        return RaceConcurrency(0, 0.0, 0)
    horizon = max(e.time for e in racy)
    buckets: Dict[int, Dict[int, set]] = defaultdict(lambda: defaultdict(set))
    for e in racy:
        word = (e.addr // word_bytes) * word_bytes
        buckets[e.time // window][word].add(e.core)
    counts = []
    for index in range(horizon // window + 1):
        words = buckets.get(index, {})
        counts.append(sum(1 for cores in words.values() if len(cores) >= 2))
    return RaceConcurrency(
        max_concurrent=max(counts),
        mean_concurrent=sum(counts) / len(counts),
        windows=len(counts),
    )


def racy_fraction(events: Sequence[TraceEvent]) -> float:
    """Access-weighted share of racy (sync) accesses — small in DRF
    programs, which is why the callback directory can be tiny. Weighted
    so that one DataBurst counts as its many data accesses."""
    total = sum(e.weight for e in events)
    if total == 0:
        return 0.0
    return sum(e.weight for e in events if e.is_racy) / total
