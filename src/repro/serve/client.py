"""Stdlib HTTP client for the service — used by the CLI, the worker
fleet, and tests.

Raises :class:`ServeHTTPError` (carrying the HTTP status and the
server's error document) on any non-2xx response, except that
:meth:`ServeClient.lease` maps "idle" to None and the stale-lease 409
is re-raised as :class:`~repro.serve.model.StaleLeaseError` so workers
can branch on it without parsing messages.

Retry budget
------------

With ``retries > 0`` the client retries, under jittered exponential
backoff:

* ``503``/``429`` responses **that carry a Retry-After header** — the
  server's explicit "safe to retry" signal (read-only recovery,
  backlog drain). A quota 429 has no Retry-After and raises at once:
  retrying a policy refusal is pointless.
* connection errors and truncated/garbled bodies, but **only for
  idempotent requests** (GETs). A dropped connection during a POST may
  have reached the server — blindly resending a submit would duplicate
  it, so non-idempotent errors always surface to the caller, who owns
  the dedup story (submissions dedup by content address; commits are
  generation-fenced).

The backoff RNG is seedable (``retry_seed``) so chaos campaigns replay
deterministically, and the whole HTTP path goes through one pluggable
``transport`` callable so :mod:`repro.chaos.httpshim` can sit between
this client and the wire without monkeypatching.

Circuit breaker
---------------

Pass ``breaker=CircuitBreaker(...)`` (or ``breaker=True`` for
defaults) and every wire call is gated through it: after a streak of
transport failures (OSError or 5xx) the breaker opens and requests
fail *locally* with :class:`~repro.serve.breaker.CircuitOpenError` —
an ``OSError``, so existing backoff arms handle it — until a half-open
probe finds the service answering again. See :mod:`repro.serve.breaker`.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from collections import Counter
from typing import (Any, Callable, Dict, Iterator, List, Optional, Tuple,
                    Union)

from repro.serve.breaker import CircuitBreaker, CircuitOpenError
from repro.serve.model import StaleLeaseError

__all__ = ["ServeClient", "ServeHTTPError", "urllib_transport"]

#: (status, body bytes, response headers). Non-HTTP failures raise
#: OSError (urllib's URLError is one).
TransportResult = Tuple[int, bytes, Dict[str, str]]
Transport = Callable[[str, str, Optional[bytes], float, Dict[str, str]],
                     TransportResult]


class ServeHTTPError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, doc: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {doc.get('error', doc)}")
        self.status = status
        self.doc = doc


def urllib_transport(method: str, url: str, data: Optional[bytes],
                     timeout: float,
                     headers: Dict[str, str]) -> TransportResult:
    """The default wire: one urllib round-trip, HTTP errors returned
    as statuses (not raised) so the retry loop sees every response the
    same way. Connection-level trouble raises OSError."""
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=dict(headers))
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            resp_headers = {k.title(): v for k, v in resp.headers.items()}
            return int(resp.status), resp.read(), resp_headers
    except urllib.error.HTTPError as exc:
        try:
            body = exc.read()
        except OSError:
            body = b""
        resp_headers = {k.title(): v for k, v in exc.headers.items()} \
            if exc.headers else {}
        return int(exc.code), body, resp_headers


class ServeClient:
    """Thin JSON-over-HTTP wrapper around the service endpoints."""

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 0, backoff_s: float = 0.1,
                 backoff_max_s: float = 2.0,
                 retry_seed: Optional[int] = None,
                 transport: Optional[Transport] = None,
                 breaker: Union[CircuitBreaker, bool, None] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._rng = random.Random(retry_seed)
        self.transport: Transport = transport or urllib_transport
        if breaker is True:
            breaker = CircuitBreaker()
        self.breaker: Optional[CircuitBreaker] = breaker or None
        #: Retries actually performed, by reason — feeds worker metrics.
        self.retry_counts: Counter = Counter()

    # ------------------------------------------------------------ plumbing

    def _wire(self, method: str, url: str, data: Optional[bytes],
              timeout: float, headers: Dict[str, str]) -> TransportResult:
        """One gated transport round-trip: refused locally while the
        breaker is open; OSErrors and 5xx statuses count against it,
        any other answer (even a 4xx) closes it."""
        if self.breaker is not None:
            self.breaker.allow()
        try:
            result = self.transport(method, url, data, timeout, headers)
        except OSError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            if result[0] >= 500:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        return result

    def _delay(self, attempt: int, retry_after: Optional[float]) -> float:
        base = min(self.backoff_max_s,
                   self.backoff_s * (2 ** max(0, attempt - 1)))
        jitter = base * self._rng.random()
        if retry_after is not None:
            return max(0.0, retry_after) + jitter
        return base + jitter

    @staticmethod
    def _retry_after_of(headers: Dict[str, str],
                        doc: Dict[str, Any]) -> Optional[float]:
        raw = headers.get("Retry-After")
        if raw is None:
            raw = doc.get("retry_after")
        if raw is None:
            return None
        try:
            return float(raw)
        except (TypeError, ValueError):
            return None

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None,
                idempotent: Optional[bool] = None) -> Any:
        url = f"{self.base_url}{path}"
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        headers = {"Content-Type": "application/json"} if data else {}
        if idempotent is None:
            idempotent = method == "GET"
        attempt = 0
        while True:
            attempt += 1
            budget_left = attempt <= self.retries
            try:
                status, blob, resp_headers = self._wire(
                    method, url, data, timeout or self.timeout, headers)
            except CircuitOpenError:
                raise  # local refusal: retrying without waiting is futile
            except OSError as exc:
                if idempotent and budget_left:
                    self.retry_counts["connection"] += 1
                    time.sleep(self._delay(attempt, None))
                    continue
                raise
            if 200 <= status < 300:
                try:
                    return json.loads(blob.decode("utf-8"))
                except ValueError as exc:
                    # Truncated/garbled body: the request *did* land.
                    if idempotent and budget_left:
                        self.retry_counts["bad_body"] += 1
                        time.sleep(self._delay(attempt, None))
                        continue
                    raise ServeHTTPError(
                        status, {"error": f"unparseable body: {exc}"}) \
                        from None
            try:
                doc = json.loads(blob.decode("utf-8"))
            except ValueError:
                doc = {"error": blob.decode("utf-8", "replace")[:200]}
            if status == 409:
                raise StaleLeaseError(doc.get("error", "stale lease"))
            retry_after = self._retry_after_of(resp_headers, doc)
            if status in (503, 429) and retry_after is not None \
                    and budget_left:
                self.retry_counts[str(status)] += 1
                time.sleep(self._delay(attempt, retry_after))
                continue
            raise ServeHTTPError(status, doc)

    # -------------------------------------------------------------- client

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/health")

    def healthz(self) -> Dict[str, Any]:
        """The /healthz document, *without* retry mapping: a 503 here
        is an answer (state=read_only), not a failure."""
        status, blob, _ = self._wire(
            "GET", f"{self.base_url}/healthz", None, self.timeout, {})
        doc = json.loads(blob.decode("utf-8"))
        doc["http_status"] = status
        return doc

    def status(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/status")

    def submit(self, tenant: str, spec: Dict[str, Any],
               priority: int = 0,
               telemetry: bool = False,
               deadline_s: Optional[float] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {"tenant": tenant, "spec": spec,
                                "priority": priority,
                                "telemetry": telemetry}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self.request("POST", "/v1/jobs", body,
                            idempotent=True)  # dedup by content address

    def submit_many(self, tenant: str, specs: List[Dict[str, Any]],
                    priority: int = 0,
                    telemetry: bool = False,
                    deadline_s: Optional[float] = None
                    ) -> List[Dict[str, Any]]:
        body: Dict[str, Any] = {"tenant": tenant, "specs": specs,
                                "priority": priority,
                                "telemetry": telemetry}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        doc = self.request("POST", "/v1/sweeps", body, idempotent=True)
        return doc["submissions"]

    def submission(self, sub_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/submissions/{sub_id}")

    def result(self, ref: str) -> Dict[str, Any]:
        """Finished record for a submission id or a job key."""
        if "-" in ref:
            return self.request("GET", f"/v1/submissions/{ref}/result")
        return self.request("GET", f"/v1/runs/{ref}/result")

    def run(self, job_key: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/runs/{job_key}")

    def cancel(self, sub_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/v1/submissions/{sub_id}")

    def artifacts(self, job_key: str) -> List[str]:
        doc = self.request("GET", f"/v1/runs/{job_key}/artifacts")
        return doc["artifacts"]

    def artifact(self, job_key: str, name: str) -> bytes:
        url = f"{self.base_url}/v1/runs/{job_key}/artifacts/{name}"
        status, blob, _ = self._wire("GET", url, None, self.timeout, {})
        if status != 200:
            raise ServeHTTPError(status, {"error": f"artifact {name}"})
        return blob

    # ------------------------------------------------------- observability

    def metrics(self) -> str:
        """The raw Prometheus text body of ``GET /metrics``."""
        status, blob, _ = self._wire(
            "GET", f"{self.base_url}/metrics", None, self.timeout, {})
        if status != 200:
            raise ServeHTTPError(status, {"error": "metrics"})
        return blob.decode("utf-8")

    def trace(self, job_key: str) -> Dict[str, Any]:
        """The run's stitched host+cycle Perfetto document."""
        return self.request("GET", f"/v1/runs/{job_key}/trace")

    def flight(self) -> Dict[str, Any]:
        """The service's flight-recorder ring (recent queue events)."""
        return self.request("GET", "/v1/flight")

    # ----------------------------------------------------------- streaming

    def events(self, offset: int = 0, job: Optional[str] = None,
               wait_s: float = 0.0) -> Tuple[List[Dict[str, Any]], int]:
        """One tail step: events after ``offset`` (optionally filtered
        to one job, optionally long-polling) plus the next offset."""
        path = f"/v1/events?offset={offset}"
        if job:
            path += f"&job={job}"
        if wait_s:
            path += f"&wait_s={wait_s}"
        doc = self.request("GET", path,
                           timeout=max(self.timeout, wait_s + 10))
        return doc["events"], doc["offset"]

    def follow(self, job: Optional[str] = None, poll_s: float = 0.5,
               stop_after_s: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Generator over the live event stream (Ctrl-C to stop)."""
        offset = 0
        deadline = (time.monotonic() + stop_after_s
                    if stop_after_s else None)
        while deadline is None or time.monotonic() < deadline:
            events, offset = self.events(offset, job=job, wait_s=poll_s)
            for event in events:
                yield event

    # -------------------------------------------------------------- worker

    def lease(self, worker_id: str) -> Optional[Dict[str, Any]]:
        doc = self.request("POST", "/v1/worker/lease",
                           {"worker": worker_id})
        return None if doc.get("idle") else doc

    def heartbeat(self, job_key: str, token: int,
                  worker_id: str = "") -> float:
        doc = self.request("POST", "/v1/worker/heartbeat",
                           {"job_key": job_key, "token": token,
                            "worker": worker_id})
        return float(doc["expires"])

    def commit(self, job_key: str, token: int,
               record: Dict[str, Any]) -> Dict[str, Any]:
        # Generation fencing makes a duplicated commit safe (the second
        # one gets 409), so the commit POST may ride the retry budget.
        return self.request("POST", "/v1/worker/commit",
                            {"job_key": job_key, "token": token,
                             "record": record}, idempotent=True)

    def fail(self, job_key: str, token: int, kind: str,
             error: str) -> Dict[str, Any]:
        return self.request("POST", "/v1/worker/fail",
                            {"job_key": job_key, "token": token,
                             "kind": kind, "error": error})

    # --------------------------------------------------------------- admin

    def drain(self, on: bool = True) -> Dict[str, Any]:
        return self.request("POST", "/v1/admin/drain", {"on": on})

    def expire(self) -> List[str]:
        return self.request("POST", "/v1/admin/expire", {})["requeued"]

    def wait_idle(self, timeout_s: float = 60.0,
                  poll_s: float = 0.2) -> Dict[str, Any]:
        """Block until no queued/leased work remains.

        Rides the event stream's long-poll between status checks
        instead of sleeping a fixed interval: each queue transition
        (commit, failure, requeue) wakes the wait immediately, so an
        idle queue is detected within one round-trip of becoming idle
        while a busy one costs one parked HTTP request instead of
        ``timeout_s / poll_s`` status polls."""
        deadline = time.monotonic() + timeout_s
        offset = 0
        while True:
            status = self.status()
            runs = status["runs"]
            if not runs.get("queued", 0) and not runs.get("leased", 0):
                return status
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"queue not idle after {timeout_s}s: {runs}")
            try:
                _, offset = self.events(offset=offset,
                                        wait_s=min(remaining, 5.0))
            except (ServeHTTPError, OSError, StaleLeaseError):
                # Event endpoint trouble must not break the wait: fall
                # back to one plain sleep, then re-check status.
                time.sleep(min(poll_s, max(0.0, remaining)))
