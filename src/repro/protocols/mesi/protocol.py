"""The Invalidation baseline: a directory-based MESI protocol.

Timing/semantics summary (each step is a real engine event):

* L1 hit: 1 cycle, value from the line's fill-time snapshot.
* L1 read miss: GetS to the home bank; the directory serializes per-line
  transactions; data comes from the LLC (2-hop) or is forwarded by the
  E/M owner (3-hop, owner also writes back). DRAM charged on LLC cold miss.
* L1 write miss / upgrade: GetX; the directory invalidates every sharer
  (Inv + Ack per sharer — acks are collected by the requester), or
  forwards to the owner; writes commit to the global word store when the
  requester has data + all acks.
* Atomics acquire M state like a store, then read-modify-write locally.
* Spin-waiting (``SpinUntil``) spins on the local L1 copy: the core blocks
  until an invalidation hits the watched line, with L1 accesses and spin
  iterations accounted analytically (elapsed / spin_iteration_cycles), then
  re-fetches and re-checks — the classic invalidate-and-refetch spin.
* Fences are no-ops (the MESI baseline is the paper's unfenced SC code).

Evictions: M lines write back (PutM, data-bearing); E lines notify the
directory with a control message; S lines are evicted silently (the
directory tolerates stale sharers — an Inv to a non-resident line is
acked and otherwise ignored).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.mem.cache import SetAssociativeCache
from repro.noc.messages import MsgKind
from repro.protocols import ops
from repro.protocols.base import CoherenceProtocol
from repro.protocols.mesi.states import DirEntry, L1Line, MESIState
from repro.protocols.mesi.table import MESI_DIR_TABLE, MESI_L1_TABLE
from repro.protocols.table import Event as TableEvent
from repro.sim.future import Future


class _Watch:
    """A thread blocked in SpinUntil, waiting for the L1 copy to die."""

    __slots__ = ("pred", "future", "start", "word_addr", "tid")

    def __init__(self, pred: Callable[[int], bool], future: Future,
                 start: int, word_addr: int) -> None:
        self.pred = pred
        self.future = future
        self.start = start
        self.word_addr = word_addr
        self.tid = -1


class MESIProtocol(CoherenceProtocol):
    """Directory-based MESI over the mesh ("Invalidation" in the paper)."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        cfg = self.config
        self.l1 = [
            SetAssociativeCache(cfg.l1_sets, cfg.l1_ways,
                                policy=cfg.l1_replacement)
            for _ in range(cfg.num_cores)
        ]
        self._dir: Dict[int, DirEntry] = {}
        # core -> line -> [watches] for threads parked in SpinUntil
        # (SMT siblings share an L1, so one line may carry several).
        self._watches: Dict[int, Dict[int, list]] = {}

    # ------------------------------------------------------------ utilities

    def ckpt_state(self) -> Dict[str, object]:
        """Base capture + L1 arrays, directory records, and parked
        SpinUntil watches (checkpoint snapshottability contract)."""
        state = super().ckpt_state()
        state["l1"] = [cache.ckpt_state(lambda line: line.ckpt_state())
                       for cache in self.l1]
        state["dir"] = {line: entry.ckpt_state()
                        for line, entry in sorted(self._dir.items())
                        if entry.owner is not None or entry.sharers
                        or entry.busy or entry.queue}
        state["watches"] = {
            core: {line: [[w.word_addr, w.start, w.tid] for w in watches]
                   for line, watches in sorted(per_core.items()) if watches}
            for core, per_core in sorted(self._watches.items())
            if any(per_core.values())
        }
        return state

    def _entry(self, line: int) -> DirEntry:
        entry = self._dir.get(line)
        if entry is None:
            entry = DirEntry()
            self._dir[line] = entry
        return entry

    def _snapshot_line(self, line: int) -> Dict[int, int]:
        """Word values of a line as the LLC/owner would supply them now."""
        base = line * self.config.line_bytes
        step = self.config.word_bytes
        return {
            base + i * step: self.store.read(base + i * step)
            for i in range(self.config.words_per_line)
        }

    def _l1_lookup(self, tid: int, line: int) -> Optional[L1Line]:
        cached = self.l1[self.l1_of(tid)].lookup(line)
        return cached.payload if cached is not None else None

    def _l1_fill(self, tid: int, line: int, state: MESIState) -> L1Line:
        """Install a line in the requester's L1, handling the victim."""
        core = self.l1_of(tid)
        payload = L1Line(state, self._snapshot_line(line))
        _inserted, victim = self.l1[core].insert(line, payload)
        if victim is not None:
            self._evict(core, victim.line, victim.payload)
        return payload

    def _evict(self, core: int, line: int, payload: L1Line) -> None:
        """Handle an L1 replacement victim: the L1 table names the
        action (data-bearing PutM, control PutE, or silent S drop)."""
        bank = line % self.config.num_banks
        step = MESI_L1_TABLE.step({"mesi": payload.state.value},
                                  TableEvent("evict"))
        actions = {emit.kind for emit in step.emits}
        if "putm" in actions:
            self.stats.writebacks += 1
            self.network.send(
                core, bank, MsgKind.PUTM, lambda: self._dir_put(line, core)
            )
        elif "pute" in actions:
            self.network.send(
                core, bank, MsgKind.ACK, lambda: self._dir_put(line, core)
            )
        # Otherwise: silent S eviction; the directory keeps a stale sharer.

    def _dir_put(self, line: int, core: int) -> None:
        entry = self._entry(line)
        step = MESI_DIR_TABLE.step(entry.view(), TableEvent("put", core=core))
        entry.adopt(step.state)

    def _invalidate_l1(self, core: int, line: int) -> None:
        """An invalidation (or owner-forward) kills the L1 copy and wakes
        every spin-watcher parked on it (``core`` is an L1/core index)."""
        self.l1[core].remove(line)
        watches = self._watches.get(core, {}).pop(line, None)
        if not watches:
            return
        for watch in watches:
            elapsed = max(0, self.engine.now - watch.start)
            iters = max(1, elapsed // self.config.spin_iteration_cycles)
            self.stats.spin_iterations += iters
            self.stats.l1_accesses += iters
            self.stats.l1_hits += iters
            if self.obs is not None:
                self.obs.emit("spin.wake", core=watch.tid,
                              word=watch.word_addr, iters=iters)
            # The spin loop reloads immediately (invalidate-and-refetch).
            self.engine.schedule(
                1, lambda w=watch: self._spin_attempt(w.tid, w.word_addr,
                                                      w.pred, w.future)
            )

    def _check_local_watches(self, core: int, line: int) -> None:
        """A store that commits locally (M/E hit) is visible to SMT
        siblings through the shared L1 without any invalidation: re-check
        their parked spin predicates against the new value."""
        watches = self._watches.get(core, {}).get(line)
        if not watches:
            return
        cached = self.l1[core].lookup(line)
        still_parked = []
        for watch in watches:
            value = cached.payload.read_word(watch.word_addr) if cached else 0
            if watch.pred(value):
                elapsed = max(0, self.engine.now - watch.start)
                iters = max(1, elapsed // self.config.spin_iteration_cycles)
                self.stats.spin_iterations += iters
                self.stats.l1_accesses += iters
                self.stats.l1_hits += iters
                if self.obs is not None:
                    self.obs.emit("spin.wake", core=watch.tid,
                                  word=watch.word_addr, iters=iters)
                self.resolve_later(watch.future, self.config.l1_latency,
                                   value)
            else:
                still_parked.append(watch)
        if still_parked:
            self._watches[core][line] = still_parked
        else:
            del self._watches[core][line]

    # ----------------------------------------------------- directory engine

    def _dir_request(self, line: int, thunk: Callable[[], None]) -> None:
        """Run ``thunk`` when the line is free, serializing transactions."""
        entry = self._entry(line)
        if entry.busy:
            entry.queue.append(thunk)
        else:
            entry.busy = True
            thunk()

    def _dir_release(self, line: int) -> None:
        entry = self._entry(line)
        if not entry.busy:
            raise RuntimeError(f"directory release of idle line {line:#x}")
        if entry.queue:
            thunk = entry.queue.pop(0)
            self.engine.schedule(0, thunk)
        else:
            entry.busy = False

    # A queued thunk runs with busy still held by convention: _dir_release
    # pops the next thunk without clearing busy, so exactly one transaction
    # is in flight per line.

    # ----------------------------------------------------------------- GetS

    def _get_s(self, core: int, line: int, on_fill: Callable[[L1Line], None],
               sync: bool) -> None:
        """Issue a GetS from ``core``; call ``on_fill`` once the line is in
        its L1 (in S or E)."""
        self.stats.l1_misses += 1
        bank = line % self.config.num_banks
        self.network.send(
            self.l1_of(core), bank, MsgKind.GETS,
            lambda: self._dir_request(
                line, lambda: self._dir_gets(core, line, bank, on_fill, sync)
            ),
            sync=sync,
        )

    def _dir_gets(self, tid: int, line: int, bank: int,
                  on_fill: Callable[[L1Line], None], sync: bool) -> None:
        """Directory identities (owner/sharers) are L1/core indices; the
        requesting hardware thread keeps its tid for the fill. The
        decision (forward vs. fill, E vs. S) comes from the declarative
        directory table; this method adds the timing and messaging."""
        node = self.l1_of(tid)
        entry = self._entry(line)
        step = MESI_DIR_TABLE.step(entry.view(), TableEvent("gets", core=node))
        if step.transition.name == "gets_forward":
            owner = next(e.core for e in step.emits if e.kind == "fwd")
            assert owner is not None
            self.stats.forwards += 1
            wait = self.bank_service(bank, data=False, sync=sync)
            # Fwd to owner; owner downgrades to S, sends data to requester
            # and a (data) copy back to the LLC.
            def at_owner() -> None:
                cached = self.l1[owner].lookup(line)
                if cached is not None:
                    cached.payload.transition("fwd_gets")
                self.network.send(owner, bank, MsgKind.DATA, lambda: None)
                self.stats.writebacks += 1
                self.network.send(
                    owner, node, MsgKind.DATA,
                    lambda: self._finish_gets(tid, line, MESIState.SHARED,
                                              on_fill),
                )
            self.engine.schedule(wait,
                                 lambda: self.network.send(bank, owner,
                                                           MsgKind.FWD,
                                                           at_owner))
            entry.adopt(step.state)
        else:
            wait = self.bank_service(bank, data=True, sync=sync)
            wait += self.llc_fill_latency(line)
            grant = next(e.get("grant") for e in step.emits
                         if e.kind == "data")
            state = (MESIState.EXCLUSIVE if grant == "E"
                     else MESIState.SHARED)
            entry.adopt(step.state)
            self.engine.schedule(
                wait,
                lambda: self.network.send(
                    bank, node, MsgKind.DATA,
                    lambda: self._finish_gets(tid, line, state, on_fill),
                ),
            )

    def _finish_gets(self, core: int, line: int, state: MESIState,
                     on_fill: Callable[[L1Line], None]) -> None:
        payload = self._l1_fill(core, line, state)
        # Unblock the directory (free bookkeeping event, modelling the
        # piggybacked Unblock of split-transaction MESI).
        self._dir_release(line)
        on_fill(payload)

    # ----------------------------------------------------------------- GetX

    def _get_x(self, core: int, line: int, on_owned: Callable[[L1Line], None],
               sync: bool) -> None:
        """Obtain M state for ``core``; call ``on_owned`` when writable."""
        cached = self._l1_lookup(core, line)
        if cached is not None and cached.state in (MESIState.MODIFIED,):
            on_owned(cached)
            return
        if cached is not None and cached.state is MESIState.EXCLUSIVE:
            cached.transition("store")
            on_owned(cached)
            return
        self.stats.l1_misses += 1
        bank = line % self.config.num_banks
        self.network.send(
            self.l1_of(core), bank, MsgKind.GETX,
            lambda: self._dir_request(
                line, lambda: self._dir_getx(core, line, bank, on_owned, sync)
            ),
            sync=sync,
        )

    def _dir_getx(self, tid: int, line: int, bank: int,
                  on_owned: Callable[[L1Line], None], sync: bool) -> None:
        node = self.l1_of(tid)
        entry = self._entry(line)
        step = MESI_DIR_TABLE.step(entry.view(), TableEvent("getx", core=node))
        if step.transition.name == "getx_forward":
            owner = next(e.core for e in step.emits if e.kind == "fwd")
            assert owner is not None
            self.stats.forwards += 1
            wait = self.bank_service(bank, data=False, sync=sync)

            def at_owner() -> None:
                self._invalidate_l1(owner, line)
                self.network.send(
                    owner, node, MsgKind.DATA,
                    lambda: self._finish_getx(tid, line, on_owned),
                )

            self.engine.schedule(
                wait, lambda: self.network.send(bank, owner, MsgKind.FWD,
                                                at_owner))
            entry.adopt(step.state)
            return

        # The table plans the invalidation fan-out (ascending sharer
        # order) and whether the requester needs data or just an ack.
        sharers = [e.core for e in step.emits if e.kind == "inv"]
        was_sharer = any(e.kind == "grant" for e in step.emits)
        entry.adopt(step.state)

        # Completion requires the grant/data plus one ack per invalidated
        # sharer, all collected at the requester.
        pending = {"count": 1 + len(sharers)}

        def arrived() -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                self._finish_getx(tid, line, on_owned)

        wait = self.bank_service(bank, data=not was_sharer, sync=sync)
        if not was_sharer:
            wait += self.llc_fill_latency(line)

        for sharer in sharers:
            assert sharer is not None
            self.stats.invalidations_sent += 1
            if self.obs is not None:
                self.obs.emit("mesi.inv", line=line, sharer=sharer,
                              requester=node)

            def make_inv(s: int) -> Callable[[], None]:
                def at_sharer() -> None:
                    self._invalidate_l1(s, line)
                    self.stats.invalidation_acks += 1
                    self.network.send(s, node, MsgKind.ACK, arrived)
                return at_sharer

            self.engine.schedule(
                wait, lambda s=sharer: self.network.send(bank, s, MsgKind.INV,
                                                         make_inv(s)))

        grant_kind = MsgKind.ACK if was_sharer else MsgKind.DATA
        self.engine.schedule(
            wait, lambda: self.network.send(bank, node, grant_kind, arrived))

    def _finish_getx(self, core: int, line: int,
                     on_owned: Callable[[L1Line], None]) -> None:
        payload = self._l1_fill(core, line, MESIState.MODIFIED)
        self._dir_release(line)
        on_owned(payload)

    # ------------------------------------------------------------------ ops

    def _op_load(self, core: int, op: ops.Load) -> Future:
        future = Future()
        self.stats.l1_accesses += 1
        line = self.addr_map.line_of(op.addr)
        word = self.addr_map.word_base(op.addr)
        cached = self._l1_lookup(core, line)
        if cached is not None:
            self.stats.l1_hits += 1
            self.resolve_later(future, self.config.l1_latency,
                               cached.read_word(word))
        else:
            self._get_s(core, line,
                        lambda payload: future.resolve(payload.read_word(word)),
                        sync=False)
        return future

    def _op_store(self, core: int, op: ops.Store) -> Future:
        future = Future()
        self.stats.l1_accesses += 1
        line = self.addr_map.line_of(op.addr)
        word = self.addr_map.word_base(op.addr)

        def commit(payload: L1Line) -> None:
            if op.value is not None:
                self.store.write(word, op.value)
                payload.write_word(word, op.value)
                self._check_local_watches(self.l1_of(core), line)
            self.resolve_later(future, self.config.l1_latency)

        cached = self._l1_lookup(core, line)
        if cached is not None and cached.state in (MESIState.MODIFIED,
                                                   MESIState.EXCLUSIVE):
            self.stats.l1_hits += 1
            cached.transition("store")
            commit(cached)
        else:
            self._get_x(core, line, commit, sync=op.value is not None)
        return future

    def _op_atomic(self, core: int, op: ops.Atomic) -> Future:
        """RMWs acquire M state and execute locally (ll/sc-free model)."""
        future = Future()
        self.stats.l1_accesses += 1
        line = self.addr_map.line_of(op.addr)
        word = self.addr_map.word_base(op.addr)

        def owned(payload: L1Line) -> None:
            result = self.apply_rmw(op)
            payload.write_word(word, self.store.read(word))
            self._check_local_watches(self.l1_of(core), line)
            self.resolve_later(future,
                               self.config.l1_latency +
                               self.config.rmw_compute_cycles,
                               result)

        cached = self._l1_lookup(core, line)
        if cached is not None and cached.state is MESIState.MODIFIED:
            self.stats.l1_hits += 1
            owned(cached)
        elif cached is not None and cached.state is MESIState.EXCLUSIVE:
            self.stats.l1_hits += 1
            cached.transition("store")
            owned(cached)
        else:
            self._get_x(core, line, owned, sync=True)
        return future

    # MESI racy ops fall back to their plain equivalents: the baseline has
    # no notion of through/callback accesses (synchronization code for MESI
    # uses plain loads/stores/atomics, Figures 8-18 left-hand sides).
    def _op_load_through(self, core: int, op: ops.LoadThrough) -> Future:
        return self._op_load(core, ops.Load(op.addr))

    def _op_store_through(self, core: int, op: ops.StoreThrough) -> Future:
        return self._op_store(core, ops.Store(op.addr, op.value))

    def _op_store_cb1(self, core: int, op: ops.StoreCB1) -> Future:
        return self._op_store(core, ops.Store(op.addr, op.value))

    def _op_store_cb0(self, core: int, op: ops.StoreCB0) -> Future:
        return self._op_store(core, ops.Store(op.addr, op.value))

    def _op_load_cb(self, core: int, op: ops.LoadCB) -> Future:
        raise TypeError("ld_cb is not available under the MESI baseline; "
                        "MESI spin-waiting uses SpinUntil (local spinning)")

    def _op_fence(self, core: int, op: ops.Fence) -> Future:
        future = Future()
        self.resolve_later(future, 1)
        return future

    # ------------------------------------------------------------- spinning

    def _op_spin_until(self, core: int, op: ops.SpinUntil) -> Future:
        future = Future()
        self._spin_attempt(core, self.addr_map.word_base(op.addr), op.pred,
                           future)
        return future

    def _spin_attempt(self, core: int, word_addr: int,
                      pred: Callable[[int], bool], future: Future) -> None:
        line = self.addr_map.line_of(word_addr)
        self.stats.l1_accesses += 1
        cached = self._l1_lookup(core, line)
        if cached is not None:
            self.stats.l1_hits += 1
            value = cached.read_word(word_addr)
            if pred(value):
                self.resolve_later(future, self.config.l1_latency, value)
            else:
                self._park_watch(core, line, word_addr, pred, future)
            return

        def filled(payload: L1Line) -> None:
            value = payload.read_word(word_addr)
            if pred(value):
                future.resolve(value)
            else:
                self._park_watch(core, line, word_addr, pred, future)

        self._get_s(core, line, filled, sync=True)

    def _park_watch(self, tid: int, line: int, word_addr: int,
                    pred: Callable[[int], bool], future: Future) -> None:
        watch = _Watch(pred, future, self.engine.now, word_addr)
        watch.tid = tid
        bucket = self._watches.setdefault(self.l1_of(tid), {})
        bucket.setdefault(line, []).append(watch)
        if self.obs is not None:
            self.obs.emit("spin.park", core=tid, word=word_addr)

    def parked_cores(self) -> int:
        """Threads blocked in a SpinUntil watch right now."""
        return sum(len(watches) for per_line in self._watches.values()
                   for watches in per_line.values())

    # ------------------------------------------------------------ data side

    def _op_data_burst(self, core: int, op: ops.DataBurst) -> Future:
        future = Future()
        accesses = list(op.accesses)

        def step() -> None:
            if not accesses:
                if op.extra_hits:
                    self.stats.l1_accesses += op.extra_hits
                    self.stats.l1_hits += op.extra_hits
                self.resolve_later(future, max(1, op.extra_hits))
                return
            access = accesses.pop(0)
            inner = (self._op_store(core, ops.Store(access.addr))
                     if access.write else self._op_load(core,
                                                        ops.Load(access.addr)))
            inner.add_callback(lambda _v: step())

        step()
        return future
