"""``repro-ckpt``: save, verify, restore, replay, and GC checkpoints.

Usage::

    # Run a job with checkpoints every 2000 cycles (resumes from the
    # newest valid checkpoint if the store already has one).
    repro-ckpt save --dir ckpts --workload lock:ttas --config CB-One \\
        --cores 8 --every 2000

    # Audit blob checksums; quarantine nothing, just report.
    repro-ckpt verify --dir ckpts

    # Rebuild + fast-forward a checkpoint in a fresh process and prove
    # bit-parity; --finish then runs it to completion.
    repro-ckpt restore --dir ckpts 3f2a --at 4000 --finish

    # A run died of a deadlock/livelock/timeout: re-execute the
    # approach to the hang with telemetry + the race monitor attached.
    repro-ckpt replay --dir ckpts 3f2a

    # Keep only each job's two newest checkpoints.
    repro-ckpt gc --dir ckpts --keep 2

Job flags mirror ``repro-orchestrate run`` (``--workload name[:detail]``,
``--param``, ``--override``) so a checkpointed job and an orchestrated
job with the same flags share a content address — and therefore a
checkpoint store.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Any, Dict, List, Optional

from repro.ckpt.checkpoint import (Checkpoint, CheckpointMismatchError,
                                   Checkpointer, restore_checkpoint)
from repro.ckpt.state import capture_state, state_fingerprint
from repro.ckpt.store import CheckpointStore
from repro.orchestrate.cli import _DETAIL_PARAM, _parse_kv
from repro.orchestrate.jobspec import JobSpec
from repro.sim.engine import (DeadlockError, LivenessError, SimulationError,
                              SimulationTimeout)


def _spec_of(args: argparse.Namespace) -> JobSpec:
    name, _, detail = args.workload.partition(":")
    name = name.replace("-", "_")
    params = _parse_kv(args.param, "--param", sweep=False)
    if detail:
        params.setdefault(_DETAIL_PARAM.get(name, "name"), detail)
    overrides = _parse_kv(args.override, "--override", sweep=False)
    if args.cores:
        overrides.setdefault("num_cores", args.cores)
    return JobSpec(config_label=args.config, workload=name,
                   workload_params=params, config_overrides=overrides,
                   seed=args.seed)


def cmd_save(args: argparse.Namespace) -> int:
    spec = _spec_of(args)
    store = CheckpointStore(args.dir)

    hook = None
    if args.sigkill_at is not None:
        def hook(boundary: int) -> None:
            # Crash-test instrumentation: die unclean at the first
            # boundary past the threshold, strictly *between* durable
            # checkpoints (this boundary's blob is never written).
            if boundary >= args.sigkill_at:
                os.kill(os.getpid(), signal.SIGKILL)

    checkpointer = Checkpointer(spec, store, every=args.every,
                                boundary_hook=hook)
    try:
        stats = checkpointer.run(resume=not args.no_resume)
    except (DeadlockError, LivenessError, SimulationTimeout) as exc:
        print(f"run failed ({type(exc).__name__}): {exc}", file=sys.stderr)
        print(f"black box persisted for job {checkpointer.job_key[:12]}; "
              f"replay with: repro-ckpt replay --dir {args.dir} "
              f"{checkpointer.job_key[:12]}", file=sys.stderr)
        return 1
    resumed = (f"resumed from cycle {checkpointer.resumed_from}"
               if checkpointer.resumed_from is not None else "fresh run")
    print(f"job {checkpointer.job_key[:12]} ({spec.describe()})")
    print(f"{resumed}; saved {len(checkpointer.saved)} checkpoint(s) "
          f"at {checkpointer.saved}")
    final = store.latest(checkpointer.job_key)
    print(f"final: cycles={stats.cycles} "
          f"fingerprint={final.fingerprint[:16]} "
          f"functional={final.functional[:16]}")
    return 0


def _load_at(store: CheckpointStore, key: str,
             at: Optional[int]) -> Checkpoint:
    if at is not None:
        return store.load(key, at)
    ckpt = store.latest(key)
    if ckpt is None:
        raise SystemExit(f"no valid checkpoints for job {key[:12]}")
    return ckpt


def cmd_restore(args: argparse.Namespace) -> int:
    store = CheckpointStore(args.dir)
    key = store.resolve(args.key)
    ckpt = _load_at(store, key, args.at)
    print(f"restoring {ckpt.describe()}")
    try:
        machine = restore_checkpoint(ckpt, verify=args.verify)
    except CheckpointMismatchError as exc:
        print(f"MISMATCH: {exc}", file=sys.stderr)
        return 3
    print(f"verified ({args.verify}) at boundary {ckpt.boundary}; "
          f"clock={machine.engine.now} "
          f"events={machine.events_executed}")
    if args.finish:
        stats = machine.run()
        final = capture_state(machine)
        print(f"finished: cycles={stats.cycles} "
              f"fingerprint={state_fingerprint(final)[:16]}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    store = CheckpointStore(args.dir)
    key = store.resolve(args.key) if args.key else None
    report = store.verify(key)
    for job_key, entry in sorted(report["jobs"].items()):
        line = (f"  {job_key[:12]} ok={entry['ok']}")
        if entry["corrupt"]:
            line += f" CORRUPT={entry['corrupt']}"
        if entry["blackbox"]:
            line += " [blackbox]"
        print(line)
    print(f"{report['checked']} blob(s) checked, "
          f"{report['corrupt']} corrupt")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    return 2 if report["corrupt"] else 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import Telemetry, TelemetryConfig
    store = CheckpointStore(args.dir)
    key = store.resolve(args.key)
    blackbox = store.load_blackbox(key)
    if blackbox is None:
        raise SystemExit(f"job {key[:12]} has no black-box payload "
                         f"(the run did not fail, or it was quarantined)")
    error = blackbox.get("error", {})
    ring = blackbox.get("ring", [])
    print(f"job {key[:12]} failed: [{error.get('kind')}] "
          f"{error.get('type')}: {error.get('message')}")
    boundaries = [entry["boundary"] for entry in ring]
    start = args.start if args.start is not None else (
        boundaries[0] if boundaries else None)
    snapshot = Checkpoint.from_dict(blackbox["checkpoint"])
    if start is not None and start < snapshot.boundary:
        base = dict(blackbox["checkpoint"])
        ours = next((e for e in ring if e["boundary"] == start), None)
        if ours is None:
            raise SystemExit(f"cycle {start} is not a recorded boundary; "
                             f"ring has {boundaries}")
        # Ring entries are light (digests only): re-point the terminal
        # snapshot's recipe at the chosen boundary and let re-execution
        # verify against the ring's functional digest.
        base.update(boundary=ours["boundary"], clock=ours["clock"],
                    events_executed=ours["events_executed"],
                    fingerprint=ours["fingerprint"],
                    functional=ours["functional"], state={}, final=False)
        snapshot = Checkpoint.from_dict(base)
    print(f"re-executing from boundary {snapshot.boundary} with "
          f"telemetry + race monitor attached")

    monitors: List[Any] = []
    telemetry = Telemetry(TelemetryConfig(sample_every=args.sample_every,
                                          spans=True))

    def attach_monitor(machine: Any) -> None:
        from repro.analyze.hb import RaceMonitor
        monitors.append(RaceMonitor(machine))

    machine = restore_checkpoint(snapshot, telemetry=telemetry,
                                 prepare=attach_monitor,
                                 verify="functional")
    try:
        machine.run()
        print("replay completed without failing — the failure depended "
              "on an attachment or budget not present here")
    except SimulationError as exc:
        print(f"reproduced: {type(exc).__name__}: {exc}")
        diagnosis = getattr(exc, "diagnosis", None)
        if diagnosis is not None and args.trace_out:
            diagnosis.write_trace(args.trace_out)
            print(f"diagnosis trace written to {args.trace_out}")
    for monitor in monitors:
        report = monitor.finish()
        print(report.summary())
    recorded = blackbox.get("diagnosis")
    if recorded and not args.quiet:
        print("recorded diagnosis:")
        print(json.dumps(recorded, indent=2, sort_keys=True)[:2000])
    return 0


def cmd_gc(args: argparse.Namespace) -> int:
    store = CheckpointStore(args.dir)
    removed = store.gc(keep_last=args.keep)
    print(f"removed {removed} checkpoint blob(s); "
          f"kept <= {args.keep} per job")
    return 0


def _add_spec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", required=True,
                        help="registry spec, e.g. lock:ttas or app:barnes")
    parser.add_argument("--config", default="CB-One",
                        help="paper configuration label")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cores", type=int, default=0,
                        help="num_cores override (0 = config default)")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE", help="workload param")
    parser.add_argument("--override", action="append", default=[],
                        metavar="KEY=VALUE", help="config override")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-ckpt",
        description="Deterministic checkpoint/restore with crash-safe "
                    "storage.")
    sub = parser.add_subparsers(dest="command", required=True)

    save = sub.add_parser("save", help="run a job with checkpoints")
    save.add_argument("--dir", required=True, help="checkpoint store root")
    save.add_argument("--every", type=int, default=2000,
                      help="checkpoint period in cycles")
    save.add_argument("--no-resume", action="store_true",
                      help="ignore existing checkpoints; start fresh")
    save.add_argument("--sigkill-at", type=int, default=None,
                      help=argparse.SUPPRESS)  # crash-test instrumentation
    _add_spec_flags(save)
    save.set_defaults(fn=cmd_save)

    restore = sub.add_parser(
        "restore", help="rebuild + fast-forward a checkpoint, verified")
    restore.add_argument("key", help="job key (unique prefix ok)")
    restore.add_argument("--dir", required=True)
    restore.add_argument("--at", type=int, default=None,
                         help="boundary cycle (default: newest valid)")
    restore.add_argument("--verify", default="full",
                         choices=["auto", "full", "functional", "none"])
    restore.add_argument("--finish", action="store_true",
                         help="after verifying, run to completion")
    restore.set_defaults(fn=cmd_restore)

    verify = sub.add_parser("verify", help="checksum-audit the store")
    verify.add_argument("key", nargs="?", default=None)
    verify.add_argument("--dir", required=True)
    verify.add_argument("--json", default=None,
                        help="write the audit report to this file")
    verify.set_defaults(fn=cmd_verify)

    replay = sub.add_parser(
        "replay", help="re-execute a failed run's approach to the hang")
    replay.add_argument("key", help="job key (unique prefix ok)")
    replay.add_argument("--dir", required=True)
    replay.add_argument("--start", type=int, default=None,
                        help="ring boundary to replay from "
                             "(default: earliest recorded)")
    replay.add_argument("--sample-every", type=int, default=200,
                        help="telemetry sampling cadence during replay")
    replay.add_argument("--trace-out", default=None,
                        help="write the reproduced diagnosis trace here")
    replay.add_argument("--quiet", action="store_true",
                        help="skip dumping the recorded diagnosis")
    replay.set_defaults(fn=cmd_replay)

    gc = sub.add_parser("gc", help="drop all but the newest checkpoints")
    gc.add_argument("--dir", required=True)
    gc.add_argument("--keep", type=int, default=2,
                    help="checkpoints to keep per job")
    gc.set_defaults(fn=cmd_gc)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
