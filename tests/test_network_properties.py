"""Property-based NoC checks: latency structure and traffic conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.noc.messages import MsgKind
from repro.noc.network import Network
from repro.sim.engine import Engine
from repro.sim.stats import Stats


def make_network(contention=False, topology="mesh"):
    cfg = SystemConfig(num_cores=16, model_link_contention=contention,
                       topology=topology)
    engine = Engine()
    stats = Stats()
    return cfg, engine, stats, Network(cfg, engine, stats)


@settings(max_examples=60, deadline=None)
@given(src=st.integers(0, 15), dst=st.integers(0, 15),
       kind=st.sampled_from(list(MsgKind)))
def test_latency_is_affine_in_hops(src, dst, kind):
    cfg, _e, _s, net = make_network()
    latency = net.message_latency(src, dst, kind)
    hops = net.mesh.hops(src, dst)
    if hops == 0:
        assert latency == 1
    else:
        flits = cfg.flits_for(
            net._size(kind))
        assert latency == hops * cfg.switch_latency + flits - 1


@settings(max_examples=40, deadline=None)
@given(src=st.integers(0, 15), dst=st.integers(0, 15),
       kind=st.sampled_from(list(MsgKind)))
def test_contended_never_faster_than_uncontended(src, dst, kind):
    _c, _e, _s, net = make_network(contention=True)
    base = net.message_latency(src, dst, kind)
    contended = net._contended_latency(src, dst, kind)
    assert contended >= base


@settings(max_examples=30, deadline=None)
@given(messages=st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15),
              st.sampled_from([MsgKind.GETS, MsgKind.DATA,
                               MsgKind.WAKEUP])),
    min_size=1, max_size=30))
def test_traffic_accounting_conserved(messages):
    """flit_hops == sum over messages of flits(kind) * hops(src, dst)."""
    cfg, engine, stats, net = make_network()
    expected = 0
    for src, dst, kind in messages:
        net.send(src, dst, kind, lambda: None)
        expected += cfg.flits_for(net._size(kind)) * net.mesh.hops(src, dst)
    assert stats.flit_hops == expected
    assert stats.messages == len(messages)


@settings(max_examples=40, deadline=None)
@given(src=st.integers(0, 15), dst=st.integers(0, 15))
def test_torus_latency_never_exceeds_mesh(src, dst):
    mesh_net = make_network(topology="mesh")[3]
    torus_net = make_network(topology="torus")[3]
    assert (torus_net.message_latency(src, dst, MsgKind.DATA)
            <= mesh_net.message_latency(src, dst, MsgKind.DATA))
