"""The on-disk fleet registry: ``<root>/fleet/``.

Everything the supervisor must rediscover after its own SIGKILL lives
here as small JSON files, written atomically through
:mod:`repro.ioutil` (and therefore through the :mod:`repro.iohooks`
fault sites, so chaos campaigns can tear them):

* ``fleet/workers/<worker_id>.json`` — one pidfile + start metadata per
  worker. :func:`repro.serve.worker.spawn_worker` writes it the moment
  the child exists (pid, argv, slot); the worker process overwrites it
  on startup with its richer self-description and removes it on a clean
  exit. A file whose pid fails the liveness check is a corpse: readers
  skip it and the supervisor reaps it.
* ``fleet/supervisor.json`` — the supervisor's per-tick state snapshot
  (desired size, per-slot states, restart/quarantine counters, breaker
  state). The queue's ``/metrics`` endpoint renders it as
  ``repro_fleet_*`` gauges; ``repro-fleet status`` pretty-prints it.
* ``fleet/control.json`` — the CLI→supervisor mailbox (scale/drain
  commands), applied and cleared at the next tick.
* ``fleet/fleet.jsonl`` — the supervisor's append-only journal (see
  :mod:`repro.fleet.supervisor`).

This module is deliberately a leaf — stdlib + :mod:`repro.ioutil` only
— so both :mod:`repro.serve.worker` and the supervisor can use it
without an import cycle.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from repro.ioutil import atomic_write_json, read_checked_json

__all__ = ["fleet_dir", "workers_dir", "worker_meta_path",
           "write_worker_meta", "read_worker_meta", "read_worker_metas",
           "remove_worker_meta", "pid_alive", "supervisor_state_path",
           "control_path", "fleet_journal_path"]


def fleet_dir(root: str) -> str:
    """The fleet registry directory under a service root."""
    return os.path.join(str(root), "fleet")


def workers_dir(fleet_root: str) -> str:
    return os.path.join(fleet_root, "workers")


def supervisor_state_path(fleet_root: str) -> str:
    return os.path.join(fleet_root, "supervisor.json")


def control_path(fleet_root: str) -> str:
    return os.path.join(fleet_root, "control.json")


def fleet_journal_path(fleet_root: str) -> str:
    return os.path.join(fleet_root, "fleet.jsonl")


def worker_meta_path(fleet_root: str, worker_id: str) -> str:
    safe = worker_id.replace(os.sep, "_")
    return os.path.join(workers_dir(fleet_root), f"{safe}.json")


def pid_alive(pid: int) -> bool:
    """Liveness check by null signal. PermissionError means the pid
    exists but belongs to someone else — for adoption purposes that is
    *not* our worker, so it counts as dead."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:
        return False


def write_worker_meta(fleet_root: str, worker_id: str, pid: int,
                      server_url: str, **extra: Any) -> str:
    """Write (or refresh) one worker's pidfile + start metadata.
    Atomic but not fsynced: a lost pidfile after a host crash costs an
    orphan check, not correctness — liveness is always re-verified
    against the pid anyway."""
    path = worker_meta_path(fleet_root, worker_id)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    doc = {"worker_id": worker_id, "pid": int(pid),
           "server": server_url, "t_written": time.time(), **extra}
    atomic_write_json(path, doc, durable=False)
    return path


def read_worker_meta(fleet_root: str,
                     worker_id: str) -> Optional[Dict[str, Any]]:
    return _load(worker_meta_path(fleet_root, worker_id))


def _load(path: str) -> Optional[Dict[str, Any]]:
    try:
        doc = read_checked_json(path)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def read_worker_metas(fleet_root: str,
                      live_only: bool = False) -> List[Dict[str, Any]]:
    """Every registered worker's metadata, oldest first. With
    ``live_only`` each entry's pid is liveness-checked and corpses are
    skipped (their files are left for the supervisor to reap)."""
    directory = workers_dir(fleet_root)
    if not os.path.isdir(directory):
        return []
    metas: List[Dict[str, Any]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        doc = _load(os.path.join(directory, name))
        if doc is None:
            continue
        doc["alive"] = pid_alive(int(doc.get("pid", 0)))
        if live_only and not doc["alive"]:
            continue
        metas.append(doc)
    metas.sort(key=lambda d: (d.get("t_started") or d.get("t_written")
                              or 0.0, d.get("worker_id", "")))
    return metas


def remove_worker_meta(fleet_root: str, worker_id: str) -> None:
    try:
        os.unlink(worker_meta_path(fleet_root, worker_id))
    except OSError:
        pass
