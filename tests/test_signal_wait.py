"""Signal/wait pairing under every protocol."""

import pytest

from repro.config import config_for
from repro.core.machine import Machine
from repro.protocols.ops import Compute
from repro.sync import make_signal_wait, style_for

LABELS = ("Invalidation", "BackOff-0", "BackOff-10", "CB-All", "CB-One")


def run_signal_wait(label, producers=2, consumers=2, rounds=4):
    cfg = config_for(label, num_cores=4)
    machine = Machine(cfg)
    sw = make_signal_wait(style_for(cfg))
    sw.setup(machine.layout, 4)
    for addr, value in sw.initial_values().items():
        machine.store.write(addr, value)

    total_signals = consumers * rounds
    per_producer = total_signals // producers
    consumed = {"count": 0}

    def producer(ctx):
        yield Compute(100 + ctx.rng.randrange(100))
        for _ in range(per_producer):
            yield Compute(1 + ctx.rng.randrange(50))
            yield from sw.signal(ctx)

    def consumer(ctx):
        for _ in range(rounds):
            yield from sw.wait(ctx)
            consumed["count"] += 1
            yield Compute(1 + ctx.rng.randrange(30))

    bodies = [producer] * producers + [consumer] * consumers
    machine.spawn(bodies)
    stats = machine.run()
    return machine, stats, sw, consumed, total_signals


@pytest.mark.parametrize("label", LABELS)
class TestPairing:
    def test_every_wait_is_matched(self, label):
        machine, _stats, sw, consumed, total = run_signal_wait(label)
        assert consumed["count"] == total
        # All signals consumed: the counter ends at zero.
        assert machine.store.read(sw.counter_addr) == 0

    def test_wait_episodes_recorded(self, label):
        _m, stats, _sw, _c, total = run_signal_wait(label)
        assert len(stats.episode_latencies["wait"]) == total


@pytest.mark.parametrize("label", LABELS)
def test_leftover_signals_remain(label):
    """More signals than waits leaves the surplus in the counter."""
    cfg = config_for(label, num_cores=4)
    machine = Machine(cfg)
    sw = make_signal_wait(style_for(cfg))
    sw.setup(machine.layout, 4)

    def producer(ctx):
        for _ in range(5):
            yield from sw.signal(ctx)

    def consumer(ctx):
        for _ in range(2):
            yield from sw.wait(ctx)

    machine.spawn([producer, consumer])
    machine.run()
    assert machine.store.read(sw.counter_addr) == 3


def test_waiters_block_until_signal_under_callbacks():
    """The spin side parks in the callback directory, not at the LLC."""
    cfg = config_for("CB-One", num_cores=4)
    machine = Machine(cfg)
    sw = make_signal_wait(style_for(cfg))
    sw.setup(machine.layout, 4)
    order = []

    def late_producer(ctx):
        yield Compute(500)
        order.append("signal")
        yield from sw.signal(ctx)

    def consumer(ctx):
        yield from sw.wait(ctx)
        order.append("woke")

    machine.spawn([late_producer, consumer])
    stats = machine.run()
    assert order == ["signal", "woke"]
    assert stats.cb_blocked_reads >= 1
