"""JSON results persistence."""

import json

import pytest

from repro.harness.figures import main as figures_main
from repro.harness.results_io import (load_result, save_result, stats_dict,
                                      _jsonable)
from repro.harness.runner import run_config
from repro.sim.stats import Stats
from repro.workloads.microbench import LockMicrobench


class TestJsonable:
    def test_run_result_serializes(self):
        result = run_config("CB-One", LockMicrobench("ttas", iterations=2),
                            num_cores=4)
        data = _jsonable(result)
        assert data["config"] == "CB-One"
        assert data["cycles"] == result.cycles
        assert "lock_acquire" in data["stats"]["episodes"]
        json.dumps(data)  # round-trippable

    def test_nested_structures(self):
        data = _jsonable({"a": [1, 2.5, "x", None], "b": {"c": True}})
        assert data == {"a": [1, 2.5, "x", None], "b": {"c": True}}

    def test_stats_dict_includes_episode_summaries(self):
        stats = Stats()
        stats.record_episode("wait", 10)
        out = stats_dict(stats)
        assert out["episodes"]["wait"]["n"] == 1

    def test_enum_like_objects_stringified(self):
        from repro.config import WakePolicy
        assert isinstance(_jsonable(WakePolicy.FIFO), str)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        data = {"rows": {"CB-One": 0.78, "Invalidation": 1.0}}
        path = save_result(data, str(tmp_path), "fig21")
        assert path.endswith("fig21.json")
        loaded = load_result(str(tmp_path), "fig21")
        assert loaded == data

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_result({"x": 1}, str(target), "out")
        assert (target / "out.json").exists()


class TestCLIIntegration:
    def test_save_json_flag(self, tmp_path, capsys):
        rc = figures_main(["ablation-policy", "--cores", "4",
                           "--iterations", "1", "--save-json",
                           str(tmp_path)])
        assert rc == 0
        loaded = load_result(str(tmp_path), "ablation_policy")
        assert "round_robin" in loaded
