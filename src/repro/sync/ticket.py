"""Ticket lock — a library extension with an instructive callback story.

A ticket lock is FIFO-fair: acquire takes a ticket with fetch&increment
and spins until ``now_serving`` reaches it; release increments
``now_serving``.

Under callbacks the release **must** be a st_through/st_cbA (wake all):
many spinners wait on the *same* word for *different* values, so waking
one arbitrary waiter (st_cb1) may wake a core whose ticket is not up —
it re-parks, nobody else is woken, and the system deadlocks. This is the
mirror image of the paper's Section 2.4 observation: write_CB1 fits
locks where any one waiter may proceed (T&S/T&T&S); value-matched spins
need the broadcast write. The ``release_kind`` knob exists so the test
suite can demonstrate the deadlock.
"""

from __future__ import annotations

from typing import Dict

from repro.protocols.ops import (Atomic, AtomicKind, BackoffWait, Fence,
                                 FenceKind, Load, LoadCB, LoadThrough,
                                 SpinUntil, StKind, Store, StoreCB1,
                                 StoreThrough)
from repro.sync.base import SyncPrimitive, SyncStyle


class TicketLock(SyncPrimitive):
    """FIFO ticket lock in all four encodings."""

    def __init__(self, style: SyncStyle,
                 release_kind: StKind = StKind.CBA) -> None:
        super().__init__(style)
        self.release_kind = release_kind
        self.next_ticket_addr = -1
        self.now_serving_addr = -1

    def setup(self, layout, num_threads: int) -> None:
        self.next_ticket_addr = layout.alloc_sync_word()
        self.now_serving_addr = layout.alloc_sync_word()
        self._ready = True

    def initial_values(self) -> Dict[int, int]:
        return {self.next_ticket_addr: 0, self.now_serving_addr: 0}

    def acquire(self, ctx):
        self._require_ready()
        start = ctx.now
        result = yield Atomic(self.next_ticket_addr, AtomicKind.FETCH_ADD,
                              (1,))
        ticket = result.old
        if self.style is SyncStyle.MESI:
            yield SpinUntil(self.now_serving_addr,
                            lambda v, t=ticket: v == t)
        elif self.style is SyncStyle.VIPS:
            attempt = 0
            while True:
                value = yield LoadThrough(self.now_serving_addr)
                if value == ticket:
                    break
                yield BackoffWait(attempt)
                attempt += 1
            yield Fence(FenceKind.SELF_INVL)
        else:
            value = yield LoadThrough(self.now_serving_addr)
            while value != ticket:
                value = yield LoadCB(self.now_serving_addr)
            yield Fence(FenceKind.SELF_INVL)
        ctx.record_episode("lock_acquire", start)
        ctx.span_begin("lock_hold", lock=type(self).__name__)
        return ticket

    def release(self, ctx):
        self._require_ready()
        try:
            if self.style is SyncStyle.MESI:
                value = yield Load(self.now_serving_addr)
                yield Store(self.now_serving_addr, value + 1)
                return
            yield Fence(FenceKind.SELF_DOWN)
            value = yield LoadThrough(self.now_serving_addr)
            if self.release_kind is StKind.CB1:
                yield StoreCB1(self.now_serving_addr, value + 1)
            else:
                yield StoreThrough(self.now_serving_addr, value + 1)
        finally:
            ctx.span_end("lock_hold")
