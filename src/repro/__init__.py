"""Reproduction of "Callback: Efficient Synchronization without
Invalidation with a Directory Just for Spin-Waiting" (Ros & Kaxiras,
ISCA 2015).

Public API highlights::

    from repro import SystemConfig, Machine, config_for, PAPER_CONFIGS
    from repro.sync import sync_kit
    from repro.workloads import get_workload, WORKLOADS
    from repro.harness import run_workload

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.config import (PAPER_CONFIGS, CallbackMode, Protocol, SystemConfig,
                          WakePolicy, config_for)
from repro.core.machine import Machine, run_threads
from repro.sim.engine import (DeadlockError, LivenessError,
                              SimulationError, SimulationTimeout)
from repro.sim.stats import Stats

__version__ = "1.0.0"

__all__ = [
    "CallbackMode",
    "DeadlockError",
    "LivenessError",
    "Machine",
    "PAPER_CONFIGS",
    "Protocol",
    "SimulationError",
    "SimulationTimeout",
    "Stats",
    "SystemConfig",
    "WakePolicy",
    "config_for",
    "run_threads",
    "__version__",
]
