"""Figure 23: naïve (T&T&S) vs scalable (CLH) locks under TreeSR.

The paper's question: can callbacks make up for non-scalable
synchronization algorithms? Answer: with callbacks, naïve locks perform
like scalable ones, while Invalidation degrades with naïve locks.
"""

import pytest

from benchmarks.conftest import BENCH_CORES, BENCH_SCALE
from repro.harness.experiments import fig23

SUBSET = ["barnes", "cholesky", "raytrace", "fluidanimate"]


def test_fig23_regenerate(benchmark):
    out = benchmark.pedantic(
        lambda: fig23(num_cores=BENCH_CORES, scale=BENCH_SCALE,
                      verbose=False, apps=SUBSET),
        rounds=1, iterations=1,
    )
    time = out["time"]

    # Naïve synchronization with callbacks is as good as scalable
    # synchronization with callbacks (Section 5.4.1).
    cb_naive = time["ttas"]["CB-One"]
    cb_scalable = time["clh"]["CB-One"]
    assert cb_naive == pytest.approx(cb_scalable, rel=0.05)

    # And callbacks stay competitive with Invalidation in both regimes.
    for lock in ("ttas", "clh"):
        assert time[lock]["CB-One"] <= time[lock]["Invalidation"] * 1.10

    # Traffic: callbacks win under both lock regimes.
    for lock in ("ttas", "clh"):
        traffic = out["traffic"][lock]
        assert traffic["CB-One"] < traffic["Invalidation"]
        assert traffic["CB-One"] < traffic["BackOff-10"]

    fig23(num_cores=BENCH_CORES, scale=BENCH_SCALE, verbose=True,
          apps=SUBSET)
