"""Figure 1: invalidation vs. LLC spinning with exponential back-off.

Regenerates the paper's motivation graph: normalized LLC accesses and
spin latency for CLH-lock and TreeSR-barrier spin-waiting under
Invalidation and BackOff-{0,5,10,15}.
"""

import pytest

from benchmarks.conftest import BENCH_CORES, BENCH_ITERS
from repro.harness.experiments import fig01
from repro.harness.runner import run_config
from repro.workloads.microbench import LockMicrobench


def test_fig01_regenerate(benchmark):
    """Times the full Figure 1 sweep and asserts its shape."""
    out = benchmark.pedantic(
        lambda: fig01(num_cores=BENCH_CORES, iterations=BENCH_ITERS,
                      verbose=False),
        rounds=1, iterations=1,
    )
    for construct in ("clh", "treesr"):
        accesses = out[construct]["llc_accesses"]
        latency = out[construct]["latency"]
        # Invalidation barely touches the LLC; BackOff-0 is the flood.
        assert accesses["BackOff-0"] == pytest.approx(1.0)
        assert accesses["Invalidation"] < 0.5
        # Latency is the price of the largest exponentiation cap.
        assert latency["BackOff-15"] == pytest.approx(1.0)
        assert latency["Invalidation"] < latency["BackOff-15"]
    # Print the regenerated series (the paper's two bar groups).
    fig01(num_cores=BENCH_CORES, iterations=BENCH_ITERS, verbose=True)


def test_fig01_single_run_cost(benchmark):
    """Times one BackOff-10 CLH microbenchmark run (the unit of work the
    sweep repeats)."""
    result = benchmark.pedantic(
        lambda: run_config("BackOff-10",
                           LockMicrobench("clh", iterations=BENCH_ITERS),
                           num_cores=BENCH_CORES),
        rounds=3, iterations=1,
    )
    assert result.cycles > 0
