"""Multi-seed replication and ASCII chart rendering."""

import pytest

from repro.harness.charts import bar_chart, hbar
from repro.harness.replication import (Replicate, replicate,
                                       replicate_comparison)
from repro.workloads.microbench import LockMicrobench


class TestReplicateStats:
    def test_mean_std(self):
        r = Replicate([1.0, 2.0, 3.0])
        assert r.mean == 2.0
        assert r.std == pytest.approx(1.0)
        assert (r.lo, r.hi) == (1.0, 3.0)
        assert r.n == 3

    def test_single_sample_std_zero(self):
        assert Replicate([5.0]).std == 0.0

    def test_empty(self):
        r = Replicate([])
        assert r.mean == 0.0 and r.cv == 0.0

    def test_separation(self):
        assert Replicate([1, 2]).separated_from(Replicate([3, 4]))
        assert not Replicate([1, 3]).separated_from(Replicate([2, 4]))


class TestReplicateRuns:
    def test_different_seeds_give_different_runs(self):
        r = replicate("CB-One", lambda: LockMicrobench("ttas", iterations=3),
                      lambda res: float(res.cycles), seeds=(1, 2, 3),
                      num_cores=4)
        assert r.n == 3
        assert r.hi > 0
        # Seeds perturb the schedule, so not all runs are identical.
        assert len(set(r.values)) > 1

    def test_same_seed_reproduces(self):
        r = replicate("CB-One", lambda: LockMicrobench("ttas", iterations=3),
                      lambda res: float(res.cycles), seeds=(7, 7),
                      num_cores=4)
        assert r.values[0] == r.values[1]

    def test_comparison_shape_is_seed_stable(self):
        """The Figure 1 conclusion holds on every seed: BackOff-0 touches
        the LLC more than CB-One."""
        out = replicate_comparison(
            ("BackOff-0", "CB-One"),
            lambda: LockMicrobench("clh", iterations=4),
            lambda res: float(res.llc_sync),
            seeds=(1, 2, 3),
            num_cores=16,
        )
        assert out["BackOff-0"].separated_from(out["CB-One"])
        assert out["BackOff-0"].lo > out["CB-One"].hi


class TestCharts:
    def test_hbar_scales(self):
        assert hbar(10, 10, width=10) == "█" * 10
        assert hbar(5, 10, width=10) == "█" * 5
        assert hbar(0, 10, width=10) == ""

    def test_hbar_half_cell(self):
        assert hbar(5.5, 10, width=10).endswith("▌")

    def test_bar_chart_contains_everything(self):
        chart = bar_chart("Fig", ["a", "b"],
                          {"row1": {"a": 1.0, "b": 0.5}})
        assert "Fig" in chart and "row1" in chart
        assert "1.000" in chart and "0.500" in chart
        assert "█" in chart

    def test_bar_chart_empty_safe(self):
        chart = bar_chart("Empty", ["a"], {})
        assert "Empty" in chart
