"""2-D mesh topology with deterministic X-Y routing.

The paper's machine is an 8x8 mesh of tiles, one core + L1 + LLC bank per
tile (Table 2). We model the network at the latency/traffic level: a
message from tile A to tile B takes ``hops * switch_latency`` cycles of
head latency plus ``(flits - 1)`` cycles of serialization, and contributes
``flits * hops`` flit-hops of traffic. Deterministic X-Y routing fixes the
hop count to the Manhattan distance (X first, then Y — the path itself
does not change the distance, but it is exposed for tests and for
potential link-contention extensions).
"""

from __future__ import annotations

from typing import List, Tuple


class Mesh:
    """Square 2-D mesh over ``side * side`` tiles, X-Y dimension order."""

    def __init__(self, side: int) -> None:
        if side < 1:
            raise ValueError("mesh side must be >= 1")
        self.side = side
        self.num_nodes = side * side

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of a tile id (row-major numbering)."""
        self._check(node)
        return node % self.side, node // self.side

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(f"coordinates out of range: ({x}, {y})")
        return y * self.side + x

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node id out of range: {node}")

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles (0 for local delivery)."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[int]:
        """The X-Y route as the list of tiles traversed, inclusive.

        X-dimension is fully resolved before the Y-dimension (deterministic
        dimension-order routing, as in Table 2).
        """
        self._check(src)
        self._check(dst)
        path = [src]
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.node_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.node_at(x, y))
        return path

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs (used in energy sanity tests)."""
        total = 0
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                total += self.hops(src, dst)
        return total / (self.num_nodes * self.num_nodes)


class Torus(Mesh):
    """2-D torus: the mesh with wraparound links in both dimensions.

    A topology extension (the paper's Table 2 machine is a plain mesh):
    wraparound halves the average distance, shrinking every remote-access
    latency — useful for checking that the protocol comparisons are not
    artifacts of mesh diameter.
    """

    def _axis_step(self, a: int, b: int) -> int:
        """Signed unit step from a to b along one axis, shortest way."""
        forward = (b - a) % self.side
        backward = (a - b) % self.side
        return 1 if forward <= backward else -1

    def _axis_hops(self, a: int, b: int) -> int:
        forward = (b - a) % self.side
        return min(forward, self.side - forward)

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return self._axis_hops(sx, dx) + self._axis_hops(sy, dy)

    def route(self, src: int, dst: int) -> List[int]:
        """X-Y dimension-order routing taking the shorter way around."""
        self._check(src)
        self._check(dst)
        path = [src]
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        while x != dx:
            x = (x + self._axis_step(x, dx)) % self.side
            path.append(self.node_at(x, y))
        while y != dy:
            y = (y + self._axis_step(y, dy)) % self.side
            path.append(self.node_at(x, y))
        return path


def make_topology(name: str, side: int) -> Mesh:
    """Topology factory: "mesh" (Table 2 default) or "torus"."""
    if name == "mesh":
        return Mesh(side)
    if name == "torus":
        return Torus(side)
    raise ValueError(f"unknown topology {name!r} (mesh | torus)")
