"""Figure 21: execution time and network traffic over the 19-app suite
with scalable synchronization (CLH + TreeSR), normalized to Invalidation.

The full sweep is 19 apps x 7 configurations; the timed benchmark runs a
representative 4-app subset, and a second (non-normalizing) check runs
the complete suite under the three headline configurations.
"""

import pytest

from benchmarks.conftest import BENCH_CORES, BENCH_SCALE
from repro.harness.experiments import fig21
from repro.workloads.suite import APP_NAMES

SUBSET = ["barnes", "raytrace", "streamcluster", "swaptions"]


def test_fig21_subset_all_configs(benchmark):
    out = benchmark.pedantic(
        lambda: fig21(num_cores=BENCH_CORES, scale=BENCH_SCALE,
                      verbose=False, apps=SUBSET),
        rounds=1, iterations=1,
    )
    time_gm = out["time"]["geomean"]
    traffic_gm = out["traffic"]["geomean"]

    # Headline shape: callbacks cut traffic vs Invalidation AND vs the
    # best back-off, while staying competitive in execution time.
    assert traffic_gm["CB-One"] < traffic_gm["Invalidation"]
    assert traffic_gm["CB-One"] < traffic_gm["BackOff-10"]
    assert time_gm["CB-One"] <= time_gm["BackOff-10"]
    assert time_gm["CB-One"] <= 1.10  # competitive with Invalidation

    # BackOff-15 "misses the target in execution time" (Section 5.4.1).
    assert time_gm["BackOff-15"] > time_gm["BackOff-10"] >= time_gm["BackOff-0"] * 0.95

    fig21(num_cores=BENCH_CORES, scale=BENCH_SCALE, verbose=True,
          apps=SUBSET)


def test_fig21_full_suite_headline_configs(benchmark):
    """All 19 applications under the three headline configurations."""
    out = benchmark.pedantic(
        lambda: fig21(num_cores=BENCH_CORES, scale=BENCH_SCALE,
                      verbose=False,
                      configs=("Invalidation", "BackOff-10", "CB-One")),
        rounds=1, iterations=1,
    )
    assert len(out["runs"]) == len(APP_NAMES) == 19
    traffic_gm = out["traffic"]["geomean"]
    assert traffic_gm["CB-One"] < traffic_gm["Invalidation"]
    assert traffic_gm["CB-One"] < traffic_gm["BackOff-10"]
