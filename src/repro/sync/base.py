"""Synchronization library plumbing.

Every algorithm in this package is encoded four ways, exactly following
the paper's Figures 8-19:

* ``MESI`` — unfenced SC code: plain loads/stores/atomics, local spinning
  on the L1 copy (left-hand columns of Figures 8/10/12/14/16/18);
* ``VIPS`` — fenced self-invalidation code: through-ops, LLC spinning with
  exponential back-off (right-hand columns of the same figures);
* ``CB_ALL`` — callback-all encodings (Figures 9/11/13/15/17/19 left);
* ``CB_ONE`` — callback-one encodings using write_CB1/write_CB0
  (Figures 9/11/19 right; CLH/TreeSR spin-waiting has a single waiter per
  word, so the two callback modes share one encoding there).

The algorithms are generator methods: they yield ops and receive results,
composing with workload generators via ``yield from``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.config import CallbackMode, Protocol, SystemConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.layout import MemoryLayout


class SyncStyle(enum.Enum):
    """Which encoding of each algorithm the threads execute."""

    MESI = "mesi"
    VIPS = "vips"
    CB_ALL = "cb_all"
    CB_ONE = "cb_one"


def style_for(config: SystemConfig) -> SyncStyle:
    """The synchronization encoding matching a machine configuration."""
    if config.protocol is Protocol.MESI:
        return SyncStyle.MESI
    if config.protocol is Protocol.VIPS_BACKOFF:
        return SyncStyle.VIPS
    if config.callback_mode is CallbackMode.ALL:
        return SyncStyle.CB_ALL
    return SyncStyle.CB_ONE


class SyncPrimitive:
    """Base for locks/barriers: owns its memory and knows its encoding."""

    def __init__(self, style: SyncStyle) -> None:
        self.style = style
        self._ready = False

    def setup(self, layout: "MemoryLayout", num_threads: int) -> None:
        """Allocate this primitive's words; call once before use."""
        raise NotImplementedError

    def initial_values(self) -> dict:
        """Word values that must be seeded into the machine's word store
        before the threads start (e.g. a barrier counter = thread count)."""
        return {}

    def _require_ready(self) -> None:
        if not self._ready:
            raise RuntimeError(
                f"{type(self).__name__} used before setup(layout, n)"
            )
