"""repro.fleet — the supervision layer over the repro.serve worker pool.

The service plane (:mod:`repro.serve`) already survives *individual*
deaths: journaled queue, generation-fenced leases, checkpoint resume.
What it lacked was a brain that keeps the *population* healthy. This
package is that brain:

* :mod:`repro.fleet.paths` — the on-disk fleet registry
  (``<root>/fleet/``): per-worker pidfiles + start metadata, written by
  both :func:`repro.serve.worker.spawn_worker` and the workers
  themselves, so status and adoption work even for hand-spawned
  workers;
* :mod:`repro.fleet.budget` — restart budgets: per-slot seeded
  jittered-exponential backoff (byte-identical across supervisor
  restarts), a fleet-wide restart rate limit, and windowed quarantine
  of flapping workers with a taxonomy-aware reason;
* :mod:`repro.fleet.autoscale` — the pure scale-up/scale-down decision
  function over scraped ``/metrics`` samples, with hysteresis;
* :mod:`repro.fleet.supervisor` — the supervisor loop: spawn, monitor,
  restart, adopt-after-SIGKILL, autoscale, journal to ``fleet.jsonl``;
* :mod:`repro.fleet.drill` — the deterministic partition drill (worker
  kamikazes + supervisor SIGKILL + transport partition, zero lost /
  zero duplicated assertions);
* :mod:`repro.fleet.cli` — ``repro-fleet up/status/scale/drain/drill``.
"""

from repro.fleet.autoscale import AutoscaleConfig, Autoscaler, FleetSample
from repro.fleet.budget import (QUARANTINED, RestartBudget, RestartDecision,
                                SlotBudget)
from repro.fleet.paths import (fleet_dir, pid_alive, read_worker_metas,
                               remove_worker_meta, worker_meta_path,
                               write_worker_meta)
from repro.fleet.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "AutoscaleConfig", "Autoscaler", "FleetSample",
    "QUARANTINED", "RestartBudget", "RestartDecision", "SlotBudget",
    "Supervisor", "SupervisorConfig",
    "fleet_dir", "pid_alive", "read_worker_metas", "remove_worker_meta",
    "worker_meta_path", "write_worker_meta",
]
