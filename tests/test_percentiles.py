"""Episode latency percentiles (tail-latency reporting)."""

import pytest

from repro.harness.runner import run_config
from repro.sim.stats import Stats
from repro.workloads.microbench import LockMicrobench


class TestPercentileMath:
    def _stats(self, samples):
        stats = Stats()
        for s in samples:
            stats.record_episode("x", s)
        return stats

    def test_median(self):
        stats = self._stats([10, 20, 30, 40, 50])
        assert stats.episode_percentile("x", 50) == 30

    def test_p100_is_max(self):
        stats = self._stats([3, 1, 2])
        assert stats.episode_percentile("x", 100) == 3

    def test_small_pct_is_min(self):
        stats = self._stats([3, 1, 2])
        assert stats.episode_percentile("x", 1) == 1

    def test_empty_category(self):
        assert Stats().episode_percentile("nothing", 99) == 0.0

    def test_out_of_range_rejected(self):
        stats = self._stats([1])
        with pytest.raises(ValueError):
            stats.episode_percentile("x", 0)
        with pytest.raises(ValueError):
            stats.episode_percentile("x", 101)

    def test_summary_keys_and_consistency(self):
        stats = self._stats(list(range(1, 101)))
        summary = stats.episode_summary("x")
        assert summary["n"] == 100
        assert summary["p50"] == 50
        assert summary["p95"] == 95
        assert summary["p99"] == 99
        assert summary["max"] == 100
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

    def test_summary_empty(self):
        assert Stats().episode_summary("x")["n"] == 0


class TestTailLatencyShape:
    def test_backoff_tail_worse_than_callback(self):
        """Figure 1's real sting is in the tail: a large-cap back-off's
        p99 acquire latency dwarfs the callback one even when means are
        closer."""
        backoff = run_config("BackOff-15", LockMicrobench("clh",
                                                          iterations=6),
                             num_cores=16)
        cb = run_config("CB-One", LockMicrobench("clh", iterations=6),
                        num_cores=16)
        assert (backoff.stats.episode_percentile("lock_acquire", 99)
                > cb.stats.episode_percentile("lock_acquire", 99) * 2)
