"""repro.fleet unit and integration tests: restart-budget math (the
seeded backoff schedule must be byte-identical across supervisor
lives), the quarantine taxonomy, autoscaler hysteresis, the client-side
circuit breaker FSM, the on-disk fleet registry, supervisor journal
replay + the sole-supervisor lock, and the ``repro_fleet_*`` gauges the
queue renders from the supervisor snapshot.

Everything here is process-free and clock-injected except the last two
classes: a real supervisor over a real service (a handful of jobs), and
a scaled-down partition drill. The full-size drill is CI's
``fleet-smoke`` job (``python -m repro.fleet.drill``).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import paths
from repro.fleet.autoscale import (AutoscaleConfig, Autoscaler,
                                   FleetSample, sample_of_metrics)
from repro.fleet.budget import RestartBudget, kind_of_exit
from repro.fleet.supervisor import (FLEET_DURABLE_OPS, Supervisor,
                                    SupervisorConfig)
from repro.obs.promtext import parse_prometheus
from repro.orchestrate.jobspec import JobSpec
from repro.serve.breaker import (BREAKER_CLOSED, BREAKER_HALF_OPEN,
                                 BREAKER_OPEN, CircuitBreaker,
                                 CircuitOpenError)
from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.journal import Journal


# --------------------------------------------------------------- taxonomy


class TestKindOfExit:
    @pytest.mark.parametrize("rc,kind", [
        (0, "ok"),
        (None, "error"),        # adopted corpse: exact code unknowable
        (-9, "crash"),          # Popen signal-death convention
        (-15, "crash"),
        (137, "crash"),         # shell 128+SIGKILL convention
        (1, "error"),
        (2, "invariant"),       # the resilience taxonomy's exit codes
        (3, "liveness"),
        (4, "timeout"),
        (5, "crash"),
        (99, "error"),          # unmapped codes degrade to generic
    ])
    def test_mapping(self, rc, kind):
        assert kind_of_exit(rc) == kind


# --------------------------------------------------------- restart budget


class TestBackoffSchedule:
    def test_schedule_is_a_pure_function_of_slot_seed_ordinal(self):
        a = RestartBudget(seed=7)
        b = RestartBudget(seed=7)
        sched_a = [a.backoff_s("w0", i) for i in range(1, 7)]
        sched_b = [b.backoff_s("w0", i) for i in range(1, 7)]
        assert sched_a == sched_b  # byte-identical across lives
        # Query order must not matter either (fast-forwarded RNG).
        c = RestartBudget(seed=7)
        assert c.backoff_s("w0", 4) == sched_a[3]

    def test_seed_and_slot_decorrelate_the_jitter(self):
        budget = RestartBudget(seed=7)
        other_seed = RestartBudget(seed=8)
        assert budget.backoff_s("w0", 1) != other_seed.backoff_s("w0", 1)
        assert budget.backoff_s("w0", 1) != budget.backoff_s("w1", 1)

    def test_ordinal_zero_is_immediate(self):
        assert RestartBudget(seed=1).backoff_s("w0", 0) == 0.0

    def test_backoff_grows_and_caps(self):
        budget = RestartBudget(seed=3, backoff_base_s=0.25,
                               backoff_max_s=4.0)
        delays = [budget.backoff_s("w2", i) for i in range(1, 12)]
        # Jitter scales each delay into [base/2, base]; the cap bounds
        # all of them.
        assert all(0 < d <= 4.0 for d in delays)
        assert max(delays[6:]) > max(delays[:2])  # exponent bites


class TestQuarantine:
    def test_flap_threshold_in_window_quarantines(self):
        budget = RestartBudget(seed=0, flap_threshold=3,
                               flap_window_s=60.0)
        budget.note_crash("w0", 100.0, kind="crash")
        budget.note_crash("w0", 101.0, kind="crash")
        assert budget.quarantined == []
        slot = budget.note_crash("w0", 102.0, kind="timeout")
        assert slot.quarantined
        assert "3 crashes in 60s" in slot.quarantine_reason
        assert "dominant kind: crash" in slot.quarantine_reason
        assert budget.decide("w0", 103.0).action == "quarantine"

    def test_crashes_outside_window_never_quarantine(self):
        budget = RestartBudget(seed=0, flap_threshold=3,
                               flap_window_s=60.0)
        for t in (0.0, 100.0, 200.0, 300.0):
            budget.note_crash("w0", t, kind="crash")
        assert budget.quarantined == []

    def test_clear_quarantine_restores_service(self):
        budget = RestartBudget(seed=0, flap_threshold=2,
                               flap_window_s=60.0)
        budget.note_crash("w0", 0.0, kind="crash")
        budget.note_crash("w0", 1.0, kind="crash")
        assert budget.quarantined == ["w0"]
        budget.clear_quarantine("w0")
        assert budget.quarantined == []
        assert budget.decide("w0", 2.0).action == "restart"


class TestRestartDecisions:
    def test_backoff_gates_the_respawn(self):
        budget = RestartBudget(seed=5, backoff_base_s=10.0,
                               backoff_max_s=100.0)
        slot = budget.note_crash("w0", 1000.0, returncode=-9)
        decision = budget.decide("w0", 1000.0)
        assert decision.action == "wait"
        assert decision.delay_s == pytest.approx(
            slot.next_eligible_t - 1000.0)
        assert "backoff" in decision.reason
        assert budget.decide("w0", slot.next_eligible_t).action == "restart"

    def test_fleet_rate_limit_brakes_distinct_slots(self):
        budget = RestartBudget(seed=0, fleet_rate=2, fleet_window_s=10.0)
        budget.note_restart("w0", 100.0)
        budget.note_restart("w1", 100.0)
        decision = budget.decide("w9", 100.0)  # never crashed, still held
        assert decision.action == "wait"
        assert "fleet rate limit" in decision.reason
        assert budget.decide("w9", 110.1).action == "restart"

    def test_replaying_crashes_rebuilds_identical_state(self):
        live = RestartBudget(seed=7, flap_threshold=3, flap_window_s=60.0)
        crashes = [("w0", 10.0, "crash"), ("w1", 11.0, "timeout"),
                   ("w0", 12.0, "crash"), ("w0", 13.0, "error")]
        for slot, t, kind in crashes:
            live.note_crash(slot, t, kind=kind)
        replayed = RestartBudget(seed=7, flap_threshold=3,
                                 flap_window_s=60.0)
        for slot, t, kind in crashes:
            replayed.note_crash(slot, t, kind=kind)
        assert live.snapshot() == replayed.snapshot()
        # And the schedules continue identically from here.
        assert live.backoff_s("w0", 4) == replayed.backoff_s("w0", 4)


# -------------------------------------------------------- circuit breaker


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


class TestCircuitBreakerFSM:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("threshold", 3)
        kwargs.setdefault("cooldown_s", 1.0)
        kwargs.setdefault("cooldown_max_s", 8.0)
        return CircuitBreaker(now_fn=clock, **kwargs), clock

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.allow()  # still flows
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        with pytest.raises(CircuitOpenError) as err:
            breaker.allow()
        assert isinstance(err.value, OSError)  # callers reuse except arms
        assert err.value.retry_in_s == pytest.approx(1.0)
        assert breaker.snapshot()["refusals"] == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_one_probe_per_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t += 1.0
        breaker.allow()  # the probe slot
        assert breaker.state == BREAKER_HALF_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # second caller waits for the probe verdict

    def test_failed_probe_doubles_cooldown_capped(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        cooldowns = []
        for _ in range(5):
            clock.t += breaker.snapshot()["cooldown_s"]
            breaker.allow()                  # probe admitted
            breaker.record_failure()         # ...and fails
            assert breaker.state == BREAKER_OPEN
            cooldowns.append(breaker.snapshot()["cooldown_s"])
        assert cooldowns == [2.0, 4.0, 8.0, 8.0, 8.0]  # doubles, capped

    def test_successful_probe_closes_and_resets_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t += 1.0
        breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.snapshot()["streak"] == 0
        assert breaker.snapshot()["cooldown_s"] == pytest.approx(1.0)


class TestClientBreakerWiring:
    """The breaker in front of ServeClient's transport: what counts as
    a failure is transport-shaped, and an open breaker refuses locally
    without touching the wire."""

    def test_oserror_streak_opens_and_stops_touching_the_wire(self):
        calls = []

        def refusing_transport(method, url, data, timeout, headers):
            calls.append(url)
            raise ConnectionRefusedError("nobody home")

        clock = FakeClock()
        client = ServeClient(
            "http://127.0.0.1:1", transport=refusing_transport,
            breaker=CircuitBreaker(threshold=3, cooldown_s=60.0,
                                   now_fn=clock))
        for _ in range(3):
            with pytest.raises(OSError):
                client.health()
        assert len(calls) == 3
        with pytest.raises(CircuitOpenError):
            client.health()
        assert len(calls) == 3  # refused locally, wire untouched

    def test_5xx_counts_as_failure_4xx_as_success(self):
        responses = [(500, b"{}", {}), (500, b"{}", {}),
                     (404, b'{"error": "nope"}', {}),
                     (500, b"{}", {}), (500, b"{}", {})]

        def scripted_transport(method, url, data, timeout, headers):
            return responses.pop(0)

        client = ServeClient(
            "http://127.0.0.1:1", transport=scripted_transport,
            breaker=CircuitBreaker(threshold=3, cooldown_s=60.0,
                                   now_fn=FakeClock()))
        for _ in range(2):
            with pytest.raises(ServeHTTPError):
                client.health()
        assert client.breaker.snapshot()["streak"] == 2
        # The 404 is the service *answering*: proof the wire works.
        with pytest.raises(ServeHTTPError):
            client.health()
        assert client.breaker.snapshot()["streak"] == 0
        for _ in range(2):
            with pytest.raises(ServeHTTPError):
                client.health()
        assert client.breaker.state == BREAKER_CLOSED  # streak restarted


# ------------------------------------------------------------- autoscaler


class TestAutoscaler:
    def make(self, **kwargs):
        kwargs.setdefault("min_workers", 1)
        kwargs.setdefault("max_workers", 4)
        kwargs.setdefault("backlog_per_worker", 2)
        kwargs.setdefault("up_ticks", 2)
        kwargs.setdefault("down_ticks", 3)
        return Autoscaler(AutoscaleConfig(**kwargs))

    def test_one_hot_sample_does_not_scale(self):
        scaler = self.make()
        hot = FleetSample(queued=10, leased=1)
        assert scaler.desired(1, hot) == 1
        calm = FleetSample(queued=1, leased=1)
        assert scaler.desired(1, calm) == 1
        assert scaler.desired(1, hot) == 1  # streak was broken

    def test_sustained_pressure_scales_up_one_step(self):
        scaler = self.make()
        hot = FleetSample(queued=10, leased=2)
        assert scaler.desired(1, hot) == 1
        assert scaler.desired(1, hot) == 2
        assert scaler.snapshot()["decisions"]["up"] == 1

    def test_scale_down_is_deliberately_slower(self):
        scaler = self.make()
        idle = FleetSample(queued=0, leased=0)
        assert scaler.desired(3, idle) == 3
        assert scaler.desired(3, idle) == 3
        assert scaler.desired(3, idle) == 2  # only after down_ticks
        assert scaler.snapshot()["decisions"]["down"] == 1

    def test_failed_scrape_freezes_and_resets_hysteresis(self):
        scaler = self.make()
        hot = FleetSample(queued=10, leased=0)
        assert scaler.desired(1, hot) == 1
        assert scaler.desired(1, None) == 1   # hold position
        # The pre-partition streak must not fire the moment it heals.
        assert scaler.desired(1, hot) == 1
        assert scaler.desired(1, hot) == 2

    def test_desired_is_clamped(self):
        scaler = self.make(min_workers=2, max_workers=3)
        assert scaler.clamp(0) == 2
        assert scaler.clamp(99) == 3
        idle = FleetSample(queued=0, leased=0)
        for _ in range(10):
            assert scaler.desired(2, idle) == 2  # never below min

    def test_demand_counts_leased_work_against_scale_down(self):
        scaler = self.make()
        busy = FleetSample(queued=0, leased=3)
        for _ in range(10):
            assert scaler.desired(3, busy) == 3


class TestSampleOfMetrics:
    def test_reduces_a_real_metrics_body(self, tmp_path):
        from repro.serve.queue import JobQueue
        queue = JobQueue(str(tmp_path / "serve"), lease_s=5.0,
                         checkpoint_every=0)
        for seed in range(3):
            spec = JobSpec(config_label="CB-All", workload="lock",
                           workload_params={"lock_name": "ttas",
                                            "iterations": 2},
                           config_overrides={"num_cores": 4}, seed=seed)
            queue.submit("alice", spec.to_dict())
        queue.lease("w1")
        sample = sample_of_metrics(queue.prometheus_text())
        queue.close()
        assert sample.queued == 2
        assert sample.leased == 1
        assert sample.demand == 3
        assert sample.oldest_lease_age_s >= 0.0

    def test_missing_families_default_to_zero(self):
        assert sample_of_metrics("") == FleetSample(queued=0, leased=0)


# ---------------------------------------------------------- fleet registry


class TestFleetPaths:
    def test_worker_meta_round_trip(self, tmp_path):
        fleet_root = paths.fleet_dir(str(tmp_path))
        path = paths.write_worker_meta(fleet_root, "fleet-w0",
                                       os.getpid(), "http://x:1",
                                       slot="w0")
        assert os.path.exists(path)
        meta = paths.read_worker_meta(fleet_root, "fleet-w0")
        assert meta["pid"] == os.getpid()
        assert meta["slot"] == "w0"
        paths.remove_worker_meta(fleet_root, "fleet-w0")
        assert paths.read_worker_meta(fleet_root, "fleet-w0") is None
        paths.remove_worker_meta(fleet_root, "fleet-w0")  # idempotent

    def test_live_only_skips_corpses(self, tmp_path):
        fleet_root = paths.fleet_dir(str(tmp_path))
        corpse = subprocess.Popen([sys.executable, "-c", "pass"])
        corpse.wait()
        paths.write_worker_meta(fleet_root, "fleet-w0", corpse.pid,
                                "http://x:1")
        paths.write_worker_meta(fleet_root, "fleet-w1", os.getpid(),
                                "http://x:1")
        every = paths.read_worker_metas(fleet_root)
        assert {m["worker_id"]: m["alive"] for m in every} == \
            {"fleet-w0": False, "fleet-w1": True}
        live = paths.read_worker_metas(fleet_root, live_only=True)
        assert [m["worker_id"] for m in live] == ["fleet-w1"]
        # Corpse files are left in place for the supervisor to reap.
        assert paths.read_worker_meta(fleet_root, "fleet-w0") is not None

    def test_pid_alive_edges(self):
        assert paths.pid_alive(os.getpid())
        assert not paths.pid_alive(0)
        assert not paths.pid_alive(-1)

    def test_journal_accepts_custom_durable_ops(self, tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        journal = Journal(path, durable_ops=FLEET_DURABLE_OPS)
        journal.append("scale", desired=3)
        journal.append("spawn", slot="w0")
        journal.close()
        assert [e["op"] for e in Journal.replay(path)] == \
            ["scale", "spawn"]


# ----------------------------------------------- supervisor (process-free)


def supervisor_config(tmp_path, **kwargs):
    kwargs.setdefault("server_url", "http://127.0.0.1:1")
    kwargs.setdefault("root", str(tmp_path / "serve"))
    kwargs.setdefault("min_workers", 1)
    kwargs.setdefault("max_workers", 4)
    return SupervisorConfig(**kwargs)


class TestSupervisorReplay:
    """Constructing a Supervisor replays fleet.jsonl and adopts
    pidfiles but spawns nothing until the first tick — so these tests
    never fork a worker."""

    def write_journal(self, tmp_path, entries):
        fleet_root = paths.fleet_dir(str(tmp_path / "serve"))
        os.makedirs(fleet_root, exist_ok=True)
        journal = Journal(paths.fleet_journal_path(fleet_root),
                          durable_ops=FLEET_DURABLE_OPS)
        for op, fields in entries:
            journal.append(op, **fields)
        journal.close()

    def test_replay_restores_desired_and_quarantine(self, tmp_path):
        self.write_journal(tmp_path, [
            ("scale", {"desired": 3, "reason": "operator"}),
            ("crash", {"slot": "w0", "t": 1000.0, "kind": "crash"}),
            ("crash", {"slot": "w0", "t": 1001.0, "kind": "crash"}),
            ("crash", {"slot": "w0", "t": 1002.0, "kind": "timeout"}),
        ])
        supervisor = Supervisor(supervisor_config(
            tmp_path, flap_threshold=3, flap_window_s=60.0))
        try:
            assert supervisor.desired == 3
            assert supervisor.budget.quarantined == ["w0"]
            assert "dominant kind: crash" in \
                supervisor.budget.slot_budget("w0").quarantine_reason
        finally:
            supervisor.shutdown(kill_workers=False)

    def test_replay_resumes_the_backoff_schedule(self, tmp_path):
        self.write_journal(tmp_path, [
            ("crash", {"slot": "w0", "t": 1000.0, "kind": "crash"}),
            ("crash", {"slot": "w0", "t": 1001.0, "kind": "crash"}),
        ])
        supervisor = Supervisor(supervisor_config(tmp_path, seed=7))
        try:
            assert supervisor.budget.slot_budget("w0").restarts == 2
            # The next delay equals what an uninterrupted budget with
            # the same seed would compute: the schedule survived.
            assert supervisor.budget.backoff_s("w0", 3) == \
                RestartBudget(seed=7).backoff_s("w0", 3)
        finally:
            supervisor.shutdown(kill_workers=False)

    def test_cleared_quarantine_stays_cleared_across_lives(self, tmp_path):
        self.write_journal(tmp_path, [
            ("crash", {"slot": "w0", "t": 1000.0, "kind": "crash"}),
            ("crash", {"slot": "w0", "t": 1001.0, "kind": "crash"}),
            ("clear", {"slot": "w0"}),
        ])
        supervisor = Supervisor(supervisor_config(
            tmp_path, flap_threshold=2, flap_window_s=60.0))
        try:
            assert supervisor.budget.quarantined == []
        finally:
            supervisor.shutdown(kill_workers=False)

    def test_adoption_reaps_orphan_corpses_as_crashes(self, tmp_path):
        root = str(tmp_path / "serve")
        fleet_root = paths.fleet_dir(root)
        corpse = subprocess.Popen([sys.executable, "-c", "pass"])
        corpse.wait()
        paths.write_worker_meta(fleet_root, "fleet-w0", corpse.pid,
                                "http://x:1")
        supervisor = Supervisor(supervisor_config(tmp_path))
        try:
            assert supervisor.crashes == 1
            assert supervisor.adoptions == 0
            assert supervisor.budget.slot_budget("w0").restarts == 1
            assert paths.read_worker_meta(fleet_root, "fleet-w0") is None
        finally:
            supervisor.shutdown(kill_workers=False)

    def test_foreign_prefix_pidfiles_are_ignored(self, tmp_path):
        root = str(tmp_path / "serve")
        paths.write_worker_meta(paths.fleet_dir(root), "hand-w0",
                                os.getpid(), "http://x:1")
        supervisor = Supervisor(supervisor_config(tmp_path))
        try:
            assert supervisor.slots == {}
            assert supervisor.crashes == 0
        finally:
            supervisor.shutdown(kill_workers=False)


class TestSoleSupervisorLock:
    def test_live_foreign_supervisor_is_refused(self, tmp_path):
        root = str(tmp_path / "serve")
        fleet_root = paths.fleet_dir(root)
        os.makedirs(fleet_root, exist_ok=True)
        holder = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            from repro.ioutil import atomic_write_json
            atomic_write_json(paths.supervisor_state_path(fleet_root),
                              {"pid": holder.pid}, durable=False)
            with pytest.raises(RuntimeError, match="already owns"):
                Supervisor(supervisor_config(tmp_path))
        finally:
            holder.kill()
            holder.wait()

    def test_dead_pid_is_stale_state_not_a_lock(self, tmp_path):
        root = str(tmp_path / "serve")
        fleet_root = paths.fleet_dir(root)
        os.makedirs(fleet_root, exist_ok=True)
        corpse = subprocess.Popen([sys.executable, "-c", "pass"])
        corpse.wait()
        from repro.ioutil import atomic_write_json
        atomic_write_json(paths.supervisor_state_path(fleet_root),
                          {"pid": corpse.pid}, durable=False)
        supervisor = Supervisor(supervisor_config(tmp_path))
        supervisor.shutdown(kill_workers=False)


class TestControlMailbox:
    def test_operator_scale_is_clamped_and_journaled(self, tmp_path):
        supervisor = Supervisor(supervisor_config(tmp_path,
                                                  max_workers=4))
        try:
            from repro.ioutil import atomic_write_json
            control = paths.control_path(supervisor.fleet_root)
            atomic_write_json(control, {"desired": 99}, durable=False)
            supervisor._apply_control()
            assert supervisor.desired == 4
            assert not os.path.exists(control)  # consumed
        finally:
            supervisor.shutdown(kill_workers=False)
        ops = [e for e in Journal.replay(
            paths.fleet_journal_path(supervisor.fleet_root))
            if e["op"] == "scale"]
        assert ops and ops[-1]["desired"] == 4
        assert ops[-1]["reason"] == "operator"

    def test_drain_and_clear_quarantine(self, tmp_path):
        supervisor = Supervisor(supervisor_config(
            tmp_path, flap_threshold=2, flap_window_s=60.0))
        try:
            supervisor.budget.note_crash("w0", 0.0, kind="crash")
            supervisor.budget.note_crash("w0", 1.0, kind="crash")
            assert supervisor.budget.quarantined == ["w0"]
            from repro.ioutil import atomic_write_json
            atomic_write_json(paths.control_path(supervisor.fleet_root),
                              {"drain": True,
                               "clear_quarantine": ["w0"]},
                              durable=False)
            supervisor._apply_control()
            assert supervisor.desired == 0
            assert supervisor.budget.quarantined == []
        finally:
            supervisor.shutdown(kill_workers=False)

    def test_quarantined_slots_keep_their_names(self, tmp_path):
        supervisor = Supervisor(supervisor_config(
            tmp_path, max_workers=2, flap_threshold=1,
            flap_window_s=60.0))
        try:
            supervisor.budget.note_crash("w0", 0.0, kind="crash")
            # The replacement gets a fresh index above the benched slot.
            assert supervisor._pick_vacant_slot() == "w1"
            supervisor.budget.note_crash("w1", 1.0, kind="crash")
            assert supervisor._pick_vacant_slot() == "w2"
        finally:
            supervisor.shutdown(kill_workers=False)


# ----------------------------------------------------------- fleet gauges


class TestFleetGauges:
    def render(self, tmp_path, snapshot):
        from repro.ioutil import atomic_write_json
        from repro.serve.queue import JobQueue
        root = str(tmp_path / "serve")
        queue = JobQueue(root, lease_s=5.0, checkpoint_every=0)
        fleet_root = paths.fleet_dir(root)
        os.makedirs(fleet_root, exist_ok=True)
        atomic_write_json(paths.supervisor_state_path(fleet_root),
                          snapshot, durable=False)
        text = queue.prometheus_text()
        queue.close()
        return parse_prometheus(text)

    def snapshot_doc(self, **overrides):
        doc = {"pid": os.getpid(), "t": time.time(), "tick_s": 0.1,
               "desired": 3,
               "states": {"running": 2, "draining": 1},
               "quarantined": {"w0": "5 crashes in 60s"},
               "counters": {"spawns": 7, "crashes": 4, "adoptions": 2,
                            "clean_exits": 1},
               "breaker": {"state": "open"}}
        doc.update(overrides)
        return doc

    def sample(self, families, name, **labels):
        samples = families[name]["samples"]
        key = (name, tuple(sorted(labels.items())))
        return samples[key]

    def test_fresh_snapshot_renders_the_fleet_shape(self, tmp_path):
        fams = self.render(tmp_path, self.snapshot_doc())
        assert self.sample(fams, "repro_fleet_supervisor_up") == 1
        assert self.sample(fams, "repro_fleet_desired_workers") == 3
        assert self.sample(fams, "repro_fleet_workers",
                           state="running") == 2
        assert self.sample(fams, "repro_fleet_workers",
                           state="draining") == 1
        assert self.sample(fams, "repro_fleet_workers",
                           state="quarantined") == 1
        assert self.sample(fams, "repro_fleet_events_total",
                           kind="spawns") == 7
        assert self.sample(fams, "repro_fleet_breaker_state",
                           state="open") == 1
        assert self.sample(fams, "repro_fleet_breaker_state",
                           state="closed") == 0

    def test_dead_supervisor_zeroes_up_but_keeps_shape(self, tmp_path):
        corpse = subprocess.Popen([sys.executable, "-c", "pass"])
        corpse.wait()
        fams = self.render(tmp_path, self.snapshot_doc(pid=corpse.pid))
        assert self.sample(fams, "repro_fleet_supervisor_up") == 0
        assert self.sample(fams, "repro_fleet_desired_workers") == 3

    def test_stale_snapshot_zeroes_up(self, tmp_path):
        fams = self.render(tmp_path,
                           self.snapshot_doc(t=time.time() - 3600))
        assert self.sample(fams, "repro_fleet_supervisor_up") == 0
        assert self.sample(fams,
                           "repro_fleet_snapshot_age_seconds") > 100

    def test_no_snapshot_no_fleet_families(self, tmp_path):
        from repro.serve.queue import JobQueue
        queue = JobQueue(str(tmp_path / "serve"), lease_s=5.0,
                         checkpoint_every=0)
        fams = parse_prometheus(queue.prometheus_text())
        queue.close()
        assert "repro_fleet_supervisor_up" not in fams


# ----------------------------------------------- integration (real fleet)


def drill_spec(seed):
    return JobSpec(config_label="CB-All", workload="lock",
                   workload_params={"lock_name": "ttas",
                                    "iterations": 2},
                   config_overrides={"num_cores": 4},
                   seed=seed).to_dict()


class TestSupervisedFleetSmoke:
    def test_supervisor_runs_a_small_flood_end_to_end(self, tmp_path):
        from repro.serve.api import ServeService
        from repro.serve.queue import JobQueue
        root = str(tmp_path / "serve")
        queue = JobQueue(root, lease_s=5.0, checkpoint_every=0)
        service = ServeService(queue, housekeeping_s=0.1).start()
        client = ServeClient(service.url)
        supervisor = Supervisor(SupervisorConfig(
            server_url=service.url, root=root,
            min_workers=2, max_workers=2, initial_workers=2,
            tick_s=0.1, poll_s=0.05, seed=3))
        try:
            client.submit_many("alice",
                               [drill_spec(s) for s in range(6)])
            deadline = time.time() + 60
            while time.time() < deadline:
                supervisor.tick()
                status = client.status()
                if status["runs"].get("done", 0) == 6:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("fleet never finished the flood")
            snap = supervisor.snapshot()
            assert snap["states"]["running"] == 2
            assert snap["counters"]["spawns"] == 2
            assert snap["counters"]["crashes"] == 0
            # The snapshot feeds /metrics: the service sees its fleet.
            fams = parse_prometheus(client.metrics())
            key = ("repro_fleet_supervisor_up", ())
            assert fams["repro_fleet_supervisor_up"]["samples"][key] == 1
        finally:
            supervisor.shutdown(kill_workers=True)
            service.stop()
        # Graceful shutdown drained both workers; no orphans remain.
        assert paths.read_worker_metas(paths.fleet_dir(root),
                                       live_only=True) == []


class TestPartitionDrill:
    def test_drill_holds_every_invariant(self, tmp_path):
        # Default parameters on purpose: a scaled-down flood can starve
        # the respawned kamikaze of the job it must die on, making the
        # quarantine verdict timing-dependent. CI's fleet-smoke job runs
        # this same configuration via the CLI.
        from repro.fleet.drill import run_drill
        manifest = run_drill(str(tmp_path / "drill"))
        assert manifest["ok"], manifest["problems"]
        assert manifest["acked"] == 300
        assert manifest["unique_runs"] == 100
        assert manifest["quarantined"] == ["w0", "w1"]
        assert manifest["duplicate_commits"] == 0
        assert manifest["adoptions"] >= 1
