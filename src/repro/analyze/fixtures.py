"""Deliberately broken encodings: the linter's negative test corpus.

Every class here contains exactly one seeded Table-1 violation, with the
rest of the encoding written correctly, so each fixture pins down one
rule: the linter must report *exactly* the expected rule IDs for each
style, anchored to an op inside this file. :func:`check_fixtures` runs
that assertion (the ``repro-analyze lint --fixtures`` mode and the test
suite both use it).

These classes must never be registered in ``repro.sync.registry``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Mapping

from repro.protocols.ops import (Atomic, AtomicKind, BackoffWait, Fence,
                                 FenceKind, LdKind, Load, LoadCB,
                                 LoadThrough, SpinUntil, StKind, Store,
                                 StoreCB1, StoreThrough)
from repro.sync.base import SyncPrimitive, SyncStyle

from repro.analyze.linter import (ALL_STYLES, PrimitiveSpec, _LOCK,
                                  lint_primitive)
from repro.analyze.rules import SessionKind, WakeupDiscipline

#: An encoding session body: yields memory ops, receives their results.
OpGen = Generator[Any, Any, None]


class PlainSpinLock(SyncPrimitive):
    """BUG: spins on a *plain* load of the lock word (CB-E104).

    Under VIPS/callback there is no invalidation: the plain load hits
    the stale L1 copy forever. Only the MESI column may spin plainly.
    """

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.addr = -1

    def setup(self, layout: Any, num_threads: int) -> None:
        self.addr = layout.alloc_sync_word()
        self._ready = True

    def acquire(self, ctx: Any) -> OpGen:
        self._require_ready()
        st = StKind.CB0 if self.style is SyncStyle.CB_ONE else StKind.CBA
        while True:
            value = yield Load(self.addr)     # BUG: plain load spin
            if value != 0:
                continue
            result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                                  ld=LdKind.PLAIN, st=st)
            if result.success:
                break
        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_INVL)

    def release(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is SyncStyle.MESI:
            yield Store(self.addr, 0)
        else:
            yield Fence(FenceKind.SELF_DOWN)
            if self.style is SyncStyle.CB_ONE:
                yield StoreCB1(self.addr, 0)
            else:
                yield StoreThrough(self.addr, 0)


class NoFenceLock(SyncPrimitive):
    """BUG: a T&S lock without self_invl/self_down (CB-E105, CB-E106).

    Without ``self_invl`` after the acquire the critical section reads
    stale L1 data; without ``self_down`` before the releasing write the
    protected writes may still sit dirty in the L1.
    """

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.addr = -1

    def setup(self, layout: Any, num_threads: int) -> None:
        self.addr = layout.alloc_sync_word()
        self._ready = True

    def acquire(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is SyncStyle.MESI:
            while not (yield Atomic(self.addr, AtomicKind.TAS,
                                    (0, 1))).success:
                pass
        elif self.style is SyncStyle.VIPS:
            attempt = 0
            while not (yield Atomic(self.addr, AtomicKind.TAS,
                                    (0, 1))).success:
                yield BackoffWait(attempt)
                attempt += 1
            # BUG: missing Fence(SELF_INVL)
        else:
            st = StKind.CB0 if self.style is SyncStyle.CB_ONE else StKind.CBA
            result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                                  ld=LdKind.PLAIN, st=st)
            while not result.success:
                result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                                      ld=LdKind.CB, st=st)
            # BUG: missing Fence(SELF_INVL)

    def release(self, ctx: Any) -> OpGen:
        self._require_ready()
        # BUG: no Fence(SELF_DOWN) before the releasing write.
        if self.style is SyncStyle.MESI:
            yield Store(self.addr, 0)
        elif self.style is SyncStyle.CB_ONE:
            yield StoreCB1(self.addr, 0)
        else:
            yield StoreThrough(self.addr, 0)


class BroadcastSignal(SyncPrimitive):
    """BUG: a one-waiter wake-up written with st_through (CB-E108).

    Each post wakes exactly one waiter, so under callback-one the figure
    specifies ``write_CB1``; broadcasting with st_cbA re-runs every
    parked waiter for nothing.
    """

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.flag_addr = -1

    def setup(self, layout: Any, num_threads: int) -> None:
        self.flag_addr = layout.alloc_sync_word()
        self._ready = True

    def initial_values(self) -> dict:
        return {self.flag_addr: 0}

    def signal(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is SyncStyle.MESI:
            yield Atomic(self.flag_addr, AtomicKind.FETCH_ADD, (1,))
            return
        yield Fence(FenceKind.SELF_DOWN)
        # BUG (callback-one): should be a {ld}&{st_cb1} increment.
        yield Atomic(self.flag_addr, AtomicKind.FETCH_ADD, (1,),
                     ld=LdKind.PLAIN, st=StKind.CBA)

    def wait(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is SyncStyle.MESI:
            while True:
                yield SpinUntil(self.flag_addr, lambda v: v != 0)
                result = yield Atomic(self.flag_addr, AtomicKind.TDEC)
                if result.success:
                    return
        if self.style is SyncStyle.VIPS:
            while True:
                attempt = 0
                while (yield LoadThrough(self.flag_addr)) == 0:
                    yield BackoffWait(attempt)
                    attempt += 1
                result = yield Atomic(self.flag_addr, AtomicKind.TDEC)
                if result.success:
                    break
            yield Fence(FenceKind.SELF_INVL)
            return
        value = yield LoadThrough(self.flag_addr)
        while True:
            if value != 0:
                result = yield Atomic(self.flag_addr, AtomicKind.TDEC,
                                      ld=LdKind.PLAIN, st=StKind.CB0)
                if result.success:
                    break
            value = yield LoadCB(self.flag_addr)
        yield Fence(FenceKind.SELF_INVL)


class UnguardedCBLock(SyncPrimitive):
    """BUG: the callback spin has no non-blocking guard probe (CB-E107).

    Figures 9/10 always open with a through-op or plain-load atomic:
    going straight to ``ld_cb`` parks the core even when the word is
    already in the wanted state, costing a pointless directory entry
    (and, for atomics, the Section 3.3 forward-progress guard).
    """

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.addr = -1

    def setup(self, layout: Any, num_threads: int) -> None:
        self.addr = layout.alloc_sync_word()
        self._ready = True

    def acquire(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is SyncStyle.MESI:
            while not (yield Atomic(self.addr, AtomicKind.TAS,
                                    (0, 1))).success:
                yield SpinUntil(self.addr, lambda v: v == 0)
            return
        if self.style is SyncStyle.VIPS:
            attempt = 0
            while not (yield Atomic(self.addr, AtomicKind.TAS,
                                    (0, 1))).success:
                yield BackoffWait(attempt)
                attempt += 1
            yield Fence(FenceKind.SELF_INVL)
            return
        st = StKind.CB0 if self.style is SyncStyle.CB_ONE else StKind.CBA
        while True:
            value = yield LoadCB(self.addr)   # BUG: no guard probe first
            if value != 0:
                continue
            result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                                  ld=LdKind.PLAIN, st=st)
            if result.success:
                break
        yield Fence(FenceKind.SELF_INVL)

    def release(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is SyncStyle.MESI:
            yield Store(self.addr, 0)
            return
        yield Fence(FenceKind.SELF_DOWN)
        if self.style is SyncStyle.CB_ONE:
            yield StoreCB1(self.addr, 0)
        else:
            yield StoreThrough(self.addr, 0)


class DroppedWakeupLock(SyncPrimitive):
    """BUG: the releasing store is built but never yielded (AST-E301).

    The op object is constructed and dropped, so the simulated release
    writes nothing: the spun word's only remaining write is the claiming
    ``st_cb0``, which services no callbacks — every waiter parks forever
    (the drive surfaces that as CB-E110).
    """

    def __init__(self, style: SyncStyle) -> None:
        super().__init__(style)
        self.addr = -1

    def setup(self, layout: Any, num_threads: int) -> None:
        self.addr = layout.alloc_sync_word()
        self._ready = True

    def acquire(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is SyncStyle.MESI:
            while not (yield Atomic(self.addr, AtomicKind.TAS,
                                    (0, 1))).success:
                yield SpinUntil(self.addr, lambda v: v == 0)
            return
        if self.style is SyncStyle.VIPS:
            attempt = 0
            while not (yield Atomic(self.addr, AtomicKind.TAS,
                                    (0, 1))).success:
                yield BackoffWait(attempt)
                attempt += 1
            yield Fence(FenceKind.SELF_INVL)
            return
        result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                              ld=LdKind.PLAIN, st=StKind.CB0)
        while not result.success:
            result = yield Atomic(self.addr, AtomicKind.TAS, (0, 1),
                                  ld=LdKind.CB, st=StKind.CB0)
        yield Fence(FenceKind.SELF_INVL)

    def release(self, ctx: Any) -> OpGen:
        self._require_ready()
        if self.style is not SyncStyle.MESI:
            yield Fence(FenceKind.SELF_DOWN)
        # BUG: constructed but never yielded — the wake-up write vanishes.
        StoreThrough(self.addr, 0)


# ----------------------------------------------------------------- registry


@dataclass(frozen=True)
class FixtureCase:
    """One broken encoding plus exactly what the linter must say."""

    spec: PrimitiveSpec
    #: Rule IDs the static drive must report, per style (exact match).
    expected: Mapping[SyncStyle, frozenset] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name


def _case(spec: PrimitiveSpec, **by_style: frozenset) -> FixtureCase:
    expected = {style: by_style.get(style.name.lower(), frozenset())
                for style in ALL_STYLES}
    return FixtureCase(spec=spec, expected=expected)


_SIGNAL_SESSIONS = (("signal", SessionKind.EXIT),
                    ("wait", SessionKind.ENTER))

FIXTURES: Dict[str, FixtureCase] = {case.name: case for case in (
    _case(PrimitiveSpec("plain_spin", lambda s, n: PlainSpinLock(s),
                        _LOCK, WakeupDiscipline.SINGLE_WAITER),
          vips=frozenset({"CB-E104"}),
          cb_all=frozenset({"CB-E104"}),
          cb_one=frozenset({"CB-E104"})),
    _case(PrimitiveSpec("no_fence", lambda s, n: NoFenceLock(s),
                        _LOCK, WakeupDiscipline.SINGLE_WAITER),
          vips=frozenset({"CB-E105", "CB-E106"}),
          cb_all=frozenset({"CB-E105", "CB-E106"}),
          cb_one=frozenset({"CB-E105", "CB-E106"})),
    _case(PrimitiveSpec("broadcast_signal",
                        lambda s, n: BroadcastSignal(s), _SIGNAL_SESSIONS,
                        WakeupDiscipline.ONE, lambda p: {p.flag_addr}),
          cb_one=frozenset({"CB-E108"})),
    _case(PrimitiveSpec("unguarded_cb", lambda s, n: UnguardedCBLock(s),
                        _LOCK, WakeupDiscipline.SINGLE_WAITER),
          cb_all=frozenset({"CB-E107"}),
          cb_one=frozenset({"CB-E107"})),
    _case(PrimitiveSpec("dropped_wakeup",
                        lambda s, n: DroppedWakeupLock(s), _LOCK,
                        WakeupDiscipline.SINGLE_WAITER),
          cb_all=frozenset({"CB-E110"}),
          cb_one=frozenset({"CB-E110"})),
)}

#: What the AST pass must find in this module: the one dropped op.
AST_EXPECTED = ("AST-E301",)


def check_fixtures() -> List[str]:
    """Lint every fixture; return a list of mismatch descriptions.

    Empty list == the linter caught every seeded bug (with the right
    rule ID, style, and an op location inside this file) and reported
    nothing else. Used by ``repro-analyze lint --fixtures`` and the test
    suite.
    """
    problems: List[str] = []
    for case in FIXTURES.values():
        for style in ALL_STYLES:
            report = lint_primitive(case.spec, style)
            got = {finding.rule for finding in report}
            want = set(case.expected.get(style, frozenset()))
            if got != want:
                problems.append(
                    f"{case.name}/{style.value}: expected rules "
                    f"{sorted(want)}, linter reported {sorted(got)}")
                continue
            for finding in report:
                if not (finding.file or "").endswith("fixtures.py") \
                        or not finding.line:
                    problems.append(
                        f"{case.name}/{style.value}: {finding.rule} not "
                        f"anchored to an op in fixtures.py "
                        f"({finding.location()})")
    from repro.analyze.astlint import check_file
    ast_got = tuple(finding.rule for finding in check_file(__file__))
    if ast_got != AST_EXPECTED:
        problems.append(f"AST pass: expected {AST_EXPECTED}, "
                        f"got {ast_got}")
    return problems
