"""The fault injector: executes a :class:`FaultPlan` against a machine.

The injector is an engine *daemon* in the same sense as the telemetry
collectors: every one of its events is scheduled with ``daemon=True``, so
it can never keep the simulation alive or move the final clock, and every
mutation it performs goes through a protocol- or NoC-level fault hook
that exists for exactly this purpose. Two invariants follow:

* **An empty plan is inert.** With no faults of a given family, the
  corresponding hook (``network.fault_hook``, ``core.fault_hook``) is
  never installed and no daemon event is scheduled — an attached injector
  with an empty plan is bit-identical to no injector at all.
* **A plan replays exactly.** All randomness was pre-drawn into the plan
  (:mod:`repro.resilience.faults`); the injector maps selector integers
  onto runtime state (which bank, which resident word, which clean line)
  with modular arithmetic, and the simulation underneath is
  deterministic, so the same plan on the same run always lands the same
  faults on the same state.

Instantaneous faults (``cb_evict``, ``l1_drop``) fire as one daemon event
at their cycle. Windowed faults (``wakeup_delay``, ``wakeup_dup``,
``backoff_perturb``) install a hook at attach time and consult the set of
open windows at each hook call; window state is advanced lazily from the
engine clock, so no per-window events are needed at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.noc.messages import MsgKind
from repro.resilience.faults import Fault, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine


class FaultInjector:
    """Schedules and applies one :class:`FaultPlan` on one machine."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.machine: Optional["Machine"] = None
        #: One record per fault after it fires: the fault's dict plus
        #: ``applied`` and a human ``detail`` of what it hit.
        self.injected: List[Dict[str, Any]] = []
        self._delay_windows: List[Fault] = []
        self._dup_windows: List[Fault] = []
        self._perturb_windows: List[Fault] = []

    # -------------------------------------------------------------- attach

    def attach(self, machine: "Machine") -> None:
        if self.machine is not None:
            raise RuntimeError("injector already attached to a machine")
        self.machine = machine
        engine = machine.engine
        kinds = {fault.kind for fault in self.plan.faults}

        for fault in self.plan.faults:
            if fault.kind is FaultKind.CB_EVICT:
                engine.schedule(fault.cycle, self._evict_thunk(fault),
                                daemon=True)
            elif fault.kind is FaultKind.L1_DROP:
                engine.schedule(fault.cycle, self._drop_thunk(fault),
                                daemon=True)
            elif fault.kind is FaultKind.WAKEUP_DELAY:
                self._delay_windows.append(fault)
            elif fault.kind is FaultKind.WAKEUP_DUP:
                self._dup_windows.append(fault)
            elif fault.kind is FaultKind.BACKOFF_PERTURB:
                self._perturb_windows.append(fault)

        # Hooks are installed only when the plan actually needs them, so
        # an empty (or irrelevant) plan leaves the machine untouched.
        if kinds & {FaultKind.WAKEUP_DELAY, FaultKind.WAKEUP_DUP}:
            machine.network.fault_hook = self._noc_hook
        if FaultKind.BACKOFF_PERTURB in kinds:
            for core in machine._cores:
                core.fault_hook = self._backoff_hook

    # -------------------------------------------------- instantaneous kinds

    def _record(self, fault: Fault, applied: bool, detail: str) -> None:
        self.injected.append({**fault.to_dict(), "applied": applied,
                              "detail": detail})
        if applied:
            self.machine.stats.faults_injected += 1
        if self.machine.obs is not None:
            self.machine.obs.emit("fault.inject", kind=fault.kind.value,
                                  cycle=self.machine.engine.now,
                                  applied=applied, detail=detail)

    def _evict_thunk(self, fault: Fault):
        def fire() -> None:
            protocol = self.machine.protocol
            cb_dirs = getattr(protocol, "cb_dirs", None)
            if cb_dirs is None:
                self._record(fault, False, "no callback directory")
                return
            candidates = [d for d in cb_dirs if d.occupancy() > 0]
            if not candidates:
                self._record(fault, False, "no resident entries")
                return
            directory = candidates[fault.selector % len(candidates)]
            words = directory.resident_words()
            word = words[(fault.selector // 7919) % len(words)]
            woken = protocol.force_cb_eviction(directory.bank, word)
            self._record(fault, True,
                         f"evicted word {word:#x} from bank "
                         f"{directory.bank}, woke {woken} waiter(s)")
        return fire

    def _drop_thunk(self, fault: Fault):
        def fire() -> None:
            protocol = self.machine.protocol
            if not hasattr(protocol, "drop_clean_line"):
                self._record(fault, False, "protocol has no L1 drop hook")
                return
            num_cores = len(self.machine._cores)
            core = fault.selector % num_cores
            line = protocol.drop_clean_line(core,
                                            fault.selector // num_cores)
            if line is None:
                self._record(fault, False, f"core {core} holds no clean line")
            else:
                self._record(fault, True,
                             f"dropped clean line {line:#x} from core "
                             f"{core}'s L1")
        return fire

    # ------------------------------------------------------- windowed kinds

    def _open(self, windows: List[Fault], now: int) -> List[Fault]:
        return [f for f in windows if f.cycle <= now < f.cycle + f.duration]

    def _noc_hook(self, src: int, dst: int, kind: MsgKind,
                  latency: int) -> Tuple[int, int]:
        if kind is not MsgKind.WAKEUP:
            return 0, 0
        now = self.machine.engine.now
        extra = sum(f.magnitude for f in self._open(self._delay_windows, now))
        duplicates = sum(f.magnitude
                         for f in self._open(self._dup_windows, now))
        if extra:
            self.machine.stats.msgs_delayed += 1
            self.machine.stats.faults_injected += 1
        if duplicates:
            self.machine.stats.faults_injected += 1
        return extra, duplicates

    def _backoff_hook(self, core_id: int, attempt: int, delay: int) -> int:
        now = self.machine.engine.now
        jitter = sum(f.magnitude
                     for f in self._open(self._perturb_windows, now))
        if jitter == 0:
            return delay
        self.machine.stats.backoff_perturbations += 1
        self.machine.stats.faults_injected += 1
        # Back-off must stay positive; a negative jitter can shorten the
        # pause but never cancel it.
        return max(1, delay + jitter)

    # -------------------------------------------------------------- report

    def summary(self) -> Dict[str, Any]:
        applied = sum(1 for record in self.injected if record["applied"])
        return {"plan_key": self.plan.plan_key(),
                "faults_planned": len(self.plan),
                "events_fired": len(self.injected),
                "events_applied": applied,
                "injected": list(self.injected)}
