"""One status formatter for every machine-readable job view.

``repro-orchestrate inspect --json`` and the ``repro-serve`` HTTP
status endpoints both render jobs through :func:`job_status_entry`, so
the CLI view and the service view are the same document by
construction — a field added here shows up in both, and they can never
drift apart.

The entry is keyed by the spec's content address and carries the spec
itself, a human label, whether a cached record exists, and (when it
does) the headline result numbers plus ``resumed_from`` — the
checkpoint boundary the successful attempt resumed from, the service's
crash-recovery audit trail.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.orchestrate.cache import ResultCache
from repro.orchestrate.events import read_events
from repro.orchestrate.jobspec import JobSpec

#: Event kinds that carry a ``failure_kind`` detail.
FAILURE_EVENT_KINDS = ("failed", "timeout", "quarantined")


def job_status_entry(spec: JobSpec,
                     record: Optional[Dict[str, Any]] = None,
                     **extra: Any) -> Dict[str, Any]:
    """The canonical machine-readable status of one job.

    ``extra`` lets a caller graft its own fields on (the service adds
    queue state, tenant, attempts, ...); the core shape stays shared.
    """
    entry: Dict[str, Any] = {
        "job_key": spec.job_key(),
        "label": spec.describe(),
        "spec": spec.to_dict(),
        "cached": record is not None,
    }
    if record is not None:
        result = record.get("result", {})
        entry["result"] = {
            "cycles": result.get("cycles"),
            "traffic": result.get("traffic"),
            "llc_sync": result.get("llc_sync"),
        }
        resumed = record.get("meta", {}).get("resumed_from")
        if resumed is not None:
            entry["resumed_from"] = resumed
    entry.update(extra)
    return entry


def gauge_lines(doc: Dict[str, Any]) -> List[str]:
    """Human-readable gauge lines shared by ``repro-orchestrate`` and
    ``repro-serve status`` — cache hit/miss/quarantine, per-tenant
    backlog, oldest-lease age, failure classes. Keys a caller's status
    document lacks are simply skipped, so the batch CLI and the service
    feed their native documents through the same formatter (and the two
    renderings can't drift)."""
    lines: List[str] = []
    cache = doc.get("cache") or doc.get("cache_counters") or {}
    if cache:
        lines.append(f"cache lookups: {cache.get('hit', 0)} hit, "
                     f"{cache.get('miss', 0)} miss, "
                     f"{cache.get('quarantined', 0)} quarantined")
    for tenant, stats in sorted((doc.get("tenants") or {}).items()):
        quota = stats.get("quota", 0)
        lines.append(
            f"  {tenant}: backlog {stats.get('backlog', 0)}, "
            f"{stats.get('queued', 0)} queued, "
            f"{stats.get('leased', 0)} leased, "
            f"{stats.get('done', 0)} done, "
            f"{stats.get('failed', 0)} failed "
            f"(leases {stats.get('active_leases', 0)}"
            f"/{quota if quota else 'unlimited'})")
    age = doc.get("oldest_lease_age_s")
    if age is not None:
        lines.append(f"oldest lease age: {float(age):.1f}s")
    kinds = doc.get("failure_kinds") or doc.get("failure_classes") or {}
    if kinds:
        lines.append("failure classes: " + ", ".join(
            f"{v} {k}" for k, v in sorted(kinds.items())))
    return lines


def failure_histogram(events: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Failure-class counts over parsed event-log entries."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.get("kind") in FAILURE_EVENT_KINDS:
            kind = event.get("failure_kind", "error")
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def events_status(events_path: str) -> Dict[str, Any]:
    """Failure histogram + event count from a JSONL event log (torn
    tails tolerated — see :func:`repro.orchestrate.events.tail_events`)."""
    events = read_events(events_path)
    return {"events": len(events), "failure_classes":
            failure_histogram(events)}


def batch_status(specs: Sequence[JobSpec], cache: ResultCache,
                 events_path: Optional[str] = None) -> Dict[str, Any]:
    """Machine-readable status of a saved batch against a cache."""
    jobs: List[Dict[str, Any]] = []
    done = 0
    for spec in specs:
        record = cache.get(spec)
        done += record is not None
        jobs.append(job_status_entry(spec, record))
    doc: Dict[str, Any] = {
        "total": len(jobs),
        "cached": done,
        "missing": len(jobs) - done,
        "jobs": jobs,
        "cache_counters": dict(cache.counters),
    }
    if events_path is not None:
        doc.update(events_status(events_path))
    return doc


def cache_status(cache: ResultCache,
                 events_path: Optional[str] = None) -> Dict[str, Any]:
    """Machine-readable inventory of a whole result cache."""
    jobs: List[Dict[str, Any]] = []
    for record in cache.records():
        spec = JobSpec.from_dict(record["spec"])
        jobs.append(job_status_entry(spec, record))
    doc: Dict[str, Any] = {
        "total": len(jobs),
        "jobs": jobs,
        "cache_counters": dict(cache.counters),
    }
    if events_path is not None:
        doc.update(events_status(events_path))
    return doc
