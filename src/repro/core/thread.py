"""Thread context: what a workload/sync generator can see and do.

A *thread* is a Python generator that yields :mod:`repro.protocols.ops`
objects and receives each op's result back at the yield point. The
:class:`ThreadContext` is passed to the generator factory and exposes the
thread id, the machine configuration, a deterministic per-thread RNG, the
clock (for episode timing), and the stats object (for recording
synchronization episode latencies).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.sim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class ThreadContext:
    """Per-thread view of the machine, handed to workload generators.

    ``obs`` is the telemetry probe bus when the machine has one attached,
    else None; every telemetry helper below is a no-op in that case.
    """

    def __init__(self, tid: int, config: SystemConfig, engine: "Engine",
                 stats: Stats, obs=None) -> None:
        self.tid = tid
        self.config = config
        self.engine = engine
        self.stats = stats
        self.obs = obs
        self.rng = random.Random(config.seed * 65537 + tid)

    @property
    def now(self) -> int:
        """Current simulated cycle (for episode latency measurement)."""
        return self.engine.now

    @property
    def num_threads(self) -> int:
        return self.config.num_threads

    def record_episode(self, category: str, start_cycle: int) -> None:
        """Record a completed synchronization episode's latency."""
        self.stats.record_episode(category, self.engine.now - start_cycle,
                                  tid=self.tid)
        if self.obs is not None:
            self.obs.emit("sync.episode", category=category, tid=self.tid,
                          start=start_cycle, end=self.engine.now)

    # ------------------------------------------------- telemetry helpers

    def span_begin(self, name: str, **args) -> None:
        """Open a named span on this thread's timeline (e.g. a lock-hold
        window between acquire and release)."""
        if self.obs is not None:
            self.obs.emit("span.begin", name=name, tid=self.tid, **args)

    def span_end(self, name: str, **args) -> None:
        """Close the span opened by :meth:`span_begin`."""
        if self.obs is not None:
            self.obs.emit("span.end", name=name, tid=self.tid, **args)

    def mark(self, name: str, **args) -> None:
        """Drop a zero-width instant on this thread's timeline."""
        if self.obs is not None:
            self.obs.emit("mark", name=name, tid=self.tid, **args)
