"""Machine-checkable paper claims: no claim may FAIL on a reduced run."""

import pytest

from repro.harness import experiments
from repro.harness.expectations import (FIG21_TIME_CLAIMS,
                                        FIG21_TRAFFIC_CLAIMS, Claim,
                                        Verdict, evaluate_fig21,
                                        evaluate_fig22, failures, report)


class TestClaimMechanics:
    def test_pass_within_band(self):
        claim = Claim("x", "anchor", lambda row: row["a"] / row["b"],
                      band=0.8)
        result = claim.judge({"a": 0.7, "b": 1.0})
        assert result.verdict is Verdict.PASS

    def test_attenuated_between_band_and_one(self):
        claim = Claim("x", "anchor", lambda row: row["a"] / row["b"],
                      band=0.8)
        result = claim.judge({"a": 0.9, "b": 1.0})
        assert result.verdict is Verdict.ATTENUATED

    def test_fail_when_direction_reverses(self):
        claim = Claim("x", "anchor", lambda row: row["a"] / row["b"],
                      band=0.8)
        result = claim.judge({"a": 1.2, "b": 1.0})
        assert result.verdict is Verdict.FAIL

    def test_report_mentions_anchor(self):
        claim = Claim("traffic", "-27%", lambda row: 0.5, band=0.8)
        text = report([claim.judge({})])
        assert "-27%" in text and "PASS" in text


class TestAgainstMeasuredSuite:
    """Run a reduced suite and hold every claim to at least direction."""

    @pytest.fixture(scope="class")
    def fig21_rows(self):
        out = experiments.fig21(
            num_cores=16, scale=0.25, verbose=False,
            configs=("Invalidation", "BackOff-0", "BackOff-10",
                     "BackOff-15", "CB-One"),
            apps=["barnes", "raytrace", "streamcluster", "lu",
                  "fluidanimate", "swaptions"],
        )
        return out["time"]["geomean"], out["traffic"]["geomean"]

    def test_no_fig21_claim_fails(self, fig21_rows):
        time_gm, traffic_gm = fig21_rows
        results = evaluate_fig21(time_gm, traffic_gm)
        assert failures(results) == [], "\n" + report(results)

    def test_traffic_claims_fully_pass(self, fig21_rows):
        """The traffic axis is the paper's strongest result and must PASS
        outright, not merely hold direction."""
        _time, traffic_gm = fig21_rows
        for claim in FIG21_TRAFFIC_CLAIMS:
            result = claim.judge(traffic_gm)
            assert result.verdict is Verdict.PASS, str(result)

    def test_fig22_claims(self, fig21_rows):
        out = experiments.fig22(
            num_cores=16, scale=0.25, verbose=False,
            configs=("Invalidation", "BackOff-10", "CB-One"),
            apps=["barnes", "raytrace", "streamcluster", "fluidanimate"],
        )
        results = evaluate_fig22(out["energy"])
        assert failures(results) == [], "\n" + report(results)
